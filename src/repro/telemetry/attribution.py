"""Tail-latency attribution over trace events.

Everything here consumes plain event dicts (``{"ts", "kind", ...}``) —
either ``[e.as_dict() for e in trace.events]`` from a live
:class:`~repro.telemetry.trace.EventTrace` or a saved JSONL file loaded
with :func:`repro.telemetry.trace.load_jsonl` — so an analysis is
reproducible from a trace file without re-running the rig.

Event kinds the stack emits (see DESIGN.md, "Causal tracing"):

``host.op``
    One per host-visible storage/commit operation, emitted by
    ``NoFTLStorage`` / ``BlockDevice`` / the transaction manager.  Fields:
    ``op`` (read / write / commit), ``origin``, ``elapsed_us`` and the
    cost buckets of :data:`repro.telemetry.context.COST_BUCKETS` charged
    while the op ran.
``flash.cmd``
    One per flash command that occupies a die, emitted by ``FlashArray``.
    Fields: ``op``, ``die``, ``origin``, ``path``, ``latency_us``.
``<kind>:begin`` / ``<kind>:end``
    Span pairs with ``span`` / ``parent`` ids (GC runs, merges, flusher
    rounds); ``:end`` carries ``duration_us``.

The **blame decomposition** splits a host op's elapsed time into:
``media`` (its own commands' die/channel time), ``queue_gc`` (waiting
behind maintenance work — die queues, region locks, controller slots held
by GC/merges), ``queue_other`` (waiting behind other foreground work),
``gc`` (maintenance work executed inline within the op), ``retry``
(error-recovery backoff), ``wal`` (commit log flush) and ``other`` (the
unattributed residual: CPU, interface overhead, buffer-pool waits).  The
GC-blamed share of an op is ``gc + queue_gc``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

from ..sim.stats import percentiles
from .context import MAINTENANCE_ORIGINS

__all__ = [
    "host_ops",
    "blame_breakdown",
    "windowed_series",
    "credit_busy",
    "origin_mix",
    "span_rollup",
    "verify_origins",
    "LiveBlame",
]

#: Cost buckets a host.op event may carry, plus the residual.
BLAME_BUCKETS = (
    "media_us",
    "queue_gc_us",
    "queue_other_us",
    "queue_hazard_us",
    "cache_flush_us",
    "gc_us",
    "retry_us",
    "wal_us",
    "other_us",
)


def host_ops(events: Iterable[dict], op: Optional[str] = None) -> List[dict]:
    """The ``host.op`` events, optionally filtered by op kind."""
    return [
        e for e in events
        if e.get("kind") == "host.op" and (op is None or e.get("op") == op)
    ]


def _bucket_values(event: dict) -> Dict[str, float]:
    elapsed = float(event.get("elapsed_us", 0.0))
    out = {
        bucket: float(event.get(bucket, 0.0))
        for bucket in BLAME_BUCKETS if bucket != "other_us"
    }
    out["other_us"] = max(0.0, elapsed - sum(out.values()))
    return out


def blame_breakdown(
    events: Iterable[dict],
    op: str = "write",
    tail_pct: float = 99.0,
) -> dict:
    """Decompose the latency of one host op kind, overall and at the tail.

    The *tail* set is every sample at or above the ``tail_pct`` latency
    percentile; per-bucket means over that set say what a p99 ``write``
    (say) was actually spending its time on.  Returns a dict with
    ``count``, ``p50/p99/p999/max``, ``mean_us``, per-bucket means for
    all samples (``buckets``) and for the tail (``tail_buckets``), the
    tail's ``gc_blamed_us`` (= gc + queue_gc means) and its ``shares``
    (bucket / tail mean elapsed).
    """
    ops = host_ops(events, op)
    if not ops:
        return {"op": op, "count": 0}
    latencies = [float(e.get("elapsed_us", 0.0)) for e in ops]
    threshold, p50, p99, p999 = percentiles(
        latencies, (tail_pct, 50, 99, 99.9)
    )
    tail = [e for e in ops if float(e.get("elapsed_us", 0.0)) >= threshold]

    def mean_buckets(group: List[dict]) -> Dict[str, float]:
        totals = {bucket: 0.0 for bucket in BLAME_BUCKETS}
        for event in group:
            for bucket, value in _bucket_values(event).items():
                totals[bucket] += value
        return {
            bucket: total / len(group) for bucket, total in totals.items()
        }

    buckets = mean_buckets(ops)
    tail_buckets = mean_buckets(tail)
    tail_mean = sum(tail_buckets.values())
    return {
        "op": op,
        "count": len(ops),
        "mean_us": sum(latencies) / len(latencies),
        "p50_us": p50,
        "p99_us": p99,
        "p999_us": p999,
        "max_us": max(latencies),
        "tail_pct": tail_pct,
        "tail_threshold_us": threshold,
        "tail_count": len(tail),
        "buckets": buckets,
        "tail_buckets": tail_buckets,
        "gc_blamed_us": tail_buckets["gc_us"] + tail_buckets["queue_gc_us"],
        "shares": {
            bucket: (value / tail_mean if tail_mean > 0 else 0.0)
            for bucket, value in tail_buckets.items()
        },
    }


def credit_busy(
    series: List[float],
    t0: float,
    window_us: float,
    start: float,
    duration_us: float,
) -> None:
    """Credit ``duration_us`` of busy time onto fixed windows.

    The occupancy interval ``[start, start + duration_us)`` is split
    exactly across the windows it covers — a command straddling a window
    boundary credits each window only the time it actually spent there.
    Time falling before the first window is credited to the first, time
    past the last edge to the last, so the series total always equals the
    total busy time handed in.  Shared by the replay-path
    :func:`windowed_series` and the live
    :class:`repro.telemetry.health.LoadWindowEngine`, which keeps the two
    paths' numbers consistent by construction.
    """
    nwin = len(series)
    if nwin == 0 or duration_us <= 0.0:
        return
    last = nwin - 1
    idx = int((start - t0) // window_us)
    if idx < 0:
        idx = 0
        start = t0
    elif idx > last:
        idx = last
    remaining = float(duration_us)
    cursor = start
    while idx < last:
        edge = t0 + (idx + 1) * window_us
        take = edge - cursor
        if take >= remaining:
            break
        series[idx] += take
        remaining -= take
        cursor = edge
        idx += 1
    series[idx] += remaining


def windowed_series(
    events: Iterable[dict],
    window_us: float = 100_000.0,
) -> dict:
    """Time series over fixed windows: host-op throughput, per-die busy
    fraction and maintenance (GC/merge/WL/...) flash-command activity.

    Returns ``{"window_us", "windows": [t0, t1, ...], "ops": [...],
    "die_busy": {die: [fraction, ...]}, "maintenance_cmds": [...]}``.
    Die busy time treats each ``flash.cmd``'s timestamp as the start of
    its die occupancy and splits the latency exactly across the windows
    it covers (:func:`credit_busy`); op/maintenance *counts* still land
    in the window containing the command's timestamp.
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    events = list(events)
    stamped = [e for e in events if "ts" in e]
    if not stamped:
        return {"window_us": window_us, "windows": [], "ops": [],
                "die_busy": {}, "maintenance_cmds": []}
    t0 = min(float(e["ts"]) for e in stamped)
    t1 = max(float(e["ts"]) for e in stamped)
    nwin = max(1, int((t1 - t0) / window_us) + 1)
    ops = [0] * nwin
    maintenance = [0] * nwin
    die_busy: Dict[int, List[float]] = {}
    for event in events:
        kind = event.get("kind")
        if kind not in ("host.op", "flash.cmd"):
            continue
        ts = float(event["ts"])
        idx = min(nwin - 1, int((ts - t0) / window_us))
        if kind == "host.op":
            ops[idx] += 1
            continue
        die = event.get("die")
        if die is not None:
            per_die = die_busy.setdefault(int(die), [0.0] * nwin)
            credit_busy(per_die, t0, window_us, ts,
                        float(event.get("latency_us", 0.0)))
        if event.get("origin") in MAINTENANCE_ORIGINS:
            maintenance[idx] += 1
    return {
        "window_us": window_us,
        "windows": [t0 + i * window_us for i in range(nwin)],
        "ops": ops,
        "die_busy": {
            die: [busy / window_us for busy in series]
            for die, series in sorted(die_busy.items())
        },
        "maintenance_cmds": maintenance,
    }


def origin_mix(events: Iterable[dict]) -> Dict[str, int]:
    """Flash-command counts per origin label."""
    out: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "flash.cmd":
            origin = event.get("origin", "<missing>")
            out[origin] = out.get(origin, 0) + 1
    return out


def verify_origins(events: Iterable[dict]) -> dict:
    """Check that every flash command in the trace carries an origin."""
    total = missing = 0
    for event in events:
        if event.get("kind") == "flash.cmd":
            total += 1
            if not event.get("origin"):
                missing += 1
    return {"flash_cmds": total, "missing_origin": missing}


def span_rollup(events: Iterable[dict]) -> List[dict]:
    """Flamegraph-style rollup of span end events.

    Rebuilds parent chains from the ``span`` / ``parent`` ids on
    ``<kind>:end`` events and aggregates inclusive time by root-to-leaf
    kind path, e.g. ``log.reclaim;merge.full``.  Returns entries sorted
    by total time, each ``{"path", "count", "total_us", "mean_us"}``.
    """
    kind_of: Dict[int, str] = {}
    parent_of: Dict[int, Optional[int]] = {}
    ends: List[dict] = []
    for event in events:
        kind = event.get("kind", "")
        if not kind.endswith(":end") or "span" not in event:
            continue
        span_id = int(event["span"])
        kind_of[span_id] = kind[:-4]
        parent = event.get("parent")
        parent_of[span_id] = int(parent) if parent is not None else None
        ends.append(event)
    rollup: Dict[str, List[float]] = {}
    for event in ends:
        span_id = int(event["span"])
        parts = []
        seen = set()
        node: Optional[int] = span_id
        while node is not None and node not in seen:
            seen.add(node)
            parts.append(kind_of.get(node, "?"))
            node = parent_of.get(node)
        path = ";".join(reversed(parts))
        entry = rollup.setdefault(path, [0.0, 0.0])
        entry[0] += 1
        entry[1] += float(event.get("duration_us", 0.0))
    out = [
        {
            "path": path,
            "count": int(count),
            "total_us": total,
            "mean_us": total / count if count else 0.0,
        }
        for path, (count, total) in rollup.items()
    ]
    out.sort(key=lambda item: -item["total_us"])
    return out


class LiveBlame:
    """Sliding-window GC-blame share, fed *during* a run.

    The offline :func:`blame_breakdown` needs the full trace; admission
    control needs the same signal live.  Callers note each completed
    backing op's elapsed time and its GC-blamed component (``gc_us`` +
    ``queue_gc_us`` charged to the op's context); :meth:`gc_share`
    answers "what fraction of recent device time was spent on or behind
    maintenance?" over the trailing ``window_us``.  Entirely passive —
    no events are scheduled, so attaching one never perturbs a rig's
    digest.
    """

    __slots__ = ("window_us", "_samples", "_elapsed_sum", "_gc_sum")

    def __init__(self, window_us: float = 20_000.0):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        self._samples: deque = deque()  # (ts, elapsed_us, gc_blamed_us)
        self._elapsed_sum = 0.0
        self._gc_sum = 0.0

    def _prune(self, now: float) -> None:
        horizon = now - self.window_us
        samples = self._samples
        while samples and samples[0][0] < horizon:
            _, elapsed, gc = samples.popleft()
            self._elapsed_sum -= elapsed
            self._gc_sum -= gc

    def note(self, now: float, elapsed_us: float, gc_blamed_us: float) -> None:
        gc_blamed_us = min(float(gc_blamed_us), float(elapsed_us))
        self._samples.append((float(now), float(elapsed_us), gc_blamed_us))
        self._elapsed_sum += float(elapsed_us)
        self._gc_sum += gc_blamed_us
        self._prune(float(now))

    def gc_share(self, now: float) -> float:
        """GC-blamed fraction of device time in the trailing window."""
        self._prune(float(now))
        if self._elapsed_sum <= 0.0:
            return 0.0
        return min(1.0, self._gc_sum / self._elapsed_sum)
