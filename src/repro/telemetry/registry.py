"""Label-aware metrics registry shared by every layer of the stack.

One :class:`MetricsRegistry` instance is threaded through a whole rig —
flash array, FTL / NoFTL storage manager, buffer pool, db-writers — so a
single ``snapshot()`` (or ``to_json()``) captures the complete cross-layer
state of a run.  The design follows the usual counter/gauge/histogram
trio, with two project-specific twists:

* **hierarchical labels** — every instrument carries a frozen label set
  (``layer``, ``die``, ``ftl``, ``op``, ...); :meth:`MetricsRegistry.value`
  and :meth:`MetricsRegistry.series` aggregate over any label subset, which
  is how the Figure 3/4 reproductions pull "copybacks per die" or "erases,
  all dies" out of one family of counters;
* **simulated-time awareness** — histograms and spans take their clock
  from the owning :class:`~repro.sim.Simulator` (``set_clock``), so
  latency numbers are in simulated microseconds, not wall time.

Histograms are built on the existing :mod:`repro.sim.stats` primitives
(:class:`~repro.sim.stats.LatencyRecorder`), keeping one percentile
implementation for the whole repo.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.stats import LatencyRecorder

__all__ = [
    "Counter",
    "CounterVec",
    "Gauge",
    "Histogram",
    "HistogramVec",
    "MetricsRegistry",
    "LabelSet",
]

#: Canonical (sorted) label representation used as part of instrument keys.
LabelSet = Tuple[Tuple[str, object], ...]

#: Gauge merge policies for :meth:`MetricsRegistry.merge_from`.
#: ``sum`` for additive state (queue depths, dirty pages: the fleet's
#: total backlog is the sum over shards), ``max`` for indicator/level
#: gauges (a fleet is degraded if *any* shard is), ``last`` for the old
#: last-write-wins behaviour where a true point value is wanted.
GAUGE_MERGE_POLICIES = ("sum", "max", "last")

#: Per-name defaults for the gauges the stack registers today.  Anything
#: unlisted merges with ``sum`` — the right default for the additive
#: occupancy/backlog gauges that dominate, and loudly wrong (instead of
#: silently wrong) for a level gauge someone forgets to classify.
GAUGE_MERGE_DEFAULTS = {
    "noftl.degraded": "max",
}


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (float-valued for busy-time sums)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, dirty ratio, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Latency/size distribution built on :class:`LatencyRecorder`.

    By default keeps raw samples (experiments here are small), so ``pct``
    is exact and matches :func:`repro.sim.stats.percentile` by
    construction.  A ``max_samples`` bound (usually set registry-wide via
    ``MetricsRegistry(histogram_max_samples=...)``) switches the backing
    recorder to reservoir sampling for long runs.
    """

    __slots__ = ("name", "labels", "_recorder")

    def __init__(self, name: str, labels: LabelSet,
                 max_samples: Optional[int] = None):
        self.name = name
        self.labels = labels
        self._recorder = LatencyRecorder(name, max_samples=max_samples)

    def observe(self, value: float) -> None:
        self._recorder.record(value)

    @property
    def count(self) -> int:
        return self._recorder.count

    @property
    def mean(self) -> float:
        return self._recorder.mean

    @property
    def samples(self) -> List[float]:
        return self._recorder.samples

    def pct(self, q: float) -> float:
        return self._recorder.pct(q)

    def as_dict(self) -> dict:
        summary = self._recorder.summary()
        summary.pop("name", None)
        return {"name": self.name, "labels": dict(self.labels), **summary}


class _Vec:
    """Pre-resolved family handle for one instrument name.

    The per-command hot paths (flash accounting, fault bookkeeping,
    executor cost charging) used to call ``registry.counter(name,
    **labels)`` per event, paying keyword packing + ``sorted(...)`` label
    canonicalisation every time.  A vec binds the variable label *names*
    once at wiring time; :meth:`labels` then takes the label *values*
    positionally and caches the resolved instrument under that value
    tuple, so the steady-state cost is one dict lookup.

    Instruments come from the owning registry's get-or-create tables, so
    vec-resolved and keyword-resolved handles for the same (name, labels)
    are the same object — snapshots and aggregation queries see no
    difference.
    """

    __slots__ = ("_registry", "_name", "_label_names", "_static", "_cache")

    #: bound get-or-create method name on MetricsRegistry
    _kind = ""

    def __init__(self, registry: "MetricsRegistry", name: str,
                 label_names: Tuple[str, ...], static: Dict[str, object]):
        self._registry = registry
        self._name = name
        self._label_names = label_names
        self._static = static
        self._cache: dict = {}

    def labels(self, *values):
        """Resolve the instrument for these positional label values."""
        instrument = self._cache.get(values)
        if instrument is None:
            if len(values) != len(self._label_names):
                raise ValueError(
                    f"{self._name}: expected {len(self._label_names)} label "
                    f"values {self._label_names}, got {len(values)}"
                )
            labels = dict(zip(self._label_names, values))
            labels.update(self._static)
            resolve = getattr(self._registry, self._kind)
            instrument = self._cache[values] = resolve(self._name, **labels)
        return instrument


class CounterVec(_Vec):
    """Counter family with positional, cached label resolution."""

    __slots__ = ()
    _kind = "counter"

    def inc(self, *values, amount=1) -> None:
        self.labels(*values).inc(amount)


class HistogramVec(_Vec):
    """Histogram family with positional, cached label resolution."""

    __slots__ = ()
    _kind = "histogram"

    def observe(self, *values_then_sample) -> None:
        *values, sample = values_then_sample
        self.labels(*values).observe(sample)


class MetricsRegistry:
    """Get-or-create registry of labelled counters, gauges and histograms.

    Instruments are identified by ``(kind, name, labels)``: asking twice
    for the same triple returns the same object, so hot paths can resolve
    their counters once at construction time and bump plain attributes
    afterwards.

    Internally each kind is a two-level table ``name -> labelset ->
    instrument``, so aggregation queries (:meth:`value`, :meth:`series`)
    only scan their own instrument family instead of every instrument in
    the registry — the dashboards refresh these in a loop.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 histogram_max_samples: Optional[int] = None):
        self._counters: Dict[str, Dict[LabelSet, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelSet, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelSet, Histogram]] = {}
        self._collectors: Dict[str, Callable[[], dict]] = {}
        self._gauge_merge: Dict[str, str] = dict(GAUGE_MERGE_DEFAULTS)
        self._seq = 0
        self._clock = clock
        self.histogram_max_samples = histogram_max_samples

    # -- clock ----------------------------------------------------------------

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach a simulated-time source (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    def now(self) -> float:
        """Simulated time when a clock is attached, else a logical sequence."""
        if self._clock is not None:
            return self._clock()
        self._seq += 1
        return float(self._seq)

    # -- instruments ----------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        family = self._counters.setdefault(name, {})
        key = _labelset(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = Counter(name, key)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = _labelset(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = Gauge(name, key)
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        family = self._histograms.setdefault(name, {})
        key = _labelset(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = Histogram(
                name, key, max_samples=self.histogram_max_samples
            )
        return instrument

    def counter_vec(self, name: str, label_names: Iterable[str],
                    **static) -> CounterVec:
        """Pre-resolved counter family: bind ``label_names`` (and any
        constant ``static`` labels) once, then ``vec.labels(v1, v2)``
        resolves with a single tuple-keyed dict lookup.  See :class:`_Vec`."""
        return CounterVec(self, name, tuple(label_names), static)

    def histogram_vec(self, name: str, label_names: Iterable[str],
                      **static) -> HistogramVec:
        """Pre-resolved histogram family; see :meth:`counter_vec`."""
        return HistogramVec(self, name, tuple(label_names), static)

    # -- aggregation ----------------------------------------------------------

    def _matching(self, table: dict, name: str, labels: Dict[str, object]):
        family = table.get(name)
        if not family:
            return
        want = labels.items()
        for labelset, instrument in family.items():
            if all(pair in labelset for pair in want):
                yield instrument

    def value(self, name: str, **labels) -> float:
        """Sum of every counter named ``name`` whose labels are a superset
        of the given ones — e.g. ``value("flash.commands", op="erase")``
        totals erases across all dies."""
        return sum(c.value for c in self._matching(self._counters, name, labels))

    def series(self, name: str, by: str, **labels) -> Dict[object, float]:
        """Counter totals grouped by one label — e.g.
        ``series("flash.commands", "die", op="copyback")`` gives the
        per-die copyback counts of Figure 3/4."""
        out: Dict[object, float] = {}
        for counter in self._matching(self._counters, name, labels):
            key = dict(counter.labels).get(by)
            if key is None:
                continue
            out[key] = out.get(key, 0) + counter.value
        return out

    def histograms_named(self, name: str, **labels) -> List[Histogram]:
        return list(self._matching(self._histograms, name, labels))

    # -- collectors -----------------------------------------------------------

    def register_collector(self, name: str, fn: Callable[[], dict]) -> None:
        """Attach a lazy snapshot source (e.g. an FTLStats.snapshot bound
        method); its dict appears under ``collectors.<name>`` in snapshots.
        Re-registering a name replaces the previous collector."""
        self._collectors[name] = fn

    # -- export ---------------------------------------------------------------

    @staticmethod
    def _instruments(table: dict):
        for family in table.values():
            yield from family.values()

    def snapshot(self) -> dict:
        """One nested, JSON-ready dict of everything the registry knows."""
        return {
            "counters": [c.as_dict() for c in self._instruments(self._counters)],
            "gauges": [g.as_dict() for g in self._instruments(self._gauges)],
            "histograms": [
                h.as_dict() for h in self._instruments(self._histograms)
            ],
            "collectors": {name: fn() for name, fn in self._collectors.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=str, sort_keys=True)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def set_gauge_merge(self, name: str, policy: str) -> None:
        """Declare how gauges named ``name`` combine in :meth:`merge_from`.

        ``sum`` (default) adds shard readings — right for queue depths,
        dirty pages and any other additive backlog; ``max`` keeps the
        largest — right for 0/1 indicator and level gauges; ``last`` is
        the legacy last-write-wins for true point-in-time values.
        """
        if policy not in GAUGE_MERGE_POLICIES:
            raise ValueError(
                f"unknown gauge merge policy {policy!r}; "
                f"expected one of {GAUGE_MERGE_POLICIES}"
            )
        self._gauge_merge[name] = policy

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters, gauges *and* histograms into
        this one (multi-device benches building one fleet artifact).

        Counters sum; histogram samples are re-observed into the local
        instrument (so a local reservoir bound still applies); gauges
        combine under their declared :meth:`set_gauge_merge` policy —
        ``sum`` unless overridden, so queue-depth/dirty gauges report the
        fleet total instead of whichever shard merged last.  Merge each
        source once into a fresh rollup registry: re-merging a shard
        double-counts its counters and summed gauges by design.
        Collectors are not merged — they are bound to live objects owned
        by the source rig and must not outlive it.
        """
        for name, family in other._counters.items():
            for labelset, counter in family.items():
                self.counter(name, **dict(labelset)).inc(counter.value)
        for name, family in other._gauges.items():
            policy = self._gauge_merge.get(
                name, other._gauge_merge.get(name, "sum")
            )
            for labelset, gauge in family.items():
                mine = self.gauge(name, **dict(labelset))
                if policy == "sum":
                    mine.inc(gauge.value)
                elif policy == "max":
                    if gauge.value > mine.value:
                        mine.set(gauge.value)
                else:  # "last"
                    mine.set(gauge.value)
        for name, family in other._histograms.items():
            for labelset, histogram in family.items():
                mine = self.histogram(name, **dict(labelset))
                for sample in histogram.samples:
                    mine.observe(sample)

    def merge_counters_from(self, other: "MetricsRegistry") -> None:
        """Counters-only merge, kept for callers that explicitly want to
        discard distribution data.  Gauges and histograms are **not**
        carried over — use :meth:`merge_from` to keep latency data."""
        for name, family in other._counters.items():
            for labelset, counter in family.items():
                self.counter(name, **dict(labelset)).inc(counter.value)

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Sweep workers ship their registries back over a process pipe.

        Collectors are bound methods of live rig objects and the clock
        closes over a Simulator — neither survives (or should survive)
        the trip, so both are dropped; everything mergeable (counters,
        gauges, histograms, gauge-merge policies) crosses intact.
        """
        state = self.__dict__.copy()
        state["_collectors"] = {}
        state["_clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


#: Flash command types accounted per die by the flash layer.
FLASH_OPS = ("read", "program", "erase", "copyback", "oob_read")


def sum_per_die(registry: MetricsRegistry, op: str) -> Dict[int, float]:
    """Convenience: per-die totals of one flash command type."""
    return registry.series("flash.commands", "die", op=op)


def flash_totals(registry: MetricsRegistry, ops: Iterable[str] = FLASH_OPS) -> Dict[str, int]:
    """Convenience: total count of each flash command type."""
    return {op: int(registry.value("flash.commands", op=op)) for op in ops}
