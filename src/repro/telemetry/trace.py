"""Structured event tracing: a bounded ring buffer with span support.

Where the registry answers *how many / how long on average*, the trace
answers *where did this copyback come from*: every GC run, wear-leveling
migration, flusher round and transaction can emit begin/end events with
structured fields, timestamped in simulated time.  The buffer is a fixed
ring (old events fall off; a ``dropped`` counter records how many), so
tracing is always safe to leave enabled on multi-minute simulated runs.

An optional JSONL sink streams every event to disk as it is emitted —
useful for post-mortem analysis of a single bench; ``to_jsonl`` dumps the
retained window after the fact.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, List, Optional, TextIO, Union

__all__ = ["TraceEvent", "EventTrace", "Span", "load_jsonl"]


class TraceEvent:
    """One structured event: a timestamp, a kind, and free-form fields."""

    __slots__ = ("ts", "kind", "fields")

    def __init__(self, ts: float, kind: str, fields: dict):
        self.ts = ts
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        return {"ts": self.ts, "kind": self.kind, **self.fields}

    def __repr__(self) -> str:
        return f"TraceEvent(ts={self.ts}, kind={self.kind!r}, fields={self.fields!r})"


class Span:
    """Context manager measuring one operation (GC run, flusher round,
    transaction) as a begin/end event pair plus an optional histogram
    observation of the duration.

    Works inside DES generators: ``with trace.span("gc.collect", ...):``
    around a ``yield from`` body times the simulated duration, and the
    ``finally`` semantics of ``with`` close the span even on interrupt.
    Extra fields discovered mid-span can be attached via :meth:`note`.

    Spans nest explicitly: pass ``parent=`` (a :class:`Span` or its id)
    and the begin/end events carry ``span``/``parent`` ids from which
    :func:`repro.telemetry.attribution.span_rollup` rebuilds the tree.
    There is deliberately no implicit "current span" — the DES interleaves
    processes, and an ambient stack would mis-parent spans.  A ``ctx=``
    (an :class:`~repro.telemetry.context.OpContext`) merges its identity
    fields (origin, path, txn/writer ids) into the events.
    """

    __slots__ = (
        "trace", "kind", "fields", "histogram", "start", "span_id",
        "parent_id",
    )

    def __init__(self, trace: "EventTrace", kind: str, histogram, fields: dict,
                 parent: Union["Span", int, None] = None, ctx=None):
        self.trace = trace
        self.kind = kind
        self.fields = fields
        self.histogram = histogram
        self.start = 0.0
        self.span_id = 0
        self.parent_id = parent.span_id if isinstance(parent, Span) else parent
        if ctx is not None:
            for key, value in ctx.fields().items():
                self.fields.setdefault(key, value)

    def note(self, **fields) -> None:
        """Attach extra fields reported on the end event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.start = self.trace.now()
        self.span_id = self.trace.next_span_id()
        if self.parent_id:
            self.fields.setdefault("parent", self.parent_id)
        self.trace.emit(self.kind + ":begin", span=self.span_id, **self.fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self.trace.now() - self.start
        fields = dict(self.fields)
        fields["duration_us"] = duration
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        self.trace.emit(self.kind + ":end", span=self.span_id, **fields)
        if self.histogram is not None:
            self.histogram.observe(duration)


class EventTrace:
    """Bounded structured-event ring buffer.

    Parameters
    ----------
    capacity
        Events retained; older events are dropped (and counted).
    clock
        Simulated-time source; when absent, a logical sequence is used.
    sink
        Optional writable text stream receiving one JSON line per event
        as it happens (the ring still retains its window).
    enabled
        Tracing can be switched off wholesale; ``emit`` then costs one
        attribute check.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[TextIO] = None,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0
        self.enabled = enabled
        self.sink = sink
        self._clock = clock
        self._seq = 0
        self._span_seq = 0

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        self._clock = clock

    def next_span_id(self) -> int:
        self._span_seq += 1
        return self._span_seq

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._seq += 1
        return float(self._seq)

    # -- emission -------------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        if not self.enabled:
            return
        event = TraceEvent(self.now(), kind, fields)
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self.emitted += 1
        if self.sink is not None:
            self.sink.write(json.dumps(event.as_dict(), default=str) + "\n")

    def span(self, kind: str, histogram=None, parent=None, ctx=None,
             **fields) -> Span:
        """Begin/end event pair timing one operation; see :class:`Span`."""
        return Span(self, kind, histogram, fields, parent=parent, ctx=ctx)

    # -- inspection / export --------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def summary(self) -> dict:
        return {
            "capacity": self.capacity,
            "retained": len(self.events),
            "emitted": self.emitted,
            "dropped": self.dropped,
        }

    def to_jsonl(self, path) -> int:
        """Dump the retained window as JSON lines; returns events written."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.as_dict(), default=str) + "\n")
        return len(self.events)


def load_jsonl(path) -> List[dict]:
    """Load a trace written by a JSONL sink or :meth:`EventTrace.to_jsonl`.

    ``path`` is a filename or an open text stream.  Returns the raw event
    dicts (``{"ts", "kind", **fields}``) — the form the attribution
    engine consumes, so saved traces replay through the exact same
    analysis code as live runs.
    """

    def _read(handle) -> List[dict]:
        events: List[dict] = []
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
        return events

    if hasattr(path, "read"):
        return _read(path)
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)
