"""Device health & load observability: WA ledger, wear, live windows.

Three instruments, all **strictly passive and opt-in** — nothing here
schedules simulator events or mutates device state, so attaching a
monitor never perturbs a rig's command sequence, and the golden-digest
rigs (which do not attach one) stay bit-identical.

:class:`WriteAmplificationLedger`
    Classifies every PROGRAM / COPYBACK / ERASE the flash array accounts
    by *cause* (the leaf origin of its causal context: host-class work vs
    gc / merge / wear-level / scrub / evacuation) and by *host data
    class* (WAL / heap / btree / map / temp / recovery / unknown).  Host
    data classes ride on the :class:`~repro.telemetry.context.OpContext`
    chain for host-cause writes; for device-cause moves — where the
    adopting request says nothing about which page is moved — the ledger
    resolves the class from the OOB ``lpn`` every FTL already stamps on
    its programs, using the class learned when the host last wrote that
    lpn.  Write amplification is then an honest per-class ratio:
    physical programs+copybacks touching a class's pages over the host's
    logical writes to it.

:func:`wear_report`
    Per-block wear accounting straight off the flash array's flat
    ``erase_counts`` state: distribution, skew (max/mean), coefficient
    of variation, and a remaining-lifetime projection — how many more
    host writes the device absorbs before its hottest block hits the
    endurance limit, assuming the observed write mix and skew persist.
    This turns the paper's "NoFTL effectively doubles device lifetime"
    claim (Figure 3) into a measured, gateable number.

:class:`LoadWindowEngine`
    Live fixed-window time series, fed during the run (no trace replay
    needed): per-op-class throughput and p50/p99, shed counts, queue
    depth and dirty-ratio highs from the device front end, and per-die
    busy time split exactly across window boundaries with
    :func:`~repro.telemetry.attribution.credit_busy` — the same helper
    the replay path uses, so live and replayed series agree by
    construction.  :meth:`LoadWindowEngine.saturation` finds the run's
    saturation point: the first window where the front end shed load
    (shed onset), else the first window whose p99 exceeds a multiple of
    the early-run baseline (latency knee).

:class:`HealthMonitor` composes the three, hooks into
:class:`~repro.flash.array.FlashArray` via its ``health`` attachment
point, and registers ``health.*`` collectors on the metrics registry so
one snapshot carries the full health report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.stats import percentiles
from .attribution import credit_busy
from .context import DATA_CLASSES, MAINTENANCE_ORIGINS, data_class_of

__all__ = [
    "WriteAmplificationLedger",
    "LoadWindowEngine",
    "HealthMonitor",
    "wear_report",
    "DEFAULT_ENDURANCE_CYCLES",
]

#: Endurance assumed when the array has no explicit ``max_erase_cycles``
#: (MLC-class NAND; the projection reports which limit it used).
DEFAULT_ENDURANCE_CYCLES = 3_000


class WriteAmplificationLedger:
    """Per-class / per-cause / per-die write-amplification accounting.

    Fed one call per accounted flash command by the array hook.  A
    *logical* write is a host-cause program whose data class is not
    ``map`` (translation-page writes are device overhead even though
    they arrive under a host-class context).  Every program and copyback
    is *physical*.  WA = physical / logical, overall and per class.
    """

    __slots__ = (
        "class_of",
        "logical_by_class",
        "physical_by_class",
        "physical_by_cause",
        "physical_matrix",
        "physical_by_die",
        "erases_by_cause",
        "erases_by_die",
    )

    def __init__(self):
        #: lpn -> data class, learned at host-cause program time.
        self.class_of: Dict[int, str] = {}
        self.logical_by_class: Dict[str, int] = {}
        self.physical_by_class: Dict[str, int] = {}
        self.physical_by_cause: Dict[str, int] = {}
        #: (data class, cause) -> physical writes; the full decomposition.
        self.physical_matrix: Dict[Tuple[str, str], int] = {}
        self.physical_by_die: Dict[int, int] = {}
        self.erases_by_cause: Dict[str, int] = {}
        self.erases_by_die: Dict[int, int] = {}

    # -- feeding ---------------------------------------------------------

    def record(self, op: str, die: int, ctx, oob) -> None:
        """Account one flash command (called from the array hook)."""
        origin = ctx.origin if ctx is not None else "host"
        if op == "erase":
            self.erases_by_cause[origin] = (
                self.erases_by_cause.get(origin, 0) + 1
            )
            self.erases_by_die[die] = self.erases_by_die.get(die, 0) + 1
            return
        if op not in ("program", "copyback"):
            return
        lpn = oob.get("lpn") if isinstance(oob, dict) else None
        if origin in MAINTENANCE_ORIGINS:
            # Device-initiated move: the adopting request's class says
            # nothing about the *moved* page — classify by its lpn.
            cls = "unknown" if lpn is None else self.class_of.get(
                lpn, "unknown"
            )
        else:
            cls = data_class_of(ctx) or "unknown"
            if lpn is not None:
                self.class_of[lpn] = cls
            if cls != "map":
                self.logical_by_class[cls] = (
                    self.logical_by_class.get(cls, 0) + 1
                )
        self.physical_by_class[cls] = self.physical_by_class.get(cls, 0) + 1
        self.physical_by_cause[origin] = (
            self.physical_by_cause.get(origin, 0) + 1
        )
        key = (cls, origin)
        self.physical_matrix[key] = self.physical_matrix.get(key, 0) + 1
        self.physical_by_die[die] = self.physical_by_die.get(die, 0) + 1

    def forget(self, lpn: int) -> None:
        """Drop a learned class (host trim of the lpn)."""
        self.class_of.pop(lpn, None)

    # -- totals ----------------------------------------------------------

    @property
    def logical_writes(self) -> int:
        return sum(self.logical_by_class.values())

    @property
    def physical_writes(self) -> int:
        return sum(self.physical_by_class.values())

    @property
    def total_erases(self) -> int:
        return sum(self.erases_by_cause.values())

    @property
    def maintenance_writes(self) -> int:
        """Physical writes caused by device management (GC, merges, ...)."""
        return sum(
            count for cause, count in self.physical_by_cause.items()
            if cause in MAINTENANCE_ORIGINS
        )

    def write_amplification(self, cls: Optional[str] = None):
        """WA overall, or for one data class (None when it has no
        logical writes — e.g. ``map``, which is pure overhead)."""
        if cls is None:
            logical = self.logical_writes
            physical = self.physical_writes
        else:
            logical = self.logical_by_class.get(cls, 0)
            physical = self.physical_by_class.get(cls, 0)
        if logical <= 0:
            return None
        return physical / logical

    # -- reporting -------------------------------------------------------

    def report(self) -> dict:
        """JSON-ready, deterministically ordered ledger summary."""
        classes = sorted(
            set(DATA_CLASSES)
            | set(self.physical_by_class)
            | set(self.logical_by_class)
        )
        per_class = {}
        for cls in classes:
            logical = self.logical_by_class.get(cls, 0)
            physical = self.physical_by_class.get(cls, 0)
            if logical == 0 and physical == 0:
                continue
            wa = self.write_amplification(cls)
            per_class[cls] = {
                "logical": logical,
                "physical": physical,
                "wa": None if wa is None else round(wa, 4),
            }
        wa = self.write_amplification()
        # Declared classes that never produced a logical write.  A class
        # with no producer is a silent taxonomy hole (``temp`` was one
        # for several releases): the stream split can't segregate traffic
        # nobody stamps, so the report names the holes loudly instead of
        # letting an all-zero row vanish from ``per_class``.  ``unknown``
        # is the absence of a class, and ``map`` is device overhead with
        # no host-side producer by construction — neither is a hole.
        producerless = sorted(
            cls for cls in DATA_CLASSES
            if cls not in ("unknown", "map")
            and self.logical_by_class.get(cls, 0) == 0
        )
        return {
            "logical_writes": self.logical_writes,
            "physical_writes": self.physical_writes,
            "maintenance_writes": self.maintenance_writes,
            "write_amplification": None if wa is None else round(wa, 4),
            "producerless_classes": producerless,
            "per_class": per_class,
            "per_cause": {
                cause: self.physical_by_cause[cause]
                for cause in sorted(self.physical_by_cause)
            },
            "matrix": {
                f"{cls}/{cause}": count
                for (cls, cause), count in sorted(self.physical_matrix.items())
            },
            "per_die": {
                die: self.physical_by_die[die]
                for die in sorted(self.physical_by_die)
            },
            "erases": {
                "total": self.total_erases,
                "per_cause": {
                    cause: self.erases_by_cause[cause]
                    for cause in sorted(self.erases_by_cause)
                },
                "per_die": {
                    die: self.erases_by_die[die]
                    for die in sorted(self.erases_by_die)
                },
            },
        }


def wear_report(
    array,
    logical_writes: Optional[int] = None,
    assumed_endurance: int = DEFAULT_ENDURANCE_CYCLES,
) -> dict:
    """Wear/endurance accounting from the array's authoritative state.

    ``logical_writes`` (usually the ledger's total) scales the
    remaining-lifetime projection: with the observed host-writes-per-
    hottest-block-cycle ratio held constant, how many more host writes
    until the hottest alive block crosses the endurance limit.  Skew is
    max/mean over alive blocks (1.0 = perfectly even wear); ``cv`` is
    the coefficient of variation of the erase-count distribution.
    """
    counts = array.erase_counts
    bad = [array.is_bad(pbn) for pbn in range(len(counts))]
    alive = [count for count, is_bad in zip(counts, bad) if not is_bad]
    total = sum(counts)
    out: dict = {
        "blocks": len(counts),
        "bad_blocks": sum(bad),
        "total_erases": total,
    }
    if not alive:
        out.update({"min": 0, "max": 0, "mean": 0.0, "skew": None,
                    "cv": None, "lifetime": None})
        return out
    mean = sum(alive) / len(alive)
    peak = max(alive)
    if mean > 0:
        variance = sum((c - mean) ** 2 for c in alive) / len(alive)
        cv = (variance ** 0.5) / mean
        skew = peak / mean
    else:
        cv = None
        skew = None
    out.update({
        "min": min(alive),
        "max": peak,
        "mean": round(mean, 4),
        "skew": None if skew is None else round(skew, 4),
        "cv": None if cv is None else round(cv, 4),
    })
    limit = array.max_erase_cycles or assumed_endurance
    lifetime: dict = {
        "endurance_cycles": limit,
        "endurance_assumed": array.max_erase_cycles is None,
        "life_used": round(peak / limit, 6),
    }
    if logical_writes is not None and peak > 0:
        # Host writes absorbed per cycle of the hottest block so far;
        # the projection holds that rate (write mix + skew) constant.
        lifetime["remaining_host_writes"] = int(
            logical_writes * (limit - peak) / peak
        )
        lifetime["projected_total_host_writes"] = int(
            logical_writes * limit / peak
        )
    else:
        lifetime["remaining_host_writes"] = None
        lifetime["projected_total_host_writes"] = None
    out["lifetime"] = lifetime
    return out


class _Window:
    """Accumulators for one fixed time window."""

    __slots__ = ("latencies", "sheds", "queue_max", "dirty_max")

    def __init__(self):
        self.latencies: Dict[str, List[float]] = {}
        self.sheds: Dict[str, int] = {}
        self.queue_max = 0
        self.dirty_max = 0.0


class LoadWindowEngine:
    """Live fixed-window series: throughput, tails, sheds, pressure.

    Windows are ``[i * window_us, (i+1) * window_us)`` on the simulated
    clock (anchored at t=0 so two same-seed runs bucket identically).
    Entirely passive: callers *note* completions, sheds and gauge
    readings as they happen; nothing is scheduled.
    """

    def __init__(self, window_us: float = 10_000.0):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        self._windows: Dict[int, _Window] = {}
        #: die -> window index -> busy microseconds.
        self._busy: Dict[int, Dict[int, float]] = {}

    # -- feeding ---------------------------------------------------------

    def _window(self, now: float) -> _Window:
        idx = int(now // self.window_us)
        window = self._windows.get(idx)
        if window is None:
            window = self._windows[idx] = _Window()
        return window

    def note_op(
        self,
        now: float,
        cls: str,
        latency_us: float,
        queued: Optional[int] = None,
        dirty_ratio: Optional[float] = None,
    ) -> None:
        """One completed host op of class ``cls`` (window = completion
        time), optionally with the current queue/dirty gauge readings."""
        window = self._window(now)
        window.latencies.setdefault(cls, []).append(float(latency_us))
        if queued is not None and queued > window.queue_max:
            window.queue_max = queued
        if dirty_ratio is not None and dirty_ratio > window.dirty_max:
            window.dirty_max = dirty_ratio

    def note_shed(self, now: float, cls: str) -> None:
        window = self._window(now)
        window.sheds[cls] = window.sheds.get(cls, 0) + 1

    def note_busy(self, now: float, die: int, latency_us: float) -> None:
        """Die occupancy starting at ``now``; split across windows."""
        if latency_us <= 0:
            return
        per_die = self._busy.setdefault(die, {})
        window_us = self.window_us
        idx = int(now // window_us)
        remaining = float(latency_us)
        cursor = now
        while True:
            edge = (idx + 1) * window_us
            take = edge - cursor
            if take >= remaining:
                per_die[idx] = per_die.get(idx, 0.0) + remaining
                return
            per_die[idx] = per_die.get(idx, 0.0) + take
            remaining -= take
            cursor = edge
            idx += 1

    # -- series ----------------------------------------------------------

    def _index_range(self) -> Optional[Tuple[int, int]]:
        indices = set(self._windows)
        for per_die in self._busy.values():
            indices.update(per_die)
        if not indices:
            return None
        return min(indices), max(indices)

    def series(self) -> dict:
        """Contiguous JSON-ready series over the observed window span.

        Same shape family as the replay path's
        :func:`~repro.telemetry.attribution.windowed_series`: die busy is
        a fraction of the window, counts are per window.
        """
        span = self._index_range()
        if span is None:
            return {
                "window_us": self.window_us,
                "windows": [],
                "per_class": {},
                "sheds": [],
                "queue_depth": [],
                "dirty_ratio": [],
                "die_busy": {},
            }
        lo, hi = span
        nwin = hi - lo + 1
        indices = range(lo, hi + 1)
        classes = sorted(
            {cls for w in self._windows.values() for cls in w.latencies}
        )
        per_class: Dict[str, dict] = {}
        for cls in classes:
            count: List[int] = []
            p50: List[float] = []
            p99: List[float] = []
            for idx in indices:
                window = self._windows.get(idx)
                samples = (
                    window.latencies.get(cls) if window is not None else None
                )
                if not samples:
                    count.append(0)
                    p50.append(0.0)
                    p99.append(0.0)
                    continue
                count.append(len(samples))
                lo50, hi99 = percentiles(samples, (50, 99))
                p50.append(round(lo50, 3))
                p99.append(round(hi99, 3))
            per_class[cls] = {"count": count, "p50_us": p50, "p99_us": p99}
        sheds = []
        queue_depth = []
        dirty_ratio = []
        for idx in indices:
            window = self._windows.get(idx)
            if window is None:
                sheds.append(0)
                queue_depth.append(0)
                dirty_ratio.append(0.0)
            else:
                sheds.append(sum(window.sheds.values()))
                queue_depth.append(window.queue_max)
                dirty_ratio.append(round(window.dirty_max, 4))
        die_busy = {
            die: [
                round(per_die.get(idx, 0.0) / self.window_us, 6)
                for idx in indices
            ]
            for die, per_die in sorted(self._busy.items())
        }
        return {
            "window_us": self.window_us,
            "windows": [idx * self.window_us for idx in indices],
            "per_class": per_class,
            "sheds": sheds,
            "queue_depth": queue_depth,
            "dirty_ratio": dirty_ratio,
            "die_busy": die_busy,
        }

    # -- saturation ------------------------------------------------------

    def saturation(
        self,
        cls: str = "write",
        knee_factor: float = 4.0,
        baseline_windows: int = 3,
        min_ops: int = 5,
    ) -> Optional[dict]:
        """The run's saturation point, or None if it never saturated.

        Definition (see DESIGN.md §12): the first window in which the
        front end shed load (*shed onset*) — overload made explicit —
        or, failing that, the first window whose ``cls`` p99 exceeds
        ``knee_factor`` times the baseline p99 (*latency knee*), where
        the baseline is the mean p99 over the first ``baseline_windows``
        windows with at least ``min_ops`` samples.
        """
        span = self._index_range()
        if span is None:
            return None
        lo, hi = span
        for idx in range(lo, hi + 1):
            window = self._windows.get(idx)
            if window is not None and sum(window.sheds.values()) > 0:
                return {
                    "kind": "shed-onset",
                    "window": idx - lo,
                    "at_us": idx * self.window_us,
                    "sheds": sum(window.sheds.values()),
                }
        baseline: List[float] = []
        baseline_through = lo - 1
        for idx in range(lo, hi + 1):
            window = self._windows.get(idx)
            samples = window.latencies.get(cls) if window is not None else None
            if samples and len(samples) >= min_ops:
                (p99,) = percentiles(samples, (99,))
                baseline.append(p99)
                baseline_through = idx
                if len(baseline) >= baseline_windows:
                    break
        if not baseline:
            return None
        baseline_p99 = sum(baseline) / len(baseline)
        threshold = baseline_p99 * knee_factor
        for idx in range(baseline_through + 1, hi + 1):
            window = self._windows.get(idx)
            samples = window.latencies.get(cls) if window is not None else None
            if not samples or len(samples) < min_ops:
                continue
            (p99,) = percentiles(samples, (99,))
            if p99 > threshold:
                return {
                    "kind": "latency-knee",
                    "window": idx - lo,
                    "at_us": idx * self.window_us,
                    "p99_us": round(p99, 3),
                    "baseline_p99_us": round(baseline_p99, 3),
                    "knee_factor": knee_factor,
                }
        return None


class HealthMonitor:
    """Composes ledger + wear + live windows for one device.

    Attach with :meth:`attach_array` (flash-command feed via the array's
    ``health`` hook), :meth:`attach_frontend` (host-op feed via the
    front end's ``load_monitor`` hook), :meth:`attach_manager` (trim
    feed for the ledger's class forgetting) and :meth:`install`
    (``health.*`` registry collectors).  ``clock`` (usually ``lambda: sim.now``)
    timestamps the die-busy window feed; without one, command-level
    window series are skipped (trace-replay rigs are timeless here).
    """

    def __init__(
        self,
        window_us: float = 10_000.0,
        clock: Optional[Callable[[], float]] = None,
        assumed_endurance: int = DEFAULT_ENDURANCE_CYCLES,
    ):
        self.ledger = WriteAmplificationLedger()
        self.windows = LoadWindowEngine(window_us)
        self.clock = clock
        self.assumed_endurance = assumed_endurance
        self.arrays: list = []

    # -- wiring ----------------------------------------------------------

    def attach_array(self, array) -> None:
        array.health = self
        if array not in self.arrays:
            self.arrays.append(array)

    def attach_frontend(self, frontend) -> None:
        frontend.load_monitor = self.windows

    def attach_manager(self, manager) -> None:
        """Wire the storage manager's trim hook to the ledger.

        Trims are RAM-only (no flash command), so the array hook never
        sees them; without this the ledger would keep classifying a
        recycled lpn by whoever wrote it *before* the trim."""
        manager.on_trim = self.ledger.forget

    def install(self, registry) -> None:
        """Register ``health.*`` collectors so any snapshot/export of
        the registry carries the full health report."""
        registry.register_collector("health.wa", self.ledger.report)
        registry.register_collector("health.wear", self.wear)
        registry.register_collector("health.windows", self.windows.series)
        registry.register_collector("health.saturation", self.saturation)

    # -- array hook ------------------------------------------------------

    def record(self, op: str, die: int, latency_us: float, ctx, oob) -> None:
        """Called by :meth:`FlashArray._account` for every command."""
        self.ledger.record(op, die, ctx, oob)
        clock = self.clock
        if clock is not None:
            self.windows.note_busy(clock(), die, latency_us)

    # -- reporting -------------------------------------------------------

    def wear(self) -> dict:
        logical = self.ledger.logical_writes
        reports = [
            wear_report(array, logical, self.assumed_endurance)
            for array in self.arrays
        ]
        if not reports:
            return {}
        if len(reports) == 1:
            return reports[0]
        return {f"array{i}": report for i, report in enumerate(reports)}

    def saturation(self) -> dict:
        point = self.windows.saturation()
        return {"saturated": point is not None, "point": point}

    def report(self) -> dict:
        """The one machine-checkable health report (JSON-ready)."""
        return {
            "wa": self.ledger.report(),
            "wear": self.wear(),
            "windows": self.windows.series(),
            "saturation": self.saturation(),
        }
