"""Request-scoped causal context.

Every I/O entering the stack gets an :class:`OpContext` naming its root
cause (a transaction commit, a background db-writer, GC, wear leveling,
...).  The context rides on the flash command objects themselves — there
is deliberately **no** ambient "current context" stack, because the DES
interleaves many generator processes and a global stack would mis-blame
whichever process happened to run last.

Two things hang off a context:

* **identity** — ``origin`` (one of :data:`ORIGINS`), optional txn id /
  writer id / die, a process-unique ``ctx_id`` and a ``parent`` link, so
  a flash command can be traced back through ``gc`` -> ``db-writer`` to
  the host request that ultimately caused it;
* **costs** — a bucket dict the executors charge observed time into
  (``media_us``, ``queue_gc_us``, ``queue_other_us``, ``gc_us``,
  ``retry_us``, ``wal_us``), which the host layers snapshot into
  ``host.op`` trace events.  The blame decomposition in
  :mod:`repro.telemetry.attribution` is built entirely from those
  events, so a saved JSONL trace reproduces the same numbers.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = [
    "ORIGINS",
    "MAINTENANCE_ORIGINS",
    "COST_BUCKETS",
    "DATA_CLASSES",
    "OpContext",
    "data_class_of",
]

#: Root-cause taxonomy.  ``txn`` is foreground transaction work (buffer
#: misses, foreground flushes), ``txn-commit`` the commit path itself,
#: ``db-writer`` the background flusher pool, ``host`` any other host
#: entry point (checkpoints, raw device benches), ``frontend`` the device
#: front end's own background destage traffic.  The rest are
#: device-management origins raised inside the FTL / NoFTL layers.
ORIGINS = (
    "txn",
    "txn-commit",
    "db-writer",
    "host",
    "frontend",
    "gc",
    "merge",
    "wear-level",
    "scrub",
    "evacuation",
    "recovery",
)

#: Frozen view of ORIGINS for the per-construction membership check.
_ORIGIN_SET = frozenset(ORIGINS)

#: Origins whose work exists only to manage the media.  Time spent in
#: (or queued behind) these is the "GC-blamed" share of a latency.
MAINTENANCE_ORIGINS = frozenset(
    {"gc", "merge", "wear-level", "scrub", "evacuation"}
)

#: Host data classes a write may belong to (the WA ledger's second
#: axis).  Host layers stamp them on the contexts they create (the
#: buffer pool knows a heap page from a B-tree node; DFTL marks its own
#: translation-page traffic ``map``); anything unstamped resolves via
#: :func:`data_class_of`'s origin fallback.  ``temp`` is spill/sort
#: traffic, produced by :class:`~repro.db.temp.TempArea`; the WA
#: ledger's report flags any declared class that never writes.
DATA_CLASSES = ("wal", "heap", "btree", "map", "temp", "recovery", "unknown")

#: Origin -> data-class fallback for contexts with no explicit stamp.
_ORIGIN_DATA_CLASS = {"txn-commit": "wal", "recovery": "recovery"}


def data_class_of(ctx: Optional["OpContext"]) -> Optional[str]:
    """Resolve the host data class of a context chain, or None.

    Walks from the leaf toward the root, returning the first explicit
    ``data_class``.  A maintenance leaf (GC, merge, ...) returns None
    immediately: the chain only says *which request adopted the work*,
    not which logical page is being moved — the WA ledger classifies
    those by the OOB lpn instead.  Host-class chains with no stamp fall
    back on the origin (commit traffic is WAL, recovery is recovery).
    """
    node = ctx
    fallback = None
    while node is not None:
        if node.origin in MAINTENANCE_ORIGINS:
            return None
        if node.data_class is not None:
            return node.data_class
        if fallback is None:
            fallback = _ORIGIN_DATA_CLASS.get(node.origin)
        node = node.parent
    return fallback


#: Buckets the executors / host layers charge into (always microseconds).
COST_BUCKETS = (
    "media_us",      # this op's own commands on the die / channel
    "queue_gc_us",   # waiting behind maintenance work (die queue, locks)
    "queue_other_us",  # waiting behind other foreground work
    "queue_hazard_us",  # stalled on a RAW/WAW/WAR hazard in the front end
    "cache_flush_us",  # waiting for write-back cache destage / barrier
    "gc_us",         # maintenance commands run inline inside this op
    "retry_us",      # error-recovery backoff (ECC retries, outages)
    "wal_us",        # WAL flush time (commit path only)
)


class OpContext:
    """One causal origin, linkable into a chain via ``parent``."""

    __slots__ = (
        "origin", "txn_id", "writer_id", "die", "parent", "ctx_id", "costs",
        "data_class",
    )

    _ids = itertools.count(1)

    def __init__(
        self,
        origin: str,
        txn_id: Optional[int] = None,
        writer_id: Optional[int] = None,
        die: Optional[int] = None,
        parent: Optional["OpContext"] = None,
        data_class: Optional[str] = None,
    ):
        if origin not in _ORIGIN_SET:
            raise ValueError(f"unknown origin {origin!r}")
        if data_class is not None and data_class not in DATA_CLASSES:
            raise ValueError(f"unknown data class {data_class!r}")
        self.origin = origin
        self.txn_id = txn_id
        self.writer_id = writer_id
        self.die = die
        self.parent = parent
        self.data_class = data_class
        self.ctx_id = next(OpContext._ids)
        self.costs: dict = {}

    # -- lineage -------------------------------------------------------------

    def child(self, origin: str, **kw) -> "OpContext":
        """A sub-context caused by this one (e.g. a merge inside GC)."""
        kw.setdefault("txn_id", self.txn_id)
        kw.setdefault("writer_id", self.writer_id)
        kw.setdefault("data_class", self.data_class)
        return OpContext(origin, parent=self, **kw)

    def root(self) -> "OpContext":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def adopt(self, parent: "OpContext") -> None:
        """Attach an orphan chain under ``parent``.

        Maintenance work is created deep inside the FTL where the host
        context is not in scope; the executor adopts those chains under
        the request it is running, completing the causal path without
        any global state.  A chain that already has a root parent (or
        would create a cycle) is left alone.
        """
        root = self.root()
        if root is parent or root is parent.root():
            return
        if root.parent is None:
            root.parent = parent

    def path(self) -> str:
        """Origins from root to self, e.g. ``"db-writer/gc/merge"``."""
        parts = []
        node: Optional[OpContext] = self
        while node is not None:
            parts.append(node.origin)
            node = node.parent
        return "/".join(reversed(parts))

    # -- accounting ----------------------------------------------------------

    @property
    def is_maintenance(self) -> bool:
        return self.origin in MAINTENANCE_ORIGINS

    def charge(self, bucket: str, us: float) -> None:
        if us:
            self.costs[bucket] = self.costs.get(bucket, 0.0) + us

    def fields(self) -> dict:
        """Identity fields for trace events."""
        out = {"origin": self.origin, "ctx": self.ctx_id}
        if self.parent is not None:
            out["path"] = self.path()
        if self.txn_id is not None:
            out["txn"] = self.txn_id
        if self.writer_id is not None:
            out["writer"] = self.writer_id
        if self.die is not None:
            out["die"] = self.die
        if self.data_class is not None:
            out["data_class"] = self.data_class
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpContext({self.path()!r}, id={self.ctx_id})"
