"""Cross-layer telemetry: metrics, tracing, causal context, attribution.

The observability substrate for the whole NoFTL stack.  One
:class:`MetricsRegistry` is threaded through a rig (flash array, FTL or
NoFTL storage manager, buffer pool, db-writers); one :class:`EventTrace`
carries spans for GC runs, wear-leveling migrations, flusher rounds and
transactions.  Every bench exports ``registry.snapshot()`` as JSON — the
machine-readable counterpart of the printed tables, and the source of the
Figure 3/4 quantities (see DESIGN.md, "Telemetry metric names").

On top of the counters, :class:`OpContext` carries each request's root
cause down to individual flash commands, and
:mod:`repro.telemetry.attribution` decomposes tail latency into media /
queueing-behind-GC / retry shares from the resulting trace events (the
``python -m repro.bench.observe`` dashboard).
:mod:`repro.telemetry.health` adds the opt-in device-health layer: the
write-amplification ledger, wear/endurance accounting, and the live
windowed load/saturation engine behind ``python -m repro.bench.health``.
"""

from .attribution import (
    LiveBlame,
    blame_breakdown,
    credit_busy,
    host_ops,
    origin_mix,
    span_rollup,
    verify_origins,
    windowed_series,
)
from .context import (
    COST_BUCKETS,
    DATA_CLASSES,
    MAINTENANCE_ORIGINS,
    ORIGINS,
    OpContext,
    data_class_of,
)
from .health import (
    HealthMonitor,
    LoadWindowEngine,
    WriteAmplificationLedger,
    wear_report,
)
from .registry import (
    FLASH_OPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flash_totals,
    sum_per_die,
)
from .trace import EventTrace, Span, TraceEvent, load_jsonl

__all__ = [
    "FLASH_OPS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flash_totals",
    "sum_per_die",
    "EventTrace",
    "Span",
    "TraceEvent",
    "load_jsonl",
    "OpContext",
    "ORIGINS",
    "MAINTENANCE_ORIGINS",
    "COST_BUCKETS",
    "DATA_CLASSES",
    "data_class_of",
    "LiveBlame",
    "blame_breakdown",
    "credit_busy",
    "host_ops",
    "origin_mix",
    "span_rollup",
    "verify_origins",
    "windowed_series",
    "HealthMonitor",
    "LoadWindowEngine",
    "WriteAmplificationLedger",
    "wear_report",
]
