"""Cross-layer telemetry: metrics registry + structured event tracing.

The observability substrate for the whole NoFTL stack.  One
:class:`MetricsRegistry` is threaded through a rig (flash array, FTL or
NoFTL storage manager, buffer pool, db-writers); one :class:`EventTrace`
carries spans for GC runs, wear-leveling migrations, flusher rounds and
transactions.  Every bench exports ``registry.snapshot()`` as JSON — the
machine-readable counterpart of the printed tables, and the source of the
Figure 3/4 quantities (see DESIGN.md, "Telemetry metric names").
"""

from .registry import (
    FLASH_OPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flash_totals,
    sum_per_die,
)
from .trace import EventTrace, Span, TraceEvent

__all__ = [
    "FLASH_OPS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flash_totals",
    "sum_per_die",
    "EventTrace",
    "Span",
    "TraceEvent",
]
