"""Cross-layer telemetry: metrics, tracing, causal context, attribution.

The observability substrate for the whole NoFTL stack.  One
:class:`MetricsRegistry` is threaded through a rig (flash array, FTL or
NoFTL storage manager, buffer pool, db-writers); one :class:`EventTrace`
carries spans for GC runs, wear-leveling migrations, flusher rounds and
transactions.  Every bench exports ``registry.snapshot()`` as JSON — the
machine-readable counterpart of the printed tables, and the source of the
Figure 3/4 quantities (see DESIGN.md, "Telemetry metric names").

On top of the counters, :class:`OpContext` carries each request's root
cause down to individual flash commands, and
:mod:`repro.telemetry.attribution` decomposes tail latency into media /
queueing-behind-GC / retry shares from the resulting trace events (the
``python -m repro.bench.observe`` dashboard).
"""

from .attribution import (
    LiveBlame,
    blame_breakdown,
    host_ops,
    origin_mix,
    span_rollup,
    verify_origins,
    windowed_series,
)
from .context import COST_BUCKETS, MAINTENANCE_ORIGINS, ORIGINS, OpContext
from .registry import (
    FLASH_OPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flash_totals,
    sum_per_die,
)
from .trace import EventTrace, Span, TraceEvent, load_jsonl

__all__ = [
    "FLASH_OPS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flash_totals",
    "sum_per_die",
    "EventTrace",
    "Span",
    "TraceEvent",
    "load_jsonl",
    "OpContext",
    "ORIGINS",
    "MAINTENANCE_ORIGINS",
    "COST_BUCKETS",
    "LiveBlame",
    "blame_breakdown",
    "host_ops",
    "origin_mix",
    "span_rollup",
    "verify_origins",
    "windowed_series",
]
