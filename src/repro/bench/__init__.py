"""Benchmark harness: one module per table/figure/claim of the paper.

| Module            | Paper artifact                                     |
|-------------------|----------------------------------------------------|
| ``fig3``          | Figure 3 — GC overhead, FASTer vs NoFTL            |
| ``fig4``          | Figure 4a/4b — db-writer assignment vs die count   |
| ``headline``      | §1/§5 — NoFTL 1.5-2.4x TPS over FTL devices        |
| ``dftl_slowdown`` | §3.1 — DFTL up to 3.7x slower than page mapping    |
| ``latency``       | §3 — 0.45 ms mean / 80 ms outlier write latency    |
| ``validation``    | Demo 1 — emulator validated against OpenSSD        |
| ``parallelism``   | §3.2 — 32 NCQ slots vs ~160 native flash commands  |
| ``lifetime``      | §5 — half the erases => ~2x flash lifetime         |
| ``ablation``      | DESIGN.md E10 — NoFTL design-choice ablation       |
| ``chaos``         | Fault model — TPC under injected flash faults      |
| ``health``        | Device health: WA ledger, wear, saturation windows |
"""

from .ablation import AblationResult, AblationRow, ablate_noftl
from .chaos import ChaosReport, ChecksumOracle, default_chaos_plan, run_chaos
from .dftl_slowdown import DFTLPoint, DFTLResult, dftl_slowdown
from .fig3 import Fig3Result, Fig3Row, fig3_gc_overhead, record_trace
from .fig4 import Fig4Point, Fig4Result, fig4_dbwriters
from .headline import HeadlinePoint, HeadlineResult, headline_throughput
from .latency import LatencyProfile, latency_outliers
from .lifetime import LifetimeReport, lifetime_factor, wear_spread
from .parallelism import (
    ParallelismPoint,
    ParallelismResult,
    interface_parallelism,
)
from .reporting import emit, ratio, render_series, render_table
from .rigs import (
    DEMO_GEOMETRY,
    attach_database,
    build_blockdev_rig,
    build_noftl_rig,
    build_sync_blockdev,
    build_sync_noftl,
    geometry_for_footprint,
    geometry_with_dies,
    make_ftl,
    measure_workload_footprint,
    sized_geometry,
)
from .validation import ValidationReport, ValidationRow, validate_emulator

__all__ = [
    "AblationResult", "AblationRow", "ablate_noftl",
    "ChaosReport", "ChecksumOracle", "default_chaos_plan", "run_chaos",
    "DFTLPoint", "DFTLResult", "dftl_slowdown",
    "Fig3Result", "Fig3Row", "fig3_gc_overhead", "record_trace",
    "Fig4Point", "Fig4Result", "fig4_dbwriters",
    "HeadlinePoint", "HeadlineResult", "headline_throughput",
    "LatencyProfile", "latency_outliers",
    "LifetimeReport", "lifetime_factor", "wear_spread",
    "ParallelismPoint", "ParallelismResult", "interface_parallelism",
    "emit", "ratio", "render_series", "render_table",
    "DEMO_GEOMETRY", "attach_database", "build_blockdev_rig",
    "build_noftl_rig", "build_sync_blockdev", "build_sync_noftl",
    "geometry_for_footprint", "geometry_with_dies", "make_ftl",
    "measure_workload_footprint", "sized_geometry",
    "ValidationReport", "ValidationRow", "validate_emulator",
]
