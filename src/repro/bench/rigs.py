"""Benchmark rigs: standard device + database assemblies.

Every experiment builds its testbed from these factories so that the
storage architectures differ in exactly one dimension — the thing being
measured — while geometry, timing, buffer sizing and workload scale stay
identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager, SyncNoFTLStorage
from ..db import Database, BlockDeviceAdapter, NoFTLStorageAdapter
from ..device import BlockDevice, DeviceFrontend, FrontendConfig, SyncBlockDevice
from ..flash import (
    FaultPlan,
    FlashArray,
    Geometry,
    MLC_TIMING,
    SimExecutor,
    SimFlashDevice,
    SyncExecutor,
    SyncFlashDevice,
    TimingSpec,
)
from ..ftl import DFTL, FASTer, PageMapFTL
from ..sim import Simulator
from ..telemetry import EventTrace, MetricsRegistry

__all__ = [
    "geometry_with_dies",
    "DEMO_GEOMETRY",
    "make_ftl",
    "NoFTLRig",
    "BlockDeviceRig",
    "build_noftl_rig",
    "build_blockdev_rig",
    "build_sync_noftl",
    "build_sync_blockdev",
    "attach_database",
]

#: Total flash pages kept constant while the die count varies (the paper
#: fixes a 10 GB drive and re-slices it over 1..32 dies in Figure 4).
TOTAL_PAGES_BUDGET = 32768
PAGES_PER_BLOCK = 32
PLANES_PER_DIE = 2
PAGE_BYTES = 2048


def geometry_with_dies(dies: int, page_bytes: int = PAGE_BYTES) -> Geometry:
    """A device with ``dies`` dies and a constant total capacity."""
    if dies < 1:
        raise ValueError("dies must be >= 1")
    if dies <= 2:
        channels = 1
    elif dies <= 8:
        channels = 2
    else:
        channels = 4
    if dies % channels != 0:
        channels = 1
    dies_per_chip = dies // channels
    blocks_per_plane = TOTAL_PAGES_BUDGET // (
        dies * PLANES_PER_DIE * PAGES_PER_BLOCK
    )
    if blocks_per_plane < 6:
        raise ValueError(f"too many dies ({dies}) for the capacity budget")
    return Geometry(
        channels=channels,
        chips_per_channel=1,
        dies_per_chip=dies_per_chip,
        planes_per_die=PLANES_PER_DIE,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=PAGES_PER_BLOCK,
        page_bytes=page_bytes,
    )


DEMO_GEOMETRY = geometry_with_dies(8)


def geometry_for_footprint(
    footprint_pages: int,
    utilization: float = 0.8,
    op_ratio: float = 0.12,
    dies: int = 8,
    page_bytes: int = PAGE_BYTES,
) -> Geometry:
    """Size a device so ``footprint_pages`` fills ``utilization`` of the
    exported logical space — the steady-state condition GC comparisons
    need (an oversized device never garbage-collects)."""
    if not 0.1 <= utilization <= 0.98:
        raise ValueError("utilization must be in [0.1, 0.98]")
    needed_logical = footprint_pages / utilization
    needed_total = needed_logical / (1.0 - op_ratio)
    per_die = PLANES_PER_DIE * PAGES_PER_BLOCK
    blocks_per_plane = max(
        6, -(-int(needed_total) // (dies * per_die))
    )
    if dies <= 2:
        channels = 1
    elif dies <= 8:
        channels = 2
    else:
        channels = 4
    if dies % channels != 0:
        channels = 1
    return Geometry(
        channels=channels,
        chips_per_channel=1,
        dies_per_chip=dies // channels,
        planes_per_die=PLANES_PER_DIE,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=PAGES_PER_BLOCK,
        page_bytes=page_bytes,
    )


def make_ftl(name: str, geometry: Geometry, op_ratio: float = 0.12,
             rng: Optional[random.Random] = None, **kwargs):
    """FTL factory by name: 'pagemap' | 'dftl' | 'faster'."""
    if name == "pagemap":
        return PageMapFTL(geometry, op_ratio=op_ratio, rng=rng, **kwargs)
    if name == "dftl":
        kwargs.setdefault("cmt_entries", 1024)
        kwargs.setdefault("entries_per_translation_page", 256)
        return DFTL(geometry, op_ratio=op_ratio, rng=rng, **kwargs)
    if name == "faster":
        kwargs.setdefault("log_fraction", 0.07)
        # The SW-log path assumes serialized firmware; the DES rigs run
        # a few FTL operations concurrently (controller slots), so the
        # random-log configuration is used there.
        kwargs.setdefault("use_sw_log", False)
        return FASTer(geometry, op_ratio=op_ratio, rng=rng, **kwargs)
    raise ValueError(f"unknown FTL {name!r}")


@dataclass
class NoFTLRig:
    sim: Simulator
    geometry: Geometry
    array: FlashArray
    manager: NoFTLStorageManager
    storage: NoFTLStorage
    adapter: NoFTLStorageAdapter
    db: Optional[Database] = None
    telemetry: Optional[MetricsRegistry] = None
    trace: Optional[EventTrace] = None
    #: Present only when the rig was built with ``frontend_config``.
    #: ``adapter`` stays the raw write-through adapter; the DBMS mounts
    #: the frontend instead (see :func:`attach_database`).
    frontend: Optional[DeviceFrontend] = None

    @property
    def mount_point(self):
        """What the DBMS mounts: the front end when present, else the
        raw adapter."""
        return self.frontend if self.frontend is not None else self.adapter


@dataclass
class BlockDeviceRig:
    sim: Simulator
    geometry: Geometry
    array: FlashArray
    ftl: object
    device: BlockDevice
    adapter: BlockDeviceAdapter
    db: Optional[Database] = None
    telemetry: Optional[MetricsRegistry] = None
    trace: Optional[EventTrace] = None
    frontend: Optional[DeviceFrontend] = None

    @property
    def mount_point(self):
        return self.frontend if self.frontend is not None else self.adapter


def build_noftl_rig(
    geometry: Geometry = DEMO_GEOMETRY,
    timing: TimingSpec = MLC_TIMING,
    config: Optional[NoFTLConfig] = None,
    seed: int = 0,
    telemetry: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
    fault_plan: Optional[FaultPlan] = None,
    store_data: bool = True,
    frontend_config: Optional[FrontendConfig] = None,
) -> NoFTLRig:
    """Figure 1.c: DBMS on native flash through NoFTL.

    ``frontend_config`` (opt-in, default off so legacy rigs stay
    event-for-event identical) interposes a :class:`DeviceFrontend` —
    hazard-safe admission plus a write-back cache — between the DBMS and
    the adapter; power cuts on the array then wreck the volatile cache
    through the listener hook.
    """
    sim = Simulator()
    telemetry = telemetry or MetricsRegistry()
    if trace is not None:
        trace.set_clock(lambda: sim.now)
    array = FlashArray(geometry, timing, rng=random.Random(seed),
                       telemetry=telemetry, trace=trace,
                       fault_plan=fault_plan, store_data=store_data)
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(
        geometry,
        config or NoFTLConfig(op_ratio=0.12),
        factory_bad_blocks=array.factory_bad_blocks(),
        rng=random.Random(seed + 1),
        telemetry=telemetry,
        trace=trace,
    )
    storage = NoFTLStorage(sim, manager, executor)
    adapter = NoFTLStorageAdapter(storage)
    frontend = None
    if frontend_config is not None:
        frontend = DeviceFrontend(sim, adapter, frontend_config,
                                  array=array, telemetry=telemetry,
                                  trace=manager.trace)
    return NoFTLRig(sim, geometry, array, manager, storage, adapter,
                    telemetry=telemetry, trace=manager.trace,
                    frontend=frontend)


def build_blockdev_rig(
    ftl_name: str,
    geometry: Geometry = DEMO_GEOMETRY,
    timing: TimingSpec = MLC_TIMING,
    ncq_depth: int = 32,
    seed: int = 0,
    telemetry: Optional[MetricsRegistry] = None,
    trace: Optional[EventTrace] = None,
    frontend_config: Optional[FrontendConfig] = None,
    **ftl_kwargs,
) -> BlockDeviceRig:
    """Figure 1.a/b: DBMS on a black-box SSD with an on-device FTL."""
    sim = Simulator()
    telemetry = telemetry or MetricsRegistry()
    if trace is not None:
        trace.set_clock(lambda: sim.now)
    array = FlashArray(geometry, timing, rng=random.Random(seed),
                       telemetry=telemetry, trace=trace)
    executor = SimExecutor(SimFlashDevice(sim, array))
    ftl = make_ftl(ftl_name, geometry, rng=random.Random(seed + 1),
                   bad_blocks=array.factory_bad_blocks(),
                   telemetry=telemetry, trace=trace, **ftl_kwargs)
    device = BlockDevice(sim, ftl, executor, ncq_depth=ncq_depth)
    adapter = BlockDeviceAdapter(device)
    frontend = None
    if frontend_config is not None:
        frontend = DeviceFrontend(sim, adapter, frontend_config,
                                  array=array, telemetry=telemetry,
                                  trace=ftl.trace)
    return BlockDeviceRig(sim, geometry, array, ftl, device, adapter,
                          telemetry=telemetry, trace=ftl.trace,
                          frontend=frontend)


def build_sync_noftl(
    geometry: Geometry = DEMO_GEOMETRY,
    timing: TimingSpec = MLC_TIMING,
    config: Optional[NoFTLConfig] = None,
    seed: int = 0,
    store_data: bool = False,
    telemetry: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
):
    """Synchronous NoFTL target for trace replay (Figure 3)."""
    telemetry = telemetry or MetricsRegistry()
    array = FlashArray(geometry, timing, store_data=store_data,
                       rng=random.Random(seed), telemetry=telemetry,
                       fault_plan=fault_plan)
    executor = SyncExecutor(SyncFlashDevice(array))
    manager = NoFTLStorageManager(
        geometry, config or NoFTLConfig(op_ratio=0.12),
        factory_bad_blocks=array.factory_bad_blocks(),
        rng=random.Random(seed + 1),
        telemetry=telemetry,
    )
    return SyncNoFTLStorage(manager, executor), array


def build_sync_blockdev(
    ftl_name: str,
    geometry: Geometry = DEMO_GEOMETRY,
    timing: TimingSpec = MLC_TIMING,
    seed: int = 0,
    store_data: bool = False,
    telemetry: Optional[MetricsRegistry] = None,
    **ftl_kwargs,
):
    """Synchronous black-box SSD target for trace replay (Figure 3)."""
    telemetry = telemetry or MetricsRegistry()
    array = FlashArray(geometry, timing, store_data=store_data,
                       rng=random.Random(seed), telemetry=telemetry)
    executor = SyncExecutor(SyncFlashDevice(array))
    ftl = make_ftl(ftl_name, geometry, rng=random.Random(seed + 1),
                   bad_blocks=array.factory_bad_blocks(),
                   telemetry=telemetry, **ftl_kwargs)
    return SyncBlockDevice(ftl, executor), array


def measure_workload_footprint(workload, page_bytes: int = PAGE_BYTES) -> int:
    """Load a workload into a RAM-backed database and return how many
    pages its initial population occupies — used to size flash devices to
    a target utilization before the real run."""
    sim = Simulator()
    from ..db.storage import RAMStorageAdapter

    ram = RAMStorageAdapter(sim, logical_pages=1_000_000, latency_us=1.0)
    db = Database(sim, ram, page_bytes=page_bytes, buffer_capacity=4096,
                  cpu_us_per_op=0.0, wal_flush_latency_us=1.0)
    sim.run_process(workload.load(db))
    return db.pages_allocated


def sized_geometry(
    footprint_pages: int,
    dies: int,
    utilization: float = 0.85,
    op_ratio: float = 0.12,
    pages_per_block: int = PAGES_PER_BLOCK,
    headroom_pages: int = 0,
    page_bytes: int = PAGE_BYTES,
) -> Geometry:
    """Like :func:`geometry_for_footprint` with an explicit die count and
    page/block size — used by sweeps that re-slice one drive over many
    dies (Figure 4) while keeping space utilization constant."""
    needed_total = (footprint_pages + headroom_pages) / utilization \
        / (1.0 - op_ratio)
    per_die = PLANES_PER_DIE * pages_per_block
    blocks_per_plane = max(6, -(-int(needed_total) // (dies * per_die)))
    if dies <= 2:
        channels = 1
    elif dies <= 8:
        channels = 2
    else:
        channels = 4
    if dies % channels != 0:
        channels = 1
    return Geometry(
        channels=channels,
        chips_per_channel=1,
        dies_per_chip=dies // channels,
        planes_per_die=PLANES_PER_DIE,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        page_bytes=page_bytes,
    )


def attach_database(
    rig,
    buffer_capacity: int = 160,
    cpu_us_per_op: float = 3.0,
    wal_flush_latency_us: float = 120.0,
    foreground_flush: bool = True,
    dirty_throttle_fraction=None,
    heat_hints: bool = False,
) -> Database:
    """Mount the mini-DBMS on a rig's storage adapter (through the
    device front end when the rig was built with one)."""
    db = Database(
        rig.sim,
        getattr(rig, "frontend", None) or rig.adapter,
        page_bytes=rig.geometry.page_bytes,
        buffer_capacity=buffer_capacity,
        cpu_us_per_op=cpu_us_per_op,
        wal_flush_latency_us=wal_flush_latency_us,
        foreground_flush=foreground_flush,
        dirty_throttle_fraction=dirty_throttle_fraction,
        trace=getattr(rig, "trace", None),
        heat_hints=heat_hints,
    )
    rig.db = db
    return db
