"""Chaos rig — TPC workloads on NoFTL under an adversarial fault plan.

The robustness claim behind the paper's architecture is that moving flash
management into the DBMS does not trade away the reliability a black-box
FTL provides.  This rig puts that to the test: a full NoFTL stack (DES
flash device, storage manager, mini-DBMS) runs TPC-C or TPC-B while the
:class:`~repro.flash.faults.FaultInjector` fires transient and persistent
read faults, program failures, erase failures, a whole-die outage window
and latency spikes — then proves, via per-page checksums, that **no
acknowledged write was lost**.

Verification is two-layered:

* a :class:`ChecksumOracle` wraps the storage adapter and records the
  checksum of every page write the device *acknowledged*; after the run,
  every recorded page is read back and its checksum compared — a mismatch
  is lost-or-corrupted committed data;
* the workload's own ``verify_consistency`` audits the business
  invariants (TPC-C stock/order counts, TPC-B balance sheets).

Run from the command line (used by the CI ``chaos-smoke`` job)::

    python -m repro.bench.chaos --workload tpcc --duration-us 400000 \
        --seed 7 --export

The telemetry snapshot (fault counters, retry/scrub/remap counters,
degraded gauge) lands in ``$REPRO_METRICS_DIR/chaos_<workload>.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import NoFTLConfig
from ..core.badblock import DegradedModeError
from ..flash import FaultPlan, FaultSpec, UncorrectableError, page_checksum
from ..workloads import TPCB, TPCC, run_workload
from .reporting import export_metrics
from .rigs import attach_database, build_noftl_rig, sized_geometry, \
    measure_workload_footprint

__all__ = ["ChecksumOracle", "ChaosReport", "default_chaos_plan",
           "run_chaos"]


class ChecksumOracle:
    """Storage-adapter wrapper recording a checksum per acknowledged write.

    Only writes whose generator completed (the device acknowledged the
    program, after any remap/retry recovery) are recorded — exactly the
    set of pages the DBMS is entitled to read back.

    When the wrapped adapter is a write-back device front end, the oracle
    additionally tracks the **durability contract**: every acknowledged
    write appends to a per-page ``history``; :meth:`flush_barrier` (a
    passthrough to the adapter's barrier) advances ``durable_floor`` to
    the newest version acknowledged *before* the barrier was called.
    After a power cut the media must hold some version at or past the
    floor — acked-volatile versions (past the floor) may vanish,
    acked-durable ones (at the floor) may not.

    ``shadow_reads=True`` arms a live read-after-write hazard check:
    every read's result must checksum to the newest version acknowledged
    at issue time, or any version acknowledged while the read was in
    flight.  A stale read is appended to ``hazard_violations`` — the
    siege gate requires that list to stay empty.

    A trim's outcome is recorded only on acknowledged completion.  A
    trim that dies mid-flight (power cut after partial FTL invalidation)
    leaves the page *indeterminate*: the old content may or may not
    still be readable, so post-run audits must skip it rather than
    demand either outcome.
    """

    def __init__(self, adapter, shadow_reads: bool = False):
        self.adapter = adapter
        self.logical_pages = adapter.logical_pages
        self.num_regions = adapter.num_regions
        self.telemetry = getattr(adapter, "telemetry", None)
        self.checksums: Dict[int, int] = {}
        self.writes_acked = 0
        self.shadow_reads = shadow_reads
        #: Per-page append-only checksum history of acknowledged writes
        #: (newest last); restarted by an acknowledged trim.
        self.history: Dict[int, List[int]] = {}
        #: Per-page index into ``history``: the newest version covered by
        #: a completed barrier.  Versions past the floor are volatile.
        self.durable_floor: Dict[int, int] = {}
        #: Per-page checksums superseded by a trim.  A NoFTL trim only
        #: mutates the in-RAM mapping — nothing is journaled to flash —
        #: so a power cut legally *resurrects* pre-trim versions when the
        #: OOB mount scan finds their pages still programmed.  Post-cut
        #: audits must accept these as acked (never-garbage) content.
        self.retired: Dict[int, List[int]] = {}
        #: Pages whose newest acknowledged op is a trim.
        self.trimmed: set = set()
        #: Pages whose trim died mid-flight: content is unknowable.
        self.indeterminate: set = set()
        self.barriers_completed = 0
        self.reads_checked = 0
        self.hazard_violations: List[dict] = []

    @property
    def maintenance_active(self) -> bool:
        return bool(getattr(self.adapter, "maintenance_active", False))

    def read(self, page_id: int, ctx=None):
        issue_len = len(self.history.get(page_id, ()))
        data = yield from self.adapter.read(page_id, ctx=ctx)
        if self.shadow_reads:
            self.reads_checked += 1
            hist = self.history.get(page_id, ())
            if (data is not None and issue_len
                    and len(hist) >= issue_len
                    and page_id not in self.trimmed
                    and page_id not in self.indeterminate):
                # RAW shadow model: acceptable versions are the newest
                # acked at issue plus anything acked while in flight.  A
                # history shorter than at issue means a trim+rewrite
                # interleaved with this read — indeterminate, skipped.
                acceptable = hist[issue_len - 1:]
                got = page_checksum(data)
                if got not in acceptable:
                    self.hazard_violations.append({
                        "page": page_id,
                        "got": got,
                        "acceptable": list(acceptable),
                    })
        return data

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        yield from self.adapter.write(page_id, data, hint, ctx=ctx)
        # Only reached when the write was acknowledged (no exception).
        self.checksums[page_id] = page_checksum(data)
        self.writes_acked += 1
        self.trimmed.discard(page_id)
        self.indeterminate.discard(page_id)
        self.history.setdefault(page_id, []).append(self.checksums[page_id])

    def trim(self, page_id: int, ctx=None):
        try:
            yield from self.adapter.trim(page_id, ctx=ctx)
        except DegradedModeError:
            # Shed / refused before any side effect: the trim never
            # happened, every recorded version still stands.
            raise
        except BaseException:
            # Mid-flight failure after (possibly partial) FTL
            # invalidation: neither "still holds the old data" nor
            # "deallocated" is a safe claim.  Drop the page from every
            # audited set and remember why.
            self._retire(page_id)
            self.indeterminate.add(page_id)
            raise
        # Acknowledged: the trim supersedes all recorded versions.
        self._retire(page_id)
        self.trimmed.add(page_id)
        self.indeterminate.discard(page_id)

    def _retire(self, page_id: int) -> None:
        """Move a page's recorded versions out of the live audit sets,
        keeping them in ``retired`` (an un-journaled trim is not
        crash-durable, so these may resurface after a power cut)."""
        self.checksums.pop(page_id, None)
        old = self.history.pop(page_id, None)
        if old:
            self.retired.setdefault(page_id, []).extend(old)
        self.durable_floor.pop(page_id, None)

    def flush_barrier(self, ctx=None):
        """Passthrough barrier; on return, the contract snapshot taken at
        the *call* is marked durable.  A barrier that raises advances no
        floors — no guarantee was given."""
        snap = {
            lpn: (len(self.history[lpn]) - 1, self.history[lpn][-1])
            for lpn in self.checksums
        }
        barrier = getattr(self.adapter, "flush_barrier", None)
        if barrier is not None:
            yield from barrier(ctx=ctx)
        for lpn, (idx, cks) in snap.items():
            hist = self.history.get(lpn)
            if hist is None or idx >= len(hist) or hist[idx] != cks:
                # A trim completed while flushing: the snapshotted
                # versions were superseded (history restarted), so the
                # barrier promises nothing for this page anymore.
                continue
            if idx > self.durable_floor.get(lpn, -1):
                self.durable_floor[lpn] = idx
        self.barriers_completed += 1

    def durable_checksum(self, page_id: int):
        """The checksum the media must still hold after a power cut, or
        ``None`` when nothing durable was promised for the page.  Any
        version at or past the floor satisfies the contract (a destage
        may have landed a newer acked version before the cut)."""
        floor = self.durable_floor.get(page_id)
        if floor is None:
            return None
        return self.history[page_id][floor]

    def acceptable_after_cut(self, page_id: int) -> List[int]:
        """Every checksum a post-cut readback may legally return for a
        page with a durable floor: the floor version or anything acked
        after it."""
        floor = self.durable_floor.get(page_id)
        if floor is None:
            return []
        return list(self.history[page_id][floor:])

    def acked_versions(self, page_id: int) -> List[int]:
        """Every checksum ever acknowledged for a page, including
        versions a later trim superseded.  After a power cut, a page with
        no durable floor may legally read back as *any* of these (trims
        are in-RAM only, so the mount scan can resurrect pre-trim pages)
        — but never as something outside this set."""
        return (self.retired.get(page_id, [])
                + self.history.get(page_id, []))

    def region_of_page(self, page_id: int) -> int:
        return self.adapter.region_of_page(page_id)


@dataclass
class ChaosReport:
    """Everything the acceptance gate needs to judge one chaos run."""

    workload: str
    seed: int
    commits: int
    tps: float
    pages_checked: int
    pages_lost: List[int] = field(default_factory=list)
    pages_corrupted: List[int] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    read_retries: int = 0
    scrubs: int = 0
    program_remaps: int = 0
    relocation_skips: int = 0
    grown_bad_blocks: int = 0
    degraded: bool = False
    consistency_ok: bool = True
    #: The rig's registry, for exporting the full telemetry snapshot.
    telemetry: Optional[object] = None

    @property
    def data_ok(self) -> bool:
        return not self.pages_lost and not self.pages_corrupted

    @property
    def ok(self) -> bool:
        return self.data_ok and self.consistency_ok

    def snapshot(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "commits": self.commits,
            "tps": self.tps,
            "pages_checked": self.pages_checked,
            "pages_lost": len(self.pages_lost),
            "pages_corrupted": len(self.pages_corrupted),
            "injected": dict(self.injected),
            "read_retries": self.read_retries,
            "scrubs": self.scrubs,
            "program_remaps": self.program_remaps,
            "relocation_skips": self.relocation_skips,
            "grown_bad_blocks": self.grown_bad_blocks,
            "degraded": self.degraded,
            "consistency_ok": self.consistency_ok,
            "ok": self.ok,
        }


def default_chaos_plan(seed: int = 7,
                       transient_read_rate: float = 0.015,
                       program_fail_rate: float = 0.02,
                       program_fail_count: int = 12,
                       outage_window=(1_200, 1_440),
                       outage_die: int = 1,
                       spike_window=(600, 1_000),
                       spike_factor: float = 4.0,
                       erase_fail_count: int = 1) -> FaultPlan:
    """The standard adversary: every fault kind the injector knows.

    * transient reads at >= 1% so the retry path runs constantly;
    * a dozen program failures (rate-spread so recovery programs are not
      themselves doomed) exercising remap + block retirement;
    * one whole-die outage window (op-count based, early enough that even
      short smoke runs reach it; narrower than the recovery paths'
      ``outage_retry_limit`` so a stalled writer always outlives it);
    * a latency spike window on die 0;
    * one deterministic erase failure growing a bad block through the
      erase path (the first BLOCK ERASE fails).
    """
    plan = FaultPlan(seed=seed)
    plan.add(FaultSpec(kind="transient_read", rate=transient_read_rate))
    plan.add(FaultSpec(kind="program_fail", rate=program_fail_rate,
                       count=program_fail_count))
    plan.add(FaultSpec(kind="die_outage", die=outage_die,
                       window=outage_window))
    plan.add(FaultSpec(kind="latency_spike", die=0, window=spike_window,
                       factor=spike_factor))
    plan.add(FaultSpec(kind="erase_fail", count=erase_fail_count))
    return plan


def _make_workload(name: str):
    if name == "tpcc":
        return TPCC(warehouses=2, customers_per_district=20, items=60)
    if name == "tpcb":
        return TPCB(sf=4, accounts_per_branch=200)
    raise ValueError(f"unknown chaos workload {name!r}")


def run_chaos(
    workload_name: str = "tpcc",
    duration_us: float = 400_000.0,
    seed: int = 7,
    fault_plan: Optional[FaultPlan] = None,
    num_terminals: int = 8,
    num_writers: int = 4,
    dies: int = 8,
    op_ratio: float = 0.28,
) -> ChaosReport:
    """One chaos run: load + run the workload under faults, then audit."""
    workload = _make_workload(workload_name)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies, utilization=0.8,
                              op_ratio=op_ratio,
                              headroom_pages=footprint // 2)
    plan = fault_plan if fault_plan is not None \
        else default_chaos_plan(seed=seed)
    rig = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=dies, op_ratio=op_ratio),
        seed=seed,
        fault_plan=plan,
        store_data=True,
    )
    oracle = ChecksumOracle(rig.adapter)
    rig.adapter = oracle
    db = attach_database(rig, buffer_capacity=max(64, footprint // 8),
                         foreground_flush=False)
    db.start_writers(num_writers, policy="region")
    stats = run_workload(
        rig.sim, db, _make_workload(workload_name),
        duration_us=duration_us,
        num_terminals=num_terminals,
        rng=random.Random(seed),
    )

    report = ChaosReport(
        workload=workload_name,
        seed=seed,
        commits=stats.commits,
        tps=stats.tps,
        pages_checked=len(oracle.checksums),
    )

    # -- audit 1: every acknowledged page reads back with its checksum ----
    def verify_pages():
        for lpn, expected in sorted(oracle.checksums.items()):
            try:
                data = yield from rig.storage.read(lpn)
            except UncorrectableError:
                report.pages_lost.append(lpn)
                continue
            if page_checksum(data) != expected:
                report.pages_corrupted.append(lpn)

    rig.sim.run_process(verify_pages())

    # -- audit 2: business-level invariants -------------------------------
    report.consistency_ok = bool(
        rig.sim.run_process(workload.verify_consistency(db))
    )

    manager_stats = rig.manager.stats
    report.injected = rig.array.fault_injector.injected_counts()
    report.read_retries = manager_stats.read_retries
    report.scrubs = manager_stats.scrubs
    report.program_remaps = manager_stats.program_remaps
    report.relocation_skips = manager_stats.relocation_skips
    report.grown_bad_blocks = manager_stats.grown_bad_blocks
    report.degraded = rig.manager.bad_blocks.degraded
    rig.telemetry.register_collector("chaos.report", report.snapshot)
    report.telemetry = rig.telemetry
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="TPC workload on NoFTL under an adversarial fault plan"
    )
    parser.add_argument("--workload", default="tpcc",
                        choices=("tpcc", "tpcb"))
    parser.add_argument("--duration-us", type=float, default=400_000.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--export", action="store_true",
                        help="write the telemetry snapshot to "
                             "$REPRO_METRICS_DIR")
    args = parser.parse_args(argv)

    report = run_chaos(workload_name=args.workload,
                       duration_us=args.duration_us, seed=args.seed)
    snap = report.snapshot()
    for key, value in snap.items():
        print(f"  {key}: {value}")
    if args.export:
        path = export_metrics(f"chaos_{args.workload}", report.telemetry,
                              extra=snap)
        print(f"telemetry snapshot: {path}")
    if not report.ok:
        print("CHAOS RUN FAILED: committed data lost or inconsistent")
        return 1
    print("chaos run ok: no acknowledged write lost")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
