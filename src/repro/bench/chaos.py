"""Chaos rig — TPC workloads on NoFTL under an adversarial fault plan.

The robustness claim behind the paper's architecture is that moving flash
management into the DBMS does not trade away the reliability a black-box
FTL provides.  This rig puts that to the test: a full NoFTL stack (DES
flash device, storage manager, mini-DBMS) runs TPC-C or TPC-B while the
:class:`~repro.flash.faults.FaultInjector` fires transient and persistent
read faults, program failures, erase failures, a whole-die outage window
and latency spikes — then proves, via per-page checksums, that **no
acknowledged write was lost**.

Verification is two-layered:

* a :class:`ChecksumOracle` wraps the storage adapter and records the
  checksum of every page write the device *acknowledged*; after the run,
  every recorded page is read back and its checksum compared — a mismatch
  is lost-or-corrupted committed data;
* the workload's own ``verify_consistency`` audits the business
  invariants (TPC-C stock/order counts, TPC-B balance sheets).

Run from the command line (used by the CI ``chaos-smoke`` job)::

    python -m repro.bench.chaos --workload tpcc --duration-us 400000 \
        --seed 7 --export

The telemetry snapshot (fault counters, retry/scrub/remap counters,
degraded gauge) lands in ``$REPRO_METRICS_DIR/chaos_<workload>.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import NoFTLConfig
from ..flash import FaultPlan, FaultSpec, UncorrectableError, page_checksum
from ..workloads import TPCB, TPCC, run_workload
from .reporting import export_metrics
from .rigs import attach_database, build_noftl_rig, sized_geometry, \
    measure_workload_footprint

__all__ = ["ChecksumOracle", "ChaosReport", "default_chaos_plan",
           "run_chaos"]


class ChecksumOracle:
    """Storage-adapter wrapper recording a checksum per acknowledged write.

    Only writes whose generator completed (the device acknowledged the
    program, after any remap/retry recovery) are recorded — exactly the
    set of pages the DBMS is entitled to read back.
    """

    def __init__(self, adapter):
        self.adapter = adapter
        self.logical_pages = adapter.logical_pages
        self.num_regions = adapter.num_regions
        self.telemetry = getattr(adapter, "telemetry", None)
        self.checksums: Dict[int, int] = {}
        self.writes_acked = 0

    def read(self, page_id: int, ctx=None):
        data = yield from self.adapter.read(page_id, ctx=ctx)
        return data

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        yield from self.adapter.write(page_id, data, hint, ctx=ctx)
        # Only reached when the write was acknowledged (no exception).
        self.checksums[page_id] = page_checksum(data)
        self.writes_acked += 1

    def trim(self, page_id: int, ctx=None):
        yield from self.adapter.trim(page_id, ctx=ctx)
        self.checksums.pop(page_id, None)

    def region_of_page(self, page_id: int) -> int:
        return self.adapter.region_of_page(page_id)


@dataclass
class ChaosReport:
    """Everything the acceptance gate needs to judge one chaos run."""

    workload: str
    seed: int
    commits: int
    tps: float
    pages_checked: int
    pages_lost: List[int] = field(default_factory=list)
    pages_corrupted: List[int] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    read_retries: int = 0
    scrubs: int = 0
    program_remaps: int = 0
    relocation_skips: int = 0
    grown_bad_blocks: int = 0
    degraded: bool = False
    consistency_ok: bool = True
    #: The rig's registry, for exporting the full telemetry snapshot.
    telemetry: Optional[object] = None

    @property
    def data_ok(self) -> bool:
        return not self.pages_lost and not self.pages_corrupted

    @property
    def ok(self) -> bool:
        return self.data_ok and self.consistency_ok

    def snapshot(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "commits": self.commits,
            "tps": self.tps,
            "pages_checked": self.pages_checked,
            "pages_lost": len(self.pages_lost),
            "pages_corrupted": len(self.pages_corrupted),
            "injected": dict(self.injected),
            "read_retries": self.read_retries,
            "scrubs": self.scrubs,
            "program_remaps": self.program_remaps,
            "relocation_skips": self.relocation_skips,
            "grown_bad_blocks": self.grown_bad_blocks,
            "degraded": self.degraded,
            "consistency_ok": self.consistency_ok,
            "ok": self.ok,
        }


def default_chaos_plan(seed: int = 7,
                       transient_read_rate: float = 0.015,
                       program_fail_rate: float = 0.02,
                       program_fail_count: int = 12,
                       outage_window=(1_200, 1_440),
                       outage_die: int = 1,
                       spike_window=(600, 1_000),
                       spike_factor: float = 4.0,
                       erase_fail_count: int = 1) -> FaultPlan:
    """The standard adversary: every fault kind the injector knows.

    * transient reads at >= 1% so the retry path runs constantly;
    * a dozen program failures (rate-spread so recovery programs are not
      themselves doomed) exercising remap + block retirement;
    * one whole-die outage window (op-count based, early enough that even
      short smoke runs reach it; narrower than the recovery paths'
      ``outage_retry_limit`` so a stalled writer always outlives it);
    * a latency spike window on die 0;
    * one deterministic erase failure growing a bad block through the
      erase path (the first BLOCK ERASE fails).
    """
    plan = FaultPlan(seed=seed)
    plan.add(FaultSpec(kind="transient_read", rate=transient_read_rate))
    plan.add(FaultSpec(kind="program_fail", rate=program_fail_rate,
                       count=program_fail_count))
    plan.add(FaultSpec(kind="die_outage", die=outage_die,
                       window=outage_window))
    plan.add(FaultSpec(kind="latency_spike", die=0, window=spike_window,
                       factor=spike_factor))
    plan.add(FaultSpec(kind="erase_fail", count=erase_fail_count))
    return plan


def _make_workload(name: str):
    if name == "tpcc":
        return TPCC(warehouses=2, customers_per_district=20, items=60)
    if name == "tpcb":
        return TPCB(sf=4, accounts_per_branch=200)
    raise ValueError(f"unknown chaos workload {name!r}")


def run_chaos(
    workload_name: str = "tpcc",
    duration_us: float = 400_000.0,
    seed: int = 7,
    fault_plan: Optional[FaultPlan] = None,
    num_terminals: int = 8,
    num_writers: int = 4,
    dies: int = 8,
    op_ratio: float = 0.28,
) -> ChaosReport:
    """One chaos run: load + run the workload under faults, then audit."""
    workload = _make_workload(workload_name)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies, utilization=0.8,
                              op_ratio=op_ratio,
                              headroom_pages=footprint // 2)
    plan = fault_plan if fault_plan is not None \
        else default_chaos_plan(seed=seed)
    rig = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=dies, op_ratio=op_ratio),
        seed=seed,
        fault_plan=plan,
        store_data=True,
    )
    oracle = ChecksumOracle(rig.adapter)
    rig.adapter = oracle
    db = attach_database(rig, buffer_capacity=max(64, footprint // 8),
                         foreground_flush=False)
    db.start_writers(num_writers, policy="region")
    stats = run_workload(
        rig.sim, db, _make_workload(workload_name),
        duration_us=duration_us,
        num_terminals=num_terminals,
        rng=random.Random(seed),
    )

    report = ChaosReport(
        workload=workload_name,
        seed=seed,
        commits=stats.commits,
        tps=stats.tps,
        pages_checked=len(oracle.checksums),
    )

    # -- audit 1: every acknowledged page reads back with its checksum ----
    def verify_pages():
        for lpn, expected in sorted(oracle.checksums.items()):
            try:
                data = yield from rig.storage.read(lpn)
            except UncorrectableError:
                report.pages_lost.append(lpn)
                continue
            if page_checksum(data) != expected:
                report.pages_corrupted.append(lpn)

    rig.sim.run_process(verify_pages())

    # -- audit 2: business-level invariants -------------------------------
    report.consistency_ok = bool(
        rig.sim.run_process(workload.verify_consistency(db))
    )

    manager_stats = rig.manager.stats
    report.injected = rig.array.fault_injector.injected_counts()
    report.read_retries = manager_stats.read_retries
    report.scrubs = manager_stats.scrubs
    report.program_remaps = manager_stats.program_remaps
    report.relocation_skips = manager_stats.relocation_skips
    report.grown_bad_blocks = manager_stats.grown_bad_blocks
    report.degraded = rig.manager.bad_blocks.degraded
    rig.telemetry.register_collector("chaos.report", report.snapshot)
    report.telemetry = rig.telemetry
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="TPC workload on NoFTL under an adversarial fault plan"
    )
    parser.add_argument("--workload", default="tpcc",
                        choices=("tpcc", "tpcb"))
    parser.add_argument("--duration-us", type=float, default=400_000.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--export", action="store_true",
                        help="write the telemetry snapshot to "
                             "$REPRO_METRICS_DIR")
    args = parser.parse_args(argv)

    report = run_chaos(workload_name=args.workload,
                       duration_us=args.duration_us, seed=args.seed)
    snap = report.snapshot()
    for key, value in snap.items():
        print(f"  {key}: {value}")
    if args.export:
        path = export_metrics(f"chaos_{args.workload}", report.telemetry,
                              extra=snap)
        print(f"telemetry snapshot: {path}")
    if not report.ok:
        print("CHAOS RUN FAILED: committed data lost or inconsistent")
        return 1
    print("chaos run ok: no acknowledged write lost")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
