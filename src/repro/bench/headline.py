"""Experiment E4 — the headline: live TPC throughput, NoFTL vs the
black-box FTL devices.

The paper's core claim: *"live TPC-C, -B and -H tests under Shore-MT
indicate a NoFTL performance improvement of 1.5x to 2.4x"* over the
conventional architectures (Figure 1.a/b with DFTL or FASTer behind the
block interface), specifically *"2.4x and 2.25x improvement in
transactional throughput (TPS) for TPC-C and -B"* versus FASTer.

Setup: identical flash geometry/timing and DBMS configuration; the only
variable is the storage architecture:

* ``noftl``  — native flash, host-side page mapping, trims and hints,
  per-region write concurrency, no NCQ cap (Figure 1.c);
* ``faster`` / ``dftl`` — the same flash behind a SATA-style block
  device: 32-deep NCQ, a single-controller mutex serializing FTL
  metadata work, no deallocation information.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from ..core import NoFTLConfig
from ..workloads import TPCB, TPCC, TPCE, TPCH, run_workload
from .reporting import ratio
from .rigs import (
    attach_database,
    build_blockdev_rig,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["HeadlinePoint", "HeadlineResult", "headline_throughput"]

ARCHITECTURES = ("noftl", "faster", "dftl")


@dataclass
class HeadlinePoint:
    workload: str
    architecture: str
    tps: float
    commits: int
    p99_latency_us: float
    gc_relocations: int
    erases: int


@dataclass
class HeadlineResult:
    points: List[HeadlinePoint] = field(default_factory=list)

    def tps(self, workload: str, architecture: str) -> float:
        for point in self.points:
            if (point.workload, point.architecture) == (workload,
                                                        architecture):
                return point.tps
        raise KeyError((workload, architecture))

    def speedup(self, workload: str, over: str) -> float:
        return ratio(self.tps(workload, "noftl"), self.tps(workload, over))


def _make_workload(name: str):
    if name == "tpcc":
        return TPCC(warehouses=4, customers_per_district=30, items=100)
    if name == "tpcb":
        return TPCB(sf=8, accounts_per_branch=400)
    if name == "tpce":
        return TPCE(customers=400, securities=60)
    if name == "tpch":
        return TPCH(customers=60, orders=300)
    raise ValueError(f"unknown workload {name!r}")


def headline_throughput(
    workloads: Sequence[str] = ("tpcc", "tpcb"),
    architectures: Sequence[str] = ARCHITECTURES,
    duration_us: float = 2_000_000,
    num_terminals: int = 16,
    num_writers: int = 8,
    dies: int = 8,
    utilization: float = 0.88,
    seed: int = 37,
) -> HeadlineResult:
    """Run each workload on each storage architecture; report TPS."""
    result = HeadlineResult()
    for workload_name in workloads:
        footprint = measure_workload_footprint(_make_workload(workload_name))
        geometry = sized_geometry(footprint, dies, utilization=utilization,
                                  headroom_pages=footprint // 2)
        buffer_capacity = max(64, footprint // 8)
        for architecture in architectures:
            if architecture == "noftl":
                rig = build_noftl_rig(
                    geometry=geometry,
                    config=NoFTLConfig(num_regions=dies, op_ratio=0.12),
                    seed=seed,
                )
                stats_source = rig.manager.stats
            else:
                kwargs = {}
                if architecture == "dftl":
                    # Scale the CMT with the device as real controllers
                    # are: ~3% of the page population (a 1 GiB mapping
                    # table does not fit in device SRAM — Section 3.1).
                    kwargs["cmt_entries"] = max(
                        128, geometry.total_pages // 32
                    )
                rig = build_blockdev_rig(architecture, geometry=geometry,
                                         seed=seed, **kwargs)
                stats_source = rig.ftl.stats
            db = attach_database(rig, buffer_capacity=buffer_capacity,
                                 foreground_flush=False)
            db.start_writers(
                num_writers,
                policy="region" if architecture == "noftl" else "global",
            )
            stats = run_workload(
                rig.sim, db, _make_workload(workload_name),
                duration_us=duration_us,
                num_terminals=num_terminals,
                rng=random.Random(seed),
            )
            result.points.append(HeadlinePoint(
                workload=workload_name,
                architecture=architecture,
                tps=stats.tps,
                commits=stats.commits,
                p99_latency_us=stats.latency.pct(99)
                if stats.latency.samples else 0.0,
                gc_relocations=stats_source.gc_relocations,
                erases=rig.array.counters.erases,
            ))
    return result
