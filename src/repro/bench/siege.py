"""Siege rig — the device front end's contracts under combined failure.

The front end (:class:`~repro.device.frontend.DeviceFrontend`) makes
three promises: acknowledged writes survive to exactly the extent the
durability contract says (barriered = on media, un-barriered = may
vanish with power), hazards never reorder (a read always observes the
newest acknowledged version), and overload is shed loudly (every refused
op surfaces as :class:`~repro.core.badblock.DegradedModeError` to its
caller, never silently dropped).  This rig attacks all three at once in
one seeded scenario:

* TPC-B runs through ``oracle(frontend(adapter))`` — every host-level
  ack and barrier lands in the :class:`~repro.bench.chaos.ChecksumOracle`
  with shadow read-after-write checking armed;
* open-loop **burst clients** hammer a reserved high-LPN range far past
  the write-back cache's destage throughput, forcing watermark
  backpressure into deadline sheds;
* the fault injector contributes a **whole-die outage** window, a
  **latency spike** window, and finally a **power cut** at a seeded
  command boundary (~72% of the baseline run's flash-op span, learned by
  a first fault-identical run without the cut);
* periodic **checkpoints** (buffer flush + ``flush_barrier``) advance
  the oracle's durable floors mid-flight, so the cut lands with a
  nontrivial mix of acked-durable and acked-volatile pages.

Post-cut audit order matters: power-cycle, then a **mount-only** pass
(the OOB scan is read-only, so mounting twice is safe) proves every
barriered page still reads back as an acceptable version *before* ARIES
replay rewrites anything; then the full
:func:`~repro.db.recovery.cold_start` proves transactional consistency
and that the database takes new traffic.

Gates (``--check``):

1. the cut fired;
2. **zero barriered-acknowledged writes lost** — every page with a
   durable floor reads back, post-cut pre-replay, as the floor version
   or a later acknowledged one;
3. volatile pages are *absent or an acked version* — never garbage
   (pre-trim versions count: a trim only mutates the in-RAM mapping, so
   the post-cut OOB scan may resurrect them);
4. **no hazard violation** — the oracle's shadow read model stayed clean
   for the whole run;
5. **sheds were reported, not dropped** — the front end's shed count
   equals the number of DegradedModeErrors observed by burst clients,
   db-writers (``pages_refused``) and the checkpointer, and is > 0;
6. cold start succeeds, TPC-B invariants hold, and the recovered
   database commits new transactions.

Run from the command line (used by the CI ``siege-smoke`` job)::

    python -m repro.bench.siege --check --export
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from ..db import cold_start
from ..device import FrontendConfig
from ..flash import (
    FaultPlan,
    FaultSpec,
    PowerCutError,
    ReadUnwrittenError,
    SimExecutor,
    SimFlashDevice,
    UncorrectableError,
    page_checksum,
)
from ..core.badblock import DegradedModeError
from ..sim import Simulator
from ..telemetry import HealthMonitor, MetricsRegistry, OpContext
from ..workloads import TPCB, run_workload
from .chaos import ChecksumOracle
from .reporting import emit, export_metrics
from .rigs import attach_database, build_noftl_rig, sized_geometry, \
    measure_workload_footprint

__all__ = ["SiegeReport", "run_siege", "siege_frontend_config"]


def siege_frontend_config() -> FrontendConfig:
    """Front-end tuning for the siege.

    The write deadline is short so burst overload sheds within the run;
    the read deadline is generous so foreground transactions (which do
    not catch DegradedModeError) are starved, throttled, slowed — but
    never killed.  The cache is small enough that burst arrivals
    structurally exceed destage throughput at every burst peak.
    """
    return FrontendConfig(
        max_inflight=8,
        destage_workers=4,
        cache_pages=96,
        dirty_high_watermark=0.75,
        queue_limit=64,
        read_deadline_us=200_000.0,
        write_deadline_us=2_500.0,
        trim_deadline_us=200_000.0,
        gc_blame_threshold=0.5,
    )


def _make_workload():
    return TPCB(sf=2, accounts_per_branch=120)


@dataclass
class SiegeReport:
    """Everything the acceptance gate needs to judge one siege run."""

    seed: int
    cut_op: int = 0
    fired: bool = False
    commits: int = 0
    baseline_ops: int = 0
    load_ops: int = 0
    # front-end activity (from the cut run)
    acks: int = 0
    destages: int = 0
    barriers: int = 0
    coalesced: int = 0
    hazard_stalls: int = 0
    volatile_at_cut: int = 0
    # shed accounting: reported (raised by the front end) vs observed
    # (caught and counted by some caller) — must match exactly.
    sheds_reported: int = 0
    sheds_burst: int = 0
    sheds_writers: int = 0
    sheds_checkpoint: int = 0
    # durability audit (post-cut, pre-replay)
    durable_pages: int = 0
    volatile_pages: int = 0
    lost_durable: List[int] = field(default_factory=list)
    corrupt_durable: List[int] = field(default_factory=list)
    corrupt_volatile: List[int] = field(default_factory=list)
    hazard_violations: int = 0
    reads_checked: int = 0
    # recovery
    integrity_errors: List[str] = field(default_factory=list)
    consistency_ok: bool = False
    resumed_commits: int = 0
    resumed_consistent: bool = False
    error: str = ""
    telemetry: Optional[MetricsRegistry] = None

    @property
    def sheds_observed(self) -> int:
        return self.sheds_burst + self.sheds_writers + self.sheds_checkpoint

    @property
    def ok(self) -> bool:
        return (
            self.fired and not self.error
            and not self.lost_durable and not self.corrupt_durable
            and not self.corrupt_volatile
            and self.hazard_violations == 0
            and self.sheds_reported > 0
            and self.sheds_reported == self.sheds_observed
            and self.barriers > 0 and self.durable_pages > 0
            and not self.integrity_errors
            and self.consistency_ok
            and self.resumed_commits > 0 and self.resumed_consistent
        )

    def snapshot(self) -> dict:
        return {
            "seed": self.seed,
            "cut_op": self.cut_op,
            "fired": self.fired,
            "commits": self.commits,
            "baseline_ops": self.baseline_ops,
            "acks": self.acks,
            "destages": self.destages,
            "barriers": self.barriers,
            "coalesced": self.coalesced,
            "hazard_stalls": self.hazard_stalls,
            "volatile_at_cut": self.volatile_at_cut,
            "sheds_reported": self.sheds_reported,
            "sheds_observed": self.sheds_observed,
            "sheds_burst": self.sheds_burst,
            "sheds_writers": self.sheds_writers,
            "sheds_checkpoint": self.sheds_checkpoint,
            "durable_pages": self.durable_pages,
            "volatile_pages": self.volatile_pages,
            "lost_durable": len(self.lost_durable),
            "corrupt_durable": len(self.corrupt_durable),
            "corrupt_volatile": len(self.corrupt_volatile),
            "hazard_violations": self.hazard_violations,
            "reads_checked": self.reads_checked,
            "integrity_errors": list(self.integrity_errors),
            "consistency_ok": self.consistency_ok,
            "resumed_commits": self.resumed_commits,
            "resumed_consistent": self.resumed_consistent,
            "error": self.error,
            "ok": self.ok,
        }


def _siege_plan(seed: int, outage_window, spike_window,
                cut_op: Optional[int] = None) -> FaultPlan:
    """Outage + latency spike; same plan both runs so the flash-command
    sequence matches, plus the power cut only on the second run."""
    plan = FaultPlan(seed=seed)
    plan.add(FaultSpec(kind="die_outage", die=1, window=outage_window))
    plan.add(FaultSpec(kind="latency_spike", die=0, window=spike_window,
                       factor=4.0))
    if cut_op is not None:
        plan.add(FaultSpec(kind="power_cut", at_op=cut_op))
    return plan


def _one_burst_op(oracle, lpn: int, roll: float, seq: int,
                  counts: Dict[str, int]):
    """One fire-and-forget burst operation.  Every shed and every
    power-cut refusal is *observed* — counted, not swallowed into
    oblivion — which is what gate 5 compares against the front end's
    raised-shed tally."""
    counts["ops"] += 1
    try:
        if roll < 0.15:
            yield from oracle.read(lpn, ctx=OpContext("host"))
        elif roll < 0.18:
            yield from oracle.trim(lpn, ctx=OpContext("host"))
        else:
            yield from oracle.write(lpn, ("burst", seq),
                                    ctx=OpContext("host"))
    except DegradedModeError:
        counts["sheds"] += 1
    except PowerCutError:
        counts["cut"] += 1
    except (ReadUnwrittenError, UncorrectableError):
        # Reading a never-written or freshly trimmed burst page.
        counts["unwritten"] += 1


def _burst_client(sim, oracle, rng, base: int, span: int, end_at: float,
                  counts: Dict[str, int], burst_size: int,
                  gap_us: float):
    """Open-loop bursty submitter on the reserved LPN range.

    Arrivals are open-loop for real: each op is its own process, so a
    burst piles dozens of writes onto the watermark at once instead of
    politely queueing one at a time — that pile-up is what forces
    deadline sheds.
    """
    while sim.now < end_at:
        yield sim.timeout(gap_us * (0.5 + rng.random()))
        for _ in range(burst_size):
            if sim.now >= end_at:
                return
            lpn = base + rng.randrange(span)
            counts["seq"] += 1
            sim.process(_one_burst_op(oracle, lpn, rng.random(),
                                      counts["seq"], counts))
            yield sim.timeout(2.0)  # inter-arrival within the burst


def _checkpointer(sim, db, interval_us: float, counts: Dict[str, int],
                  end_at: float):
    """Periodic checkpoint: flush the pool, then the device barrier —
    this is what advances the oracle's durable floors mid-run."""
    while sim.now < end_at:
        yield sim.timeout(interval_us)
        try:
            yield from db.buffer.flush_all()
            counts["checkpoints"] += 1
        except DegradedModeError:
            counts["sheds"] += 1
        except PowerCutError:
            return


def _build_siege_rig(geometry, footprint: int, seed: int, plan,
                     telemetry=None):
    """Identical construction order both runs, so the cut run replays the
    baseline's flash-command sequence up to the plug pull."""
    rig = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=8, op_ratio=0.28),
        seed=seed,
        telemetry=telemetry,
        fault_plan=plan,
        store_data=True,
        frontend_config=siege_frontend_config(),
    )
    frontend = rig.frontend
    oracle = ChecksumOracle(frontend, shadow_reads=True)
    # The DBMS mounts the oracle, which wraps the front end: every
    # host-level ack/barrier is witnessed at the exact layer where the
    # durability contract is spoken.
    rig.frontend = oracle
    # The pool is sized past the footprint: foreground transactions never
    # evict (and so never meet a write shed they cannot catch); overload
    # pressure reaches them only as latency.
    db = attach_database(rig, buffer_capacity=footprint + 96,
                         foreground_flush=False)
    db.wal.keep_records = True
    rig.sim.run_process(_make_workload().load(db))
    load_ops = rig.array.fault_injector.ops
    db.start_writers(4, policy="region")
    return rig, db, oracle, frontend, load_ops


def _run_traffic(rig, db, oracle, seed: int, duration_us: float,
                 num_terminals: int, burst_clients: int,
                 burst_counts: Dict[str, int],
                 ckpt_counts: Dict[str, int]):
    """Terminals + burst clients + checkpointer, one timed window."""
    sim = rig.sim
    end_at = sim.now + duration_us
    # Reserved high-LPN range, far above anything TPC-B allocates.
    base = oracle.logical_pages - 256
    rng = random.Random(seed + 17)
    for index in range(burst_clients):
        sim.process(_burst_client(
            sim, oracle, random.Random(rng.randrange(2 ** 62)),
            base, 160, end_at, burst_counts,
            burst_size=120, gap_us=9_000.0,
        ))
    sim.process(_checkpointer(sim, db, 15_000.0, ckpt_counts, end_at))
    try:
        stats = run_workload(sim, db, _make_workload(),
                             duration_us=duration_us,
                             num_terminals=num_terminals,
                             rng=random.Random(seed), preloaded=True)
        return stats, False
    except PowerCutError:
        return None, True


def _mount_only_audit(array, geometry, oracle, report: SiegeReport):
    """Post-cut, pre-replay: power-cycle, OOB-mount a fresh manager (the
    scan is read-only) and read back every oracle-tracked page."""
    if array.powered_off:
        array.power_cycle()
    sim = Simulator()
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(
        geometry, NoFTLConfig(num_regions=8, op_ratio=0.28),
        factory_bad_blocks=array.factory_bad_blocks(),
    )
    storage = NoFTLStorage(sim, manager, executor)
    sim.run_process(storage.mount())

    durable = sorted(oracle.durable_floor)
    volatile = sorted(set(oracle.history) - set(oracle.durable_floor))
    report.durable_pages = len(durable)
    report.volatile_pages = len(volatile)

    def audit():
        for lpn in durable:
            acceptable = oracle.acceptable_after_cut(lpn)
            try:
                data = yield from storage.read(lpn)
            except (ReadUnwrittenError, UncorrectableError):
                report.lost_durable.append(lpn)
                continue
            if data is None:
                # Absent from the rebuilt mapping: a barriered page whose
                # media copy vanished — a durability-contract breach.
                report.lost_durable.append(lpn)
                continue
            if page_checksum(data) not in acceptable:
                report.corrupt_durable.append(lpn)
        for lpn in volatile:
            # Un-barriered: may be gone entirely, but whatever *is* on
            # media must be some acknowledged version — never garbage.
            # Pre-trim versions count as acked: a trim is in-RAM only,
            # so the OOB mount scan can resurrect them after the cut.
            try:
                data = yield from storage.read(lpn)
            except (ReadUnwrittenError, UncorrectableError):
                continue
            if data is None:
                continue  # absent is a legal fate for a volatile page
            if page_checksum(data) not in oracle.acked_versions(lpn):
                report.corrupt_volatile.append(lpn)

    sim.run_process(audit())


def run_siege(
    seed: int = 11,
    duration_us: float = 140_000.0,
    resume_us: float = 40_000.0,
    cut_fraction: float = 0.72,
    num_terminals: int = 6,
    burst_clients: int = 5,
    telemetry: Optional[MetricsRegistry] = None,
) -> SiegeReport:
    """Baseline run (outage + spike, no cut) to learn the op span, then
    the identical run with the plug pulled, then the audits."""
    telemetry = telemetry or MetricsRegistry()
    report = SiegeReport(seed=seed, telemetry=telemetry)

    workload = _make_workload()
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies=8, utilization=0.8,
                              op_ratio=0.28,
                              headroom_pages=footprint // 2 + 512)
    outage_window = (2_000, 2_300)
    spike_window = (1_000, 1_600)

    # -- run 1: fault-identical baseline, no cut --------------------------
    plan = _siege_plan(seed, outage_window, spike_window)
    rig, db, oracle, frontend, load_ops = _build_siege_rig(
        geometry, footprint, seed, plan)
    stats, cut = _run_traffic(rig, db, oracle, seed, duration_us,
                              num_terminals, burst_clients,
                              {"ops": 0, "seq": 0, "sheds": 0, "cut": 0,
                               "unwritten": 0},
                              {"checkpoints": 0, "sheds": 0})
    if cut or stats is None:
        report.error = "baseline run unexpectedly lost power"
        return report
    report.load_ops = load_ops
    report.baseline_ops = rig.array.fault_injector.ops
    if report.baseline_ops <= load_ops + 10:
        report.error = "baseline issued too few flash commands"
        return report

    # -- run 2: same scenario + the power cut -----------------------------
    span = report.baseline_ops - load_ops
    cut_op = load_ops + max(1, int(span * cut_fraction))
    report.cut_op = cut_op
    plan = _siege_plan(seed, outage_window, spike_window, cut_op=cut_op)
    rig, db, oracle, frontend, __ = _build_siege_rig(
        geometry, footprint, seed, plan, telemetry=telemetry)
    # Health telemetry rides on the instrumented (cut) run: the WA
    # ledger and windowed saturation series land in the exported
    # snapshot via the health.* collectors.
    monitor = HealthMonitor(window_us=10_000.0, clock=lambda: rig.sim.now)
    monitor.attach_array(rig.array)
    monitor.attach_frontend(frontend)
    monitor.install(telemetry)
    burst_counts = {"ops": 0, "seq": 0, "sheds": 0, "cut": 0,
                    "unwritten": 0}
    ckpt_counts = {"checkpoints": 0, "sheds": 0}

    at_cut: dict = {}

    def on_cut(command):
        # The WAL lives on a separate durable device: snapshot its
        # flushed prefix at the instant the power dies.
        at_cut["durable_lsn"] = db.wal.flushed_lsn
        at_cut["records"] = list(db.wal.records)

    rig.array.on_power_cut = on_cut
    __, cut = _run_traffic(rig, db, oracle, seed, duration_us,
                           num_terminals, burst_clients,
                           burst_counts, ckpt_counts)
    if not at_cut:
        report.error = "cut point never reached"
        return report
    report.fired = True
    report.commits = db.txn_manager.commits
    report.acks = frontend.ack_count
    report.destages = frontend.destage_count
    report.barriers = frontend.barrier_count
    report.coalesced = frontend.coalesced_count
    report.hazard_stalls = frontend.hazard_stalls
    report.volatile_at_cut = frontend.volatile_lost
    report.sheds_reported = frontend.sheds_total
    report.sheds_burst = burst_counts["sheds"]
    report.sheds_checkpoint = ckpt_counts["sheds"]
    report.sheds_writers = sum(db.writers.pages_refused)
    report.hazard_violations = len(oracle.hazard_violations)
    report.reads_checked = oracle.reads_checked

    # -- audit 1: the durability contract, before replay touches media ----
    _mount_only_audit(rig.array, geometry, oracle, report)

    # -- audit 2: cold start, business invariants, resume -----------------
    durable_lsn = at_cut["durable_lsn"]
    durable = [r for r in at_cut["records"] if r.lsn <= durable_lsn]
    try:
        boot = cold_start(
            rig.array, geometry, durable, durable_lsn,
            workload.declare_schema,
            config=NoFTLConfig(num_regions=8, op_ratio=0.28),
            buffer_capacity=footprint + 96,
            db_kwargs={"foreground_flush": False},
        )
    except Exception as exc:
        report.error = f"cold start failed: {exc!r}"
        return report
    report.integrity_errors = boot.manager.verify_integrity()
    report.consistency_ok = bool(
        boot.sim.run_process(workload.verify_consistency(boot.db))
    )
    try:
        boot.db.start_writers(4, policy="region")
        resumed = run_workload(boot.sim, boot.db, workload,
                               duration_us=resume_us,
                               num_terminals=num_terminals,
                               rng=random.Random(seed + 1),
                               preloaded=True)
        report.resumed_commits = resumed.commits
        report.resumed_consistent = bool(
            boot.sim.run_process(workload.verify_consistency(boot.db))
        )
    except Exception as exc:
        report.error = f"resume failed: {exc!r}"
        return report

    telemetry.register_collector("siege.report", report.snapshot)
    return report


def _siege_task(seed: int, duration_us: float, resume_us: float,
                cut_fraction: float):
    """One full siege against a fresh registry (sweep task body)."""
    registry = MetricsRegistry()
    report = run_siege(seed=seed, duration_us=duration_us,
                       resume_us=resume_us, cut_fraction=cut_fraction,
                       telemetry=registry)
    return registry, report


def run_siege_sweep(
    seeds,
    duration_us: float = 140_000.0,
    resume_us: float = 40_000.0,
    cut_fraction: float = 0.72,
    workers: int = 1,
    telemetry: Optional[MetricsRegistry] = None,
):
    """One independent siege per seed, optionally across a process pool.

    Returns ``(reports, telemetry)``: the per-seed
    :class:`SiegeReport` list in seed order and the master registry the
    per-seed registries merged into (in seed order — so the merged
    counters/gauges/histograms are byte-identical whatever ``workers``
    was).  Collector-backed series (health ledger, siege.report) stay
    with their source run and are not merged.
    """
    from .sweep import SweepTask, run_sweep

    telemetry = telemetry or MetricsRegistry()
    reports = []
    tasks = [
        SweepTask(
            label=f"siege@seed{seed}",
            fn="repro.bench.siege:_siege_task",
            kwargs={
                "seed": seed,
                "duration_us": duration_us,
                "resume_us": resume_us,
                "cut_fraction": cut_fraction,
            },
        )
        for seed in seeds
    ]

    def on_result(index, task, result):
        registry, report = result
        telemetry.merge_from(registry)
        reports.append(report)
        verdict = "ok" if report.ok else "FAILED"
        emit(f"  seed {report.seed}: cut@{report.cut_op} "
             f"commits={report.commits} sheds={report.sheds_reported} "
             f"resumed={report.resumed_commits} [{verdict}]")

    run_sweep(tasks, workers=workers, on_result=on_result)
    return reports, telemetry


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Combined-failure siege of the device front end: "
                    "burst overload + die outage + power cut"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="run one independent siege per seed and "
                             "merge their telemetry (overrides --seed)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for --seeds sweeps "
                             "(1 = in-process; merged output is "
                             "byte-identical either way)")
    parser.add_argument("--duration-us", type=float, default=140_000.0)
    parser.add_argument("--resume-us", type=float, default=40_000.0)
    parser.add_argument("--cut-fraction", type=float, default=0.72)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every gate holds")
    parser.add_argument("--export", action="store_true",
                        help="write the telemetry snapshot to "
                             "$REPRO_METRICS_DIR")
    args = parser.parse_args(argv)

    if args.seeds:
        reports, master = run_siege_sweep(
            args.seeds, duration_us=args.duration_us,
            resume_us=args.resume_us, cut_fraction=args.cut_fraction,
            workers=args.workers,
        )
        if args.export:
            path = export_metrics(
                "siege-sweep", master,
                extra={"seeds": {str(r.seed): r.snapshot()
                                 for r in reports}},
            )
            print(f"telemetry snapshot: {path}")
        bad = [r.seed for r in reports if not r.ok]
        if not bad:
            print(f"siege sweep ok: {len(reports)} seeds survived")
            return 0
        print(f"SIEGE SWEEP FAILED at seeds {bad}")
        return 1 if args.check else 0

    report = run_siege(seed=args.seed, duration_us=args.duration_us,
                       resume_us=args.resume_us,
                       cut_fraction=args.cut_fraction)
    snap = report.snapshot()
    for key, value in snap.items():
        emit(f"  {key}: {value}")
    if args.export and report.telemetry is not None:
        path = export_metrics(f"siege-seed{args.seed}", report.telemetry,
                              extra=snap)
        print(f"telemetry snapshot: {path}")
    if report.ok:
        print("siege ok: no barriered ack lost, no hazard violation, "
              f"{report.sheds_reported} sheds all reported")
        return 0
    print("SIEGE FAILED")
    return 1 if args.check else 0


if __name__ == "__main__":
    raise SystemExit(main())
