"""Experiment E5 — DFTL's demand-paged mapping vs pure page mapping.

Section 3.1: *"Our earlier results indicate a performance slowdown of
DFTL over pure page-level mapping (where the whole mapping table is
cached) of up to 3.7x under TPC-C and -B benchmarks."*

Both FTLs sit behind identical block devices; the only difference is
whether the page-granularity mapping table is fully resident (PageMap —
feasible only with host-class RAM, which is NoFTL's 3.1 argument) or
demand-paged through a small CMT with translation pages on flash (DFTL —
what a real controller must do).  The slowdown grows as the working set
outruns the CMT, so the sweep varies CMT capacity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from ..workloads import TPCB, TPCC, run_workload
from .reporting import ratio
from .rigs import (
    attach_database,
    build_blockdev_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["DFTLPoint", "DFTLResult", "dftl_slowdown"]


@dataclass
class DFTLPoint:
    workload: str
    ftl: str
    cmt_entries: int
    tps: float
    cmt_hit_ratio: float
    map_reads: int
    map_programs: int


@dataclass
class DFTLResult:
    points: List[DFTLPoint] = field(default_factory=list)

    def slowdown(self, workload: str, cmt_entries: int) -> float:
        base = dftl = None
        for point in self.points:
            if point.workload != workload:
                continue
            if point.ftl == "pagemap":
                base = point.tps
            elif point.cmt_entries == cmt_entries:
                dftl = point.tps
        if base is None or dftl is None:
            raise KeyError((workload, cmt_entries))
        return ratio(base, dftl)

    def worst_slowdown(self, workload: str) -> float:
        candidates = [point.cmt_entries for point in self.points
                      if point.workload == workload and point.ftl == "dftl"]
        return max(self.slowdown(workload, entries)
                   for entries in candidates)


def _make_workload(name: str):
    if name == "tpcc":
        return TPCC(warehouses=4, customers_per_district=30, items=100)
    if name == "tpcb":
        return TPCB(sf=8, accounts_per_branch=400)
    raise ValueError(f"unknown workload {name!r}")


def dftl_slowdown(
    workloads: Sequence[str] = ("tpcb",),
    cmt_sizes: Sequence[int] = (64, 256, 1024),
    duration_us: float = 1_500_000,
    num_terminals: int = 16,
    dies: int = 8,
    seed: int = 41,
) -> DFTLResult:
    """TPS of pure page mapping vs DFTL at several CMT capacities."""
    result = DFTLResult()
    for workload_name in workloads:
        footprint = measure_workload_footprint(_make_workload(workload_name))
        geometry = sized_geometry(footprint, dies, utilization=0.85,
                                  headroom_pages=footprint // 2)
        buffer_capacity = max(64, footprint // 10)

        configs = [("pagemap", 0)] + [("dftl", size) for size in cmt_sizes]
        for ftl_name, cmt_entries in configs:
            kwargs = {}
            if ftl_name == "dftl":
                kwargs = {"cmt_entries": cmt_entries,
                          "entries_per_translation_page": 256}
            rig = build_blockdev_rig(ftl_name, geometry=geometry, seed=seed,
                                     **kwargs)
            db = attach_database(rig, buffer_capacity=buffer_capacity)
            db.start_writers(4, policy="global")
            stats = run_workload(
                rig.sim, db, _make_workload(workload_name),
                duration_us=duration_us,
                num_terminals=num_terminals,
                rng=random.Random(seed),
            )
            result.points.append(DFTLPoint(
                workload=workload_name,
                ftl=ftl_name,
                cmt_entries=cmt_entries,
                tps=stats.tps,
                cmt_hit_ratio=getattr(rig.ftl, "cmt_hit_ratio", 1.0),
                map_reads=rig.ftl.stats.map_reads,
                map_programs=rig.ftl.stats.map_programs,
            ))
    return result
