"""Process-parallel sweep executor over independent simulations.

Every rig in this package is a closed world — one :class:`Simulator`,
one :class:`~repro.telemetry.MetricsRegistry`, no shared mutable state —
which makes multi-run rigs (crash-cut sweeps, siege seed sweeps, Fig. 3
trace replays, perf trials) embarrassingly parallel *if* the results can
be recombined without perturbing a single byte of output.  The contract:

* every task runs against a **fresh** registry created inside the task
  function (never the parent's), whether it executes in-process or in a
  pool worker;
* task functions never print — the parent consumes results **in task
  order** (``on_result``) and does all emitting/merging itself, so the
  merged artifact is byte-identical no matter how many workers raced;
* ``workers <= 1`` executes the *identical* task functions in-process:
  the sequential path is the parallel path with a pool of one, not a
  separate code path that could drift.

Registries cross the process pipe via pickle (collectors and the clock
are dropped in transit — see ``MetricsRegistry.__getstate__``) and fold
into the parent's master registry with ``merge_from`` in seed order.

CLI (used by the CI sweep-smoke job)::

    python -m repro.bench.sweep crash --workers 4 --cuts 8 ...
    python -m repro.bench.sweep siege --workers 4 --seeds 11 12 13 14
    python -m repro.bench.sweep fig3  --workers 3
    python -m repro.bench.sweep perf  --workers 2 --trials 4 --quick

``crash``/``siege``/``fig3`` forward to the bench module's own CLI
(each grew a ``--workers`` flag that routes through :func:`run_sweep`);
``perf`` runs N wall-clock trials per rig and reports per-rig medians
plus a cross-trial digest agreement check.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

__all__ = ["SweepTask", "run_sweep", "main"]


class SweepTask(NamedTuple):
    """One independent simulation: a picklable spec, not a closure.

    ``fn`` is a dotted ``"package.module:function"`` path so the task
    pickles under any start method (spawn included) — the worker resolves
    it by import, then calls ``fn(**kwargs)``.  Everything in ``kwargs``
    must be picklable (frozen geometry dataclasses, ints, strings).
    """

    label: str
    fn: str
    kwargs: Dict[str, Any]


def _resolve(path: str) -> Callable:
    module_name, sep, attr = path.partition(":")
    if not sep or not attr:
        raise ValueError(
            f"task fn {path!r} must be a 'package.module:function' path"
        )
    return getattr(importlib.import_module(module_name), attr)


def _call_task(task: SweepTask):
    """Worker body — module-level so the pool can pickle it by name."""
    return _resolve(task.fn)(**task.kwargs)


def run_sweep(
    tasks: Sequence[SweepTask],
    workers: int = 1,
    on_result: Optional[Callable[[int, SweepTask, Any], None]] = None,
) -> List[Any]:
    """Run every task; return their results in task order.

    ``on_result(index, task, result)`` fires in task order as results
    become consumable — immediately after each task in-process, or as
    the ordered ``imap`` stream drains in parallel mode — which is where
    callers merge registries and emit progress lines.  Byte-identity of
    anything built inside ``on_result`` across worker counts follows
    from that ordering plus the fresh-registry-per-task contract.
    """
    tasks = list(tasks)
    results: List[Any] = []
    if workers <= 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            result = _call_task(task)
            if on_result is not None:
                on_result(index, task, result)
            results.append(result)
        return results

    import multiprocessing

    # Fork (Linux) inherits warm imports — rig construction starts
    # immediately.  Elsewhere fall back to the platform default; tasks
    # are import-path specs precisely so spawn works too.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    with context.Pool(processes=min(workers, len(tasks))) as pool:
        for index, result in enumerate(pool.imap(_call_task, tasks)):
            if on_result is not None:
                on_result(index, tasks[index], result)
            results.append(result)
    return results


# -- CLI ----------------------------------------------------------------------


def _perf_trials(argv: Sequence[str]) -> int:
    """N wall-clock trials per rig across the pool; medians + digest gate."""
    import argparse
    import statistics

    from .perf import FULL_DURATION_US, QUICK_DURATION_US, RIGS
    from .reporting import emit, export_metrics, render_table

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sweep perf",
        description="Parallel wall-clock perf trials (median of N runs)",
    )
    parser.add_argument("--rig", action="append", choices=RIGS, default=None)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--duration-us", type=float, default=None)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    rigs = tuple(args.rig) if args.rig else RIGS
    if args.duration_us is not None:
        duration = args.duration_us
    else:
        duration = QUICK_DURATION_US if args.quick else FULL_DURATION_US

    tasks = [
        SweepTask(
            label=f"{rig}#{trial}",
            fn="repro.bench.perf:run_rig",
            kwargs={"rig": rig, "seed": args.seed, "duration_us": duration},
        )
        for rig in rigs
        for trial in range(max(1, args.trials))
    ]
    points = run_sweep(tasks, workers=args.workers)

    failed = False
    rows = []
    summary = {}
    for rig in rigs:
        mine = [p for p in points if p.rig == rig]
        digests = {p.metrics_digest for p in mine}
        if len(digests) != 1:
            emit(f"DETERMINISM FAILURE: {rig} produced {len(digests)} "
                 f"distinct digests across {len(mine)} trials")
            failed = True
        med_events = statistics.median(p.events_per_sec for p in mine)
        med_ops = statistics.median(p.ops_per_sec for p in mine)
        rows.append([rig, len(mine), med_events, med_ops,
                     "ok" if len(digests) == 1 else "MISMATCH"])
        summary[rig] = {
            "trials": len(mine),
            "median_events_per_sec": med_events,
            "median_ops_per_sec": med_ops,
            "digest": sorted(digests)[0],
            "digests_agree": len(digests) == 1,
        }
    emit(render_table(
        f"perf trials (median of {max(1, args.trials)}, "
        f"{args.workers} worker(s))",
        ["rig", "trials", "median events/s", "median commits/s", "digests"],
        rows,
    ))
    export_metrics("BENCH_sweep_perf", summary)
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: python -m repro.bench.sweep "
        "{crash,siege,fig3,perf} [bench options...]\n"
        "  crash/siege/fig3 forward to that bench's CLI "
        "(all accept --workers N);\n"
        "  perf runs parallel wall-clock trials "
        "(--trials N --workers N [--quick])."
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0
    bench, rest = argv[0], argv[1:]
    if bench == "crash":
        from .crash import main as bench_main
    elif bench == "siege":
        from .siege import main as bench_main
    elif bench == "fig3":
        from .fig3 import main as bench_main
    elif bench == "perf":
        return _perf_trials(rest)
    else:
        print(usage)
        return 2
    return bench_main(rest)


if __name__ == "__main__":
    raise SystemExit(main())
