"""Plain-text tables and series for benchmark output.

``emit`` writes through ``sys.__stdout__`` so tables appear in the
terminal even under pytest's output capture — the benchmark suite is as
much a report generator as a test suite.  Set ``REPRO_QUIET=1`` to
silence the tables (CI log hygiene); :func:`export_metrics` still writes
the machine-readable telemetry snapshots regardless, into
``REPRO_METRICS_DIR`` (default ``benchmarks/out``).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Iterable, List, Optional, Sequence

__all__ = ["emit", "render_table", "render_series", "ratio",
           "export_metrics", "DEFAULT_METRICS_DIR"]

#: Default landing directory for BENCH_*.json run output: under
#: ``benchmarks/`` next to the tracked baselines, but gitignored.
DEFAULT_METRICS_DIR = os.path.join("benchmarks", "out")


#: When set (by the benchmark suite's conftest), emit() routes through
#: this callable instead — pytest's fd-level capture would otherwise
#: swallow direct __stdout__ writes.
_EMIT_OVERRIDE = None


def _quiet() -> bool:
    return os.environ.get("REPRO_QUIET", "").strip() not in ("", "0")


def emit(text: str) -> None:
    """Print to the real stdout, bypassing pytest capture.

    A no-op when the ``REPRO_QUIET`` environment variable is set to
    anything but ``0`` or empty.
    """
    if _quiet():
        return
    if _EMIT_OVERRIDE is not None:
        _EMIT_OVERRIDE(text)
        return
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


def export_metrics(name: str, registry, extra: Optional[dict] = None) -> str:
    """Write one telemetry snapshot as JSON for CI artifact upload.

    ``registry`` is a :class:`~repro.telemetry.MetricsRegistry` (or any
    object with a ``snapshot()``, or a plain dict).  The file lands in
    the directory named by ``REPRO_METRICS_DIR`` (default
    ``benchmarks/out`` — run output lives beside the tracked baselines
    but is itself gitignored) as ``<name>.json``; the path is returned.
    """
    out_dir = os.environ.get("REPRO_METRICS_DIR", DEFAULT_METRICS_DIR)
    os.makedirs(out_dir, exist_ok=True)
    payload = registry.snapshot() if hasattr(registry, "snapshot") \
        else dict(registry)
    if extra:
        payload = {"extra": extra, **payload}
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a title rule, ready for emit()."""
    str_rows: List[List[str]] = [[_format_cell(cell) for cell in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[index])
                     for index, header in enumerate(headers))
    rule = "-" * len(line)
    out = [f"\n{title}", rule, line, rule]
    for row in str_rows:
        out.append("  ".join(cell.rjust(widths[index])
                             for index, cell in enumerate(row)))
    out.append(rule)
    return "\n".join(out)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: Sequence[tuple]) -> str:
    """Figure-style output: one row per x, one column per named series."""
    headers = [x_label] + [name for name, __ in series]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [values[index] for __, values in series])
    return render_table(title, headers, rows)


def ratio(a: float, b: float) -> float:
    """a / b, guarded; the paper's 'x-factor' columns."""
    return a / b if b else float("inf")
