"""Experiment E8 — interface concurrency: SATA NCQ vs native flash.

Section 3.2: *"SATA2 allows for at most 32 concurrent I/O commands;
whereas a commodity Flash SSD with 8 to 10 chips is able to execute up
to 160 concurrent I/Os (8-16 commands/chip)"*.

The job: random page reads (translated identically by both paths, and
lock-free on both, so the *interface* is the only difference) at
increasing submitter counts against

* the block device (NCQ capacity 32 — extra submitters queue at the
  host interface), and
* the native flash device (no interface cap; concurrency is bounded
  only by dies and channels).

The device has more parallel units than NCQ slots (64 dies over 8
channels, the "8-16 commands/chip x 8-10 chips" arithmetic of the
paper), and the job stays inside free capacity so garbage collection
never confounds the interface comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..core import NoFTLConfig
from ..flash import Geometry, TLC_TIMING
from ..workloads import SyntheticSpec, run_synthetic
from .rigs import build_blockdev_rig, build_noftl_rig

__all__ = ["ParallelismPoint", "ParallelismResult", "interface_parallelism"]

#: 64 dies over 8 channels: device parallelism well beyond SATA2's 32.
PARALLELISM_GEOMETRY = Geometry(
    channels=8,
    chips_per_channel=2,
    dies_per_chip=4,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=32,
    page_bytes=2048,
)


@dataclass
class ParallelismPoint:
    interface: str
    queue_depth: int
    iops: float
    mean_latency_us: float


@dataclass
class ParallelismResult:
    dies: int
    points: List[ParallelismPoint] = field(default_factory=list)

    def iops_series(self, interface: str) -> List[float]:
        return [point.iops for point in self.points
                if point.interface == interface]

    def iops_at(self, interface: str, queue_depth: int) -> float:
        for point in self.points:
            if (point.interface, point.queue_depth) == (interface,
                                                        queue_depth):
                return point.iops
        raise KeyError((interface, queue_depth))


def interface_parallelism(
    queue_depths: Sequence[int] = (1, 8, 32, 64, 128),
    geometry: Geometry = PARALLELISM_GEOMETRY,
    ops_per_depth: int = 3000,
    ncq_depth: int = 32,
    timing=TLC_TIMING,
    seed: int = 3,
) -> ParallelismResult:
    """Read IOPS vs submitter count for the two interfaces."""
    result = ParallelismResult(dies=geometry.total_dies)
    # Touch a modest span so the prefill never triggers GC on either path.
    span_fraction = 0.25
    for queue_depth in queue_depths:
        # Legacy interface: FTL behind an NCQ-limited block device.
        rig = build_blockdev_rig("pagemap", geometry=geometry,
                                 timing=timing,
                                 ncq_depth=ncq_depth, seed=seed)
        span = int(rig.ftl.logical_pages * span_fraction)
        outcome = run_synthetic(
            rig.sim, rig.device,
            SyntheticSpec(pattern="random", read_fraction=1.0,
                          ops=ops_per_depth, queue_depth=queue_depth,
                          span=span, seed=seed),
        )
        result.points.append(ParallelismPoint(
            "block-ncq32", queue_depth, outcome.iops,
            outcome.read_latency.mean))

        # Native interface through NoFTL: per-region concurrency, no cap.
        noftl = build_noftl_rig(geometry=geometry, timing=timing,
                                config=NoFTLConfig(op_ratio=0.12),
                                seed=seed)
        span = int(noftl.storage.logical_pages * span_fraction)
        outcome = run_synthetic(
            noftl.sim, noftl.storage,
            SyntheticSpec(pattern="random", read_fraction=1.0,
                          ops=ops_per_depth, queue_depth=queue_depth,
                          span=span, seed=seed),
        )
        result.points.append(ParallelismPoint(
            "native-flash", queue_depth, outcome.iops,
            outcome.read_latency.mean))
    return result
