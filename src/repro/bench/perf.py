"""Wall-clock performance harness: how fast does the simulator itself run?

Every other bench in this package measures *simulated* time — TPS,
latency percentiles, GC overheads — and is deliberately blind to how
long the host CPU took to produce them.  This harness measures the
opposite: real seconds of host time per rig, simulator events per
wall-clock second and committed transactions per wall-clock second, on
fixed-seed TPC-B / TPC-C rigs built from :mod:`repro.bench.rigs`.

It exists because the production-scale configurations the ROADMAP asks
for (more dies, longer traces, bigger buffer pools) are bounded by the
pure-Python DES kernel and the per-command telemetry path; kernel
optimizations must be proven on wall time *without* perturbing any
simulated-time result.  Each run therefore also reports a
``metrics_digest`` — a SHA-256 over the rig's full telemetry snapshot,
final simulated clock and commit count — which must be bit-identical
across kernel refactors (the determinism tests assert this).

Output: one ``BENCH_<rig>.json`` per rig in ``REPRO_METRICS_DIR``
(default ``benchmarks/out``), plus a combined ``BENCH_perf.json``:

* ``wall_s`` — host seconds for the measured phase (load excluded);
* ``events`` / ``events_per_sec`` — DES events processed and the rate;
* ``commits`` / ``ops_per_sec`` — committed txns and commits per wall
  second;
* ``sim_us`` — simulated microseconds covered;
* ``metrics_digest`` — determinism witness (see above).

CI runs ``python -m repro.bench.perf --quick --check --determinism`` as
a combined regression + determinism gate: it fails when any rig's
events/sec drops more than ``--tolerance`` (default 20%) below the
checked-in ``benchmarks/perf_baseline.json``, and ``--determinism``
additionally runs every rig twice and fails on any ``metrics_digest``
mismatch between the two runs.  Regenerate the baseline with
``--write-baseline`` after an intentional performance change (values
should be set conservatively — CI runners are slower than dev
machines).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import random
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..core import NoFTLConfig
from ..workloads import TPCB, TPCC, run_workload
from .reporting import emit, export_metrics, render_table
from .rigs import (
    attach_database,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["PerfPoint", "run_rig", "metrics_digest", "main", "RIGS"]

RIGS = ("tpcb", "tpcc")

#: Default simulated horizon per rig (microseconds); ``--quick`` shrinks it.
FULL_DURATION_US = 1_200_000.0
QUICK_DURATION_US = 300_000.0

DEFAULT_BASELINE = os.path.join("benchmarks", "perf_baseline.json")


@dataclass
class PerfPoint:
    """One rig's wall-clock measurements (plus its determinism witness)."""

    rig: str
    seed: int
    duration_us: float
    wall_s: float
    sim_us: float
    events: int
    events_per_sec: float
    commits: int
    ops_per_sec: float
    flash_commands: int
    metrics_digest: str

    def as_dict(self) -> dict:
        return asdict(self)


def _make_workload(rig: str):
    if rig == "tpcb":
        return TPCB(sf=8, accounts_per_branch=400)
    if rig == "tpcc":
        return TPCC(warehouses=2, customers_per_district=20, items=80)
    raise ValueError(f"unknown rig {rig!r}; pick from {RIGS}")


def metrics_digest(registry, sim_now: float, commits: int) -> str:
    """SHA-256 over the full telemetry snapshot + clock + commit count.

    Bit-identical digests across two runs (or across a kernel refactor)
    mean every counter, gauge, histogram sample and the final simulated
    clock agreed exactly — the determinism contract of the DES.
    """
    payload = registry.to_json() + f"|now={sim_now!r}|commits={commits}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_rig(
    rig: str,
    seed: int = 11,
    duration_us: float = FULL_DURATION_US,
    dies: int = 8,
    terminals: int = 16,
    writers: int = 8,
    profiler=None,
) -> PerfPoint:
    """Build one fixed-seed NoFTL rig, run it, and time the run phase.

    The load phase (schema + population) is excluded from ``wall_s`` so
    the number reflects the steady-state event-loop rate, but the
    digest covers the whole run — load included — because the telemetry
    registry accumulates from the first command.

    ``profiler`` (a ``cProfile.Profile``) is enabled only around the
    timed window, so the profile matches what ``wall_s`` measured.  Note
    the tracer itself slows the run ~3x and overweights call-heavy
    frames — use it to find hot paths, never to compare absolute rates.
    """
    workload = _make_workload(rig)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies, utilization=0.85,
                              headroom_pages=footprint // 2)
    built = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=dies, op_ratio=0.12),
        seed=seed,
    )
    db = attach_database(built, buffer_capacity=max(64, footprint // 4),
                         foreground_flush=False)
    db.start_writers(writers, policy="region")

    sim = built.sim
    run_phase_workload = _make_workload(rig)
    sim.run_process(run_phase_workload.load(db))  # outside the timed window

    events_before = getattr(sim, "events_processed", 0)
    sim_before = sim.now
    if profiler is not None:
        profiler.enable()
    wall_start = time.perf_counter()
    stats = run_workload(sim, db, run_phase_workload,
                         duration_us=duration_us,
                         num_terminals=terminals,
                         rng=random.Random(seed),
                         preloaded=True)
    wall_s = time.perf_counter() - wall_start
    if profiler is not None:
        profiler.disable()
    events = getattr(sim, "events_processed", 0) - events_before
    sim_us = sim.now - sim_before

    telemetry = built.telemetry
    flash_commands = int(telemetry.value("flash.commands"))
    digest = metrics_digest(telemetry, sim.now, stats.commits)
    return PerfPoint(
        rig=rig,
        seed=seed,
        duration_us=duration_us,
        wall_s=wall_s,
        sim_us=sim_us,
        events=events,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        commits=stats.commits,
        ops_per_sec=stats.commits / wall_s if wall_s > 0 else 0.0,
        flash_commands=flash_commands,
        metrics_digest=digest,
    )


# -- baseline comparison ------------------------------------------------------


def load_baseline(path: str) -> Dict[str, dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(path: str, points: Sequence[PerfPoint],
                   derate: float = 1.0) -> None:
    """Record per-rig floors.  ``derate`` scales the measured events/sec
    down (e.g. 0.5) so the checked-in floor tolerates slower CI hosts.

    A ``meta`` block records the capturing interpreter and platform —
    CPython minor versions differ by tens of percent on this workload,
    so ``--check`` warns loudly when the checking interpreter doesn't
    match the one that captured the floors.
    """
    payload: Dict[str, dict] = {
        point.rig: {
            "events_per_sec": point.events_per_sec * derate,
            "ops_per_sec": point.ops_per_sec * derate,
            "measured_events_per_sec": point.events_per_sec,
            "derate": derate,
        }
        for point in points
    }
    payload["meta"] = {
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def baseline_interpreter_mismatch(baseline: Dict[str, dict]) -> List[str]:
    """Human-readable warnings when the current interpreter/platform
    differs from the one that captured the baseline floors.  Baselines
    written before the meta block existed produce no warnings."""
    meta = baseline.get("meta")
    if not isinstance(meta, dict):
        return []
    warnings = []
    captured_py = meta.get("python_version")
    if captured_py and captured_py != platform.python_version():
        warnings.append(
            f"baseline was captured on Python {captured_py} but this is "
            f"Python {platform.python_version()} — interpreter speed "
            "differs across versions; floors may be meaningless here"
        )
    captured_platform = meta.get("platform")
    if captured_platform and captured_platform != platform.platform():
        warnings.append(
            f"baseline was captured on '{captured_platform}' but this "
            f"host is '{platform.platform()}' — cross-machine floors "
            "only hold if the derate absorbed the hardware gap"
        )
    return warnings


def check_regression(points: Sequence[PerfPoint], baseline: Dict[str, dict],
                     tolerance: float = 0.20) -> List[str]:
    """Return human-readable failures for rigs below (1 - tolerance) of
    the baseline events/sec floor.  Rigs absent from the baseline pass."""
    failures = []
    for point in points:
        floor_entry = baseline.get(point.rig)
        if not floor_entry:
            continue
        floor = floor_entry["events_per_sec"] * (1.0 - tolerance)
        if point.events_per_sec < floor:
            failures.append(
                f"{point.rig}: {point.events_per_sec:,.0f} events/s is below "
                f"the regression floor {floor:,.0f} "
                f"(baseline {floor_entry['events_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Wall-clock perf harness for the DES + telemetry stack",
    )
    parser.add_argument("--rig", action="append", choices=RIGS, default=None,
                        help="rig(s) to run (default: tpcb and tpcc)")
    parser.add_argument("--quick", action="store_true",
                        help=f"short run ({QUICK_DURATION_US:,.0f} sim-us "
                             "per rig) for CI smoke")
    parser.add_argument("--duration-us", type=float, default=None,
                        help="override the simulated horizon per rig")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--check", action="store_true",
                        help="compare events/sec against the baseline file "
                             "and exit nonzero on regression")
    parser.add_argument("--determinism", action="store_true",
                        help="run every rig twice and exit nonzero unless "
                             "both runs produce identical metrics digests")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the timed window of each rig and "
                             "write a top-25-by-cumulative report next to "
                             "the BENCH JSON (the tracer slows the run; "
                             "wall_s/rates from a profiled run are not "
                             "comparable to the baseline)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below the baseline "
                             "floor (default 0.20)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the measured rates to --baseline "
                             "(scaled by --derate) instead of checking")
    parser.add_argument("--derate", type=float, default=0.5,
                        help="baseline derating factor for --write-baseline "
                             "(default 0.5: floor at half the measured rate)")
    args = parser.parse_args(argv)

    rigs = tuple(args.rig) if args.rig else RIGS
    if args.duration_us is not None:
        duration = args.duration_us
    else:
        duration = QUICK_DURATION_US if args.quick else FULL_DURATION_US

    points: List[PerfPoint] = []
    digest_failures: List[str] = []
    for rig in rigs:
        profiler = None
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
        point = run_rig(rig, seed=args.seed, duration_us=duration,
                        profiler=profiler)
        if profiler is not None:
            import io
            import pstats

            out = io.StringIO()
            stats = pstats.Stats(profiler, stream=out)
            stats.sort_stats("cumulative").print_stats(25)
            out_dir = os.environ.get("REPRO_METRICS_DIR",
                                     os.path.join("benchmarks", "out"))
            os.makedirs(out_dir, exist_ok=True)
            profile_path = os.path.join(out_dir, f"PROFILE_{rig}.txt")
            with open(profile_path, "w", encoding="utf-8") as handle:
                handle.write(out.getvalue())
            emit(f"  {rig} profile (top 25 cumulative): {profile_path}")
        points.append(point)
        payload = point.as_dict()
        if args.determinism:
            # Same seed, same horizon, fresh rig: every counter, histogram
            # sample and the final simulated clock must agree exactly.
            repeat = run_rig(rig, seed=args.seed, duration_us=duration)
            payload["metrics_digest_repeat"] = repeat.metrics_digest
            if repeat.metrics_digest != point.metrics_digest:
                digest_failures.append(
                    f"{rig}: digest {point.metrics_digest[:16]}… != "
                    f"repeat {repeat.metrics_digest[:16]}…"
                )
        export_metrics(f"BENCH_{rig}", payload)

    export_metrics("BENCH_perf", {
        "rigs": [point.as_dict() for point in points],
        "quick": args.quick,
        "determinism_checked": args.determinism,
        "determinism_failures": digest_failures,
    })

    emit(render_table(
        "Wall-clock performance (fixed-seed NoFTL rigs)",
        ["rig", "wall s", "events", "events/s", "commits", "commits/s",
         "flash cmds"],
        [[point.rig, point.wall_s, point.events, point.events_per_sec,
          point.commits, point.ops_per_sec, point.flash_commands]
         for point in points],
    ))
    for point in points:
        emit(f"  {point.rig} digest: {point.metrics_digest}")

    if args.determinism:
        if digest_failures:
            for failure in digest_failures:
                emit(f"DETERMINISM FAILURE: {failure}")
            return 1
        emit("determinism check ok (identical digests on repeat runs)")

    if args.write_baseline:
        write_baseline(args.baseline, points, derate=args.derate)
        emit(f"baseline written to {args.baseline}")
        return 0

    if args.check:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            emit(f"no baseline at {args.baseline}; "
                 "run with --write-baseline first")
            return 2
        for warning in baseline_interpreter_mismatch(baseline):
            emit("=" * 72)
            emit(f"WARNING: {warning}")
            emit("=" * 72)
        failures = check_regression(points, baseline,
                                    tolerance=args.tolerance)
        if failures:
            for failure in failures:
                emit(f"PERF REGRESSION: {failure}")
            return 1
        emit(f"perf check ok (>= {1.0 - args.tolerance:.0%} of baseline "
             "events/sec on every rig)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
