"""Experiment E9 — flash lifetime.

Conclusions section: *"the low erase count under NoFTL effectively
doubles the lifetime of the Flash storage"*.

NAND endurance is a per-block program/erase budget, so for a fixed
amount of *useful work* (host page writes), lifetime scales inversely
with erases consumed.  This bench derives the lifetime factor from the
Figure 3 replay (identical trace on both targets) and additionally
checks NoFTL's wear leveling: the erase-count spread across blocks stays
bounded, so the budget is actually consumable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core import NoFTLConfig
from ..flash import SLC_TIMING, Geometry
from .fig3 import REPLAY_DIES, REPLAY_OP_RATIO, REPLAY_UTILIZATION, record_trace
from .reporting import ratio
from .rigs import build_sync_blockdev, build_sync_noftl, geometry_for_footprint
from ..workloads import replay_trace

__all__ = ["LifetimeReport", "lifetime_factor", "wear_spread"]


@dataclass
class LifetimeReport:
    workload: str
    host_writes: int
    faster_erases: int
    noftl_erases: int
    faster_erases_per_kwrite: float
    noftl_erases_per_kwrite: float

    @property
    def lifetime_factor(self) -> float:
        """How much longer the same flash lasts under NoFTL."""
        return ratio(self.faster_erases, self.noftl_erases)


def lifetime_factor(workload_name: str = "tpcb",
                    duration_us: float = 10_000_000,
                    seed: int = 11) -> LifetimeReport:
    """Erase budget consumed per unit of work, FASTer vs NoFTL."""
    trace = record_trace(workload_name, duration_us=duration_us, seed=seed)
    geometry = geometry_for_footprint(
        trace.max_page() + 1,
        utilization=REPLAY_UTILIZATION,
        op_ratio=REPLAY_OP_RATIO,
        dies=REPLAY_DIES,
    )
    faster_dev, __ = build_sync_blockdev("faster", geometry=geometry,
                                         seed=seed,
                                         op_ratio=REPLAY_OP_RATIO)
    faster_report = replay_trace(trace, faster_dev)
    noftl_dev, __ = build_sync_noftl(
        geometry=geometry, seed=seed,
        config=NoFTLConfig(op_ratio=REPLAY_OP_RATIO),
    )
    noftl_report = replay_trace(trace, noftl_dev)
    writes = max(1, faster_report.host_writes)
    return LifetimeReport(
        workload=workload_name,
        host_writes=faster_report.host_writes,
        faster_erases=faster_report.erases,
        noftl_erases=noftl_report.erases,
        faster_erases_per_kwrite=1000.0 * faster_report.erases / writes,
        noftl_erases_per_kwrite=1000.0 * noftl_report.erases / writes,
    )


WEAR_GEOMETRY = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=24,
    pages_per_block=16,
    page_bytes=2048,
)


def wear_spread(wear_level_delta: Optional[int], writes: int = 60_000,
                hot_fraction: float = 0.1, seed: int = 9) -> Dict:
    """Erase-count distribution under a pathologically hot workload,
    with and without NoFTL's static wear leveling."""
    storage, array = build_sync_noftl(
        geometry=WEAR_GEOMETRY,
        timing=SLC_TIMING,
        config=NoFTLConfig(op_ratio=0.2, wear_level_delta=wear_level_delta,
                           wear_level_check_every=16),
        seed=seed,
    )
    rng = random.Random(seed)
    span = int(storage.logical_pages * 0.7)
    hot = max(4, int(span * hot_fraction))
    for lpn in range(span):
        storage.write(lpn, data=None)
    for __ in range(writes):
        if rng.random() < 0.9:
            storage.write(rng.randrange(hot), data=None)
        else:
            storage.write(rng.randrange(span), data=None)
    summary = array.wear_summary()
    summary["spread"] = summary["max"] - summary["min"]
    summary["wl_moves"] = storage.manager.stats.wl_moves
    return summary
