"""Experiment E10 — ablation of NoFTL's design choices.

DESIGN.md calls out four decisions the paper motivates qualitatively;
this bench quantifies each on one recorded OLTP trace by toggling it off:

* **trim integration** (DBMS free-space manager -> flash) — information
  a black-box FTL never gets;
* **hot/cold stream separation** — GC relocations segregated from fresh
  host writes;
* **copyback** — on-die relocation without bus transfer;
* **GC victim policy** — greedy vs age-weighted cost-benefit.

Each variant replays the identical trace; the table reports relocations,
erases, write amplification and (serialized) device busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core import NoFTLConfig
from ..workloads import replay_trace
from .fig3 import REPLAY_DIES, REPLAY_OP_RATIO, REPLAY_UTILIZATION, record_trace
from .rigs import build_sync_noftl, geometry_for_footprint

__all__ = ["AblationRow", "AblationResult", "ablate_noftl"]


@dataclass
class AblationRow:
    variant: str
    relocations: int
    copybacks: int
    erases: int
    write_amplification: float
    busy_us: float


@dataclass
class AblationResult:
    workload: str
    rows: List[AblationRow] = field(default_factory=list)

    def row(self, variant: str) -> AblationRow:
        for candidate in self.rows:
            if candidate.variant == variant:
                return candidate
        raise KeyError(variant)


VARIANTS = {
    "baseline": {},
    "no-trim": {"honor_trims": False},
    "no-streams": {"separate_streams": False},
    "no-copyback": {"use_copyback": False},
    "cost-benefit-gc": {"gc_policy": "cost_benefit"},
}


def ablate_noftl(workload_name: str = "tpcc",
                 duration_us: float = 6_000_000,
                 seed: int = 11,
                 trace=None) -> AblationResult:
    """Replay one trace against every NoFTL variant."""
    if trace is None:
        trace = record_trace(workload_name, duration_us=duration_us,
                             seed=seed)
    geometry = geometry_for_footprint(
        trace.max_page() + 1,
        utilization=REPLAY_UTILIZATION,
        op_ratio=REPLAY_OP_RATIO,
        dies=REPLAY_DIES,
    )
    result = AblationResult(workload_name)
    for variant, overrides in VARIANTS.items():
        config = NoFTLConfig(op_ratio=REPLAY_OP_RATIO, **overrides)
        storage, array = build_sync_noftl(geometry=geometry, config=config,
                                          seed=seed)
        report = replay_trace(trace, storage)
        result.rows.append(AblationRow(
            variant=variant,
            relocations=report.relocations,
            copybacks=report.copybacks,
            erases=report.erases,
            write_amplification=report.write_amplification,
            busy_us=array.counters.busy_us,
        ))
    return result
