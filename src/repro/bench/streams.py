"""Bench E-S — object/stream-aware write placement vs the legacy layout.

Two arms per workload, identical in every respect except placement:

* **baseline** — the legacy two-temperature layout (``hot`` / ``cold``
  allocation points, GC relocations into ``cold``);
* **streams** — ``write_streams`` on: one allocation point per host data
  class (WAL / heap-hot / heap-cold / btree / temp / ...), buffer-pool
  reference heat driving the heap split, and class-segregated GC
  (victim pages relocate into their own class's GC frontier).

Both arms put *real* WAL traffic on the flash (a circular
:class:`~repro.db.wal.FlashLogVolume` window at the top of the logical
space) and run a periodic :class:`~repro.db.temp.TempArea` spill/merge
producer, so all the short-lived classes the split is supposed to
segregate actually exist.  The device is sized tight (higher utilization
than the health rigs) so steady-state GC happens inside the run.

Placement deltas only exist once GC runs; the first stretch of every
arm is a device-fill transient (the free pool absorbs all writes at
WA 1.0, and the streams arm pays a one-time erase offset for its
pinned per-class frontiers).  Each arm therefore records a **warmup
mark** of the ledger counters and the gates compare the *steady tail*
(counter deltas after the mark), where the comparison is physics
rather than start-up accounting.

``--check`` turns the report into a gate:

* the streams arm collects **zero mixed-class victim blocks** — the
  segregation invariant, observed rather than asserted;
* write amplification drops in steady state:
  WA(streams) < WA(baseline) over the post-warmup tail, per workload;
* wear drops: steady-tail GC erases *per logical write* are lower with
  streams on (normalised because the faster arm does more host work);
* every producing class (wal / heap / btree / temp) classifies traffic
  and nothing falls through to ``unknown``; the only class allowed to
  be producer-less is ``recovery`` (no crash in this rig);
* the streams arm of the first workload is run twice and the two
  reports must be byte-identical (the determinism witness).

The tail-latency effect is reported via the blame decomposition
(:func:`repro.telemetry.blame_breakdown` over the run's event trace):
per-arm p99 write/commit latency with its GC-blamed share.

Output lands as ``BENCH_streams.json`` in ``REPRO_METRICS_DIR``
(default ``benchmarks/out``); ``--export PATH`` additionally writes the
report to an explicit path for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import random
from typing import List, Optional, Sequence

from ..core import NoFTLConfig
from ..db import FlashLogVolume, TempArea
from ..telemetry import EventTrace, HealthMonitor, blame_breakdown
from ..workloads import TPCB, TPCC, run_workload
from .health import WORKLOADS, stream_stats_of
from .reporting import emit, export_metrics, ratio, render_table
from .rigs import (
    attach_database,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["run_arm", "build_report", "check_report", "main"]

#: Logical pages reserved at the top of the address space for the
#: circular WAL segment window (out of the db page allocator's reach).
WAL_WINDOW_PAGES = 64

#: Periodic temp producer: one 4-page spill run every 4 ms, draining
#: down to 2 live runs — continuous allocate/program/trim churn.
TEMP_INTERVAL_US = 4_000.0
TEMP_RUN_PAGES = 4

#: Classes that may legitimately have no producer in this rig (nothing
#: crashes, so recovery never writes).
ALLOWED_PRODUCERLESS = {"recovery"}

#: Warmup before the steady-state mark: long enough for the free pool
#: to fill and GC to reach its steady regime on the bigger kit.
WARMUP_US = 300_000.0


def _make_workload(name: str):
    """Bigger kits than bench.health: the placement comparison needs the
    data footprint to actually fill the device (high utilization with a
    sane number of blocks per plane), where the health rigs only need
    classified traffic to exist."""
    if name == "tpcb":
        return TPCB(sf=32, accounts_per_branch=2000)
    if name == "tpcc":
        return TPCC(warehouses=8, customers_per_district=500, items=1600)
    raise ValueError(f"unknown workload {name!r}; pick from {WORKLOADS}")


def run_arm(
    workload_name: str,
    streams: bool,
    seed: int = 17,
    duration_us: float = 700_000.0,
    dies: int = 1,
    utilization: float = 0.97,
    warmup_us: Optional[float] = None,
) -> dict:
    """One closed-loop arm: TPC kit + WAL-on-flash + temp producer.

    The two arms of a comparison differ only in ``streams`` (the
    ``write_streams`` config bit plus the buffer pool's heat hints);
    geometry, seed, workload scale and the WAL/temp producers are
    shared, so every delta in the report is placement.

    ``warmup_us`` sets the steady-state mark: ledger counters are
    snapshotted that far into the run and the arm's ``steady`` section
    reports the post-mark deltas (clamped so at least a quarter of the
    run is tail even on short horizons).
    """
    if warmup_us is None:
        warmup_us = WARMUP_US
    warmup_us = min(warmup_us, duration_us * 0.75)
    workload = _make_workload(workload_name)
    footprint = measure_workload_footprint(workload)
    # Tighter than the health rigs (steady-state GC must happen inside
    # the run for placement to matter at all) and with small blocks, so
    # each plane holds enough blocks for per-class open frontiers plus
    # GC headroom.
    geometry = sized_geometry(
        footprint + WAL_WINDOW_PAGES, dies,
        utilization=utilization,
        headroom_pages=footprint // 20,
        pages_per_block=16,
    )
    trace = EventTrace(capacity=65536)
    rig = build_noftl_rig(
        geometry=geometry,
        # gc_low_water is raised (identically in both arms) because the
        # streams arm keeps one open block per class frontier: GC must
        # start while there is still slack for those allocation points.
        config=NoFTLConfig(num_regions=dies, op_ratio=0.12,
                           gc_low_water=4, write_streams=streams),
        seed=seed,
        trace=trace,
    )
    monitor = HealthMonitor(clock=lambda: rig.sim.now)
    monitor.attach_array(rig.array)
    monitor.attach_manager(rig.manager)
    db = attach_database(rig, buffer_capacity=max(64, footprint // 4),
                         foreground_flush=False, heat_hints=streams)
    db.start_writers(4, policy="region")

    # Real WAL traffic: circular segment window at the top of the
    # logical space, clear of the db allocator growing from 0.
    volume = FlashLogVolume(
        db.storage,
        base_page=rig.adapter.logical_pages - WAL_WINDOW_PAGES,
        window_pages=WAL_WINDOW_PAGES,
    )
    db.wal.segment_writer = volume.writer

    rig.sim.run_process(workload.load(db))

    # Real temp traffic: periodic spill/merge churn for the whole run
    # (bounded: the closed loop ends by draining the event queue).
    temp = TempArea(db)
    rig.sim.process(temp.process(TEMP_INTERVAL_US, TEMP_RUN_PAGES,
                                 until_us=rig.sim.now + duration_us))

    # Steady-state mark: snapshot the ledger and stream counters once
    # the fill transient is over, so the gates can compare tail deltas.
    ledger = monitor.ledger
    mark: dict = {}

    def _mark_steady():
        yield rig.sim.timeout(warmup_us)
        report = ledger.report()
        stream_stats = stream_stats_of(rig.manager)
        mark.update(
            logical=report["logical_writes"],
            physical=report["physical_writes"],
            erases=report["erases"]["total"],
            victims=stream_stats.get("victims", 0),
            mixed=stream_stats.get("mixed_class_victims", 0),
        )

    rig.sim.process(_mark_steady())

    stats = run_workload(rig.sim, db, _make_workload(workload_name),
                         duration_us=duration_us, num_terminals=8,
                         rng=random.Random(seed), preloaded=True)
    trace.enabled = False

    events = [event.as_dict() for event in trace.events]
    final = ledger.report()
    final_streams = stream_stats_of(rig.manager)
    logical_tail = final["logical_writes"] - mark.get("logical", 0)
    physical_tail = final["physical_writes"] - mark.get("physical", 0)
    erases_tail = final["erases"]["total"] - mark.get("erases", 0)
    steady = {
        "warmup_us": warmup_us,
        "logical_writes": logical_tail,
        "physical_writes": physical_tail,
        "erases": erases_tail,
        "write_amplification": (
            round(physical_tail / logical_tail, 4) if logical_tail else None
        ),
        "erases_per_write": (
            round(erases_tail / logical_tail, 5) if logical_tail else None
        ),
        "victims": final_streams.get("victims", 0) - mark.get("victims", 0),
        "mixed_class_victims": (
            final_streams.get("mixed_class_victims", 0)
            - mark.get("mixed", 0)
        ),
    }
    return {
        "workload": workload_name,
        "streams": streams,
        "seed": seed,
        "duration_us": duration_us,
        "commits": stats.commits,
        "tps": stats.tps,
        "wa": final,
        "steady": steady,
        "stream_stats": final_streams,
        "wal_volume": volume.snapshot(),
        "temp": temp.snapshot(),
        "write_blame": blame_breakdown(events, op="write"),
        "commit_blame": blame_breakdown(events, op="commit"),
        "trace_events": trace.emitted,
    }


# -- report assembly + gate ---------------------------------------------------


def _erases_per_write(arm: dict) -> float:
    """Steady-tail GC erases per logical host write (the wear cost of
    one unit of host work — comparable across arms with different
    throughput, and clear of the fill transient)."""
    steady = arm["steady"]
    if steady["logical_writes"] <= 0:
        return 0.0
    return steady["erases"] / steady["logical_writes"]


def _steady_wa(arm: dict) -> Optional[float]:
    return arm["steady"]["write_amplification"]


def build_report(
    seed: int = 17,
    quick: bool = False,
    determinism: bool = True,
    workloads: Sequence[str] = WORKLOADS,
) -> dict:
    # Horizons leave a real steady tail past the warmup mark (quick is
    # the CI smoke; full doubles the tail for tighter margins).
    duration = 500_000.0 if quick else 900_000.0

    comparisons = {}
    for name in workloads:
        baseline = run_arm(name, streams=False, seed=seed,
                           duration_us=duration)
        streamed = run_arm(name, streams=True, seed=seed,
                           duration_us=duration)
        comparisons[name] = {
            "baseline": baseline,
            "streams": streamed,
            "relative": {
                # > 1.0 means the streams arm improved on the baseline.
                # Both metrics are steady-tail (post-warmup deltas).
                "wa": round(ratio(
                    _steady_wa(baseline) or 0.0,
                    _steady_wa(streamed) or 1.0), 4),
                # Erases normalised per logical write: the two arms are
                # closed loops, so the faster arm does more host work —
                # raw erase counts would penalise the winner for its own
                # extra throughput.
                "erases_per_write": round(ratio(
                    _erases_per_write(baseline),
                    _erases_per_write(streamed)), 4),
                "p99_write_us": round(ratio(
                    baseline["write_blame"].get("p99_us") or 0.0,
                    streamed["write_blame"].get("p99_us") or 1.0), 4),
            },
        }

    report = {
        "seed": seed,
        "quick": quick,
        "comparisons": comparisons,
    }

    if determinism and workloads:
        first = workloads[0]
        repeat = run_arm(first, streams=True, seed=seed,
                         duration_us=duration)
        baseline = json.dumps(comparisons[first]["streams"], sort_keys=True)
        echo = json.dumps(repeat, sort_keys=True)
        report["determinism"] = {
            "workload": first,
            "checked": True,
            "identical": baseline == echo,
        }
    else:
        report["determinism"] = {"checked": False, "identical": None}
    return report


def check_report(report: dict) -> List[str]:
    """Return human-readable gate failures (empty = all gates hold)."""
    failures: List[str] = []

    for name, compare in report["comparisons"].items():
        baseline = compare["baseline"]
        streamed = compare["streams"]

        # Segregation invariant: with class streams on, GC must never
        # pick a block holding more than one data class (whole run, not
        # just the tail — the invariant has no warmup exemption).
        mixed = streamed["stream_stats"].get("mixed_class_victims", 0)
        if mixed:
            failures.append(
                f"{name}: {mixed} mixed-class victim blocks under "
                "write streams (segregation invariant violated)"
            )
        if streamed["steady"]["victims"] <= 0:
            failures.append(
                f"{name}: streams arm never garbage-collected past the "
                "warmup mark — the rig is not in the steady-state "
                "regime the gate needs"
            )

        wa_off = _steady_wa(baseline)
        wa_on = _steady_wa(streamed)
        if wa_off is None or wa_on is None:
            failures.append(
                f"{name}: no logical writes in the steady tail"
            )
        elif not wa_on < wa_off:
            failures.append(
                f"{name}: steady WA(streams)={wa_on:.4f} not below "
                f"WA(baseline)={wa_off:.4f}"
            )
        erases_off = _erases_per_write(baseline)
        erases_on = _erases_per_write(streamed)
        if not erases_on < erases_off:
            failures.append(
                f"{name}: steady erases/write(streams)={erases_on:.5f} "
                f"not below erases/write(baseline)={erases_off:.5f}"
            )

        for arm_name, arm in (("baseline", baseline), ("streams", streamed)):
            per_class = arm["wa"]["per_class"]
            for cls in ("wal", "heap", "btree", "temp"):
                if per_class.get(cls, {}).get("logical", 0) <= 0:
                    failures.append(
                        f"{name}/{arm_name}: no {cls} traffic classified"
                    )
            if per_class.get("unknown", {}).get("physical", 0) > 0:
                failures.append(
                    f"{name}/{arm_name}: "
                    f"{per_class['unknown']['physical']} physical writes "
                    "fell through to the 'unknown' class"
                )
            stray = set(arm["wa"]["producerless_classes"]) \
                - ALLOWED_PRODUCERLESS
            if stray:
                failures.append(
                    f"{name}/{arm_name}: producer-less classes "
                    f"{sorted(stray)} (only {sorted(ALLOWED_PRODUCERLESS)} "
                    "may stay silent in this rig)"
                )

    determinism = report["determinism"]
    if determinism["checked"] and not determinism["identical"]:
        failures.append(
            "determinism: streams-arm reports differ between same-seed runs"
        )
    return failures


# -- CLI ----------------------------------------------------------------------


def _emit_summary(report: dict) -> None:
    rows = []
    for name, compare in report["comparisons"].items():
        baseline = compare["baseline"]
        streamed = compare["streams"]
        rows.append([
            name.upper(),
            _steady_wa(baseline),
            _steady_wa(streamed),
            round(1000 * _erases_per_write(baseline), 2),
            round(1000 * _erases_per_write(streamed), 2),
            streamed["stream_stats"].get("mixed_class_victims", 0),
        ])
    emit(render_table(
        "Write streams vs legacy hot/cold placement "
        "(closed loop, steady tail)",
        ["workload", "WA base", "WA streams", "erase/kw base",
         "erase/kw streams", "mixed victims"],
        rows,
    ))

    for name, compare in report["comparisons"].items():
        rows = []
        base_cls = compare["baseline"]["wa"]["per_class"]
        on_cls = compare["streams"]["wa"]["per_class"]
        for cls in sorted(set(base_cls) | set(on_cls)):
            rows.append([
                cls,
                base_cls.get(cls, {}).get("wa"),
                on_cls.get(cls, {}).get("wa"),
                on_cls.get(cls, {}).get("logical", 0),
            ])
        emit(render_table(
            f"{name.upper()} — per-class write amplification",
            ["class", "WA base", "WA streams", "logical (streams)"],
            rows,
        ))
        base_blame = compare["baseline"]["write_blame"]
        on_blame = compare["streams"]["write_blame"]
        if base_blame.get("count") and on_blame.get("count"):
            emit(
                f"  {name} p99 write: {base_blame['p99_us']:.0f}us -> "
                f"{on_blame['p99_us']:.0f}us "
                f"(x{compare['relative']['p99_write_us']:.2f})"
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.streams",
        description="Object/stream-aware write placement comparison",
    )
    parser.add_argument("--workload", action="append", choices=WORKLOADS,
                        default=None,
                        help="workload(s) to run (default: tpcb and tpcc)")
    parser.add_argument("--quick", action="store_true",
                        help="shorter horizons for CI smoke")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--check", action="store_true",
                        help="gate the report (zero mixed-class victims, "
                             "WA and erase reduction, full classification, "
                             "double-run byte-identity) and exit nonzero "
                             "on any failure")
    parser.add_argument("--no-determinism", action="store_true",
                        help="skip the double-run byte-identity witness")
    parser.add_argument("--export", default=None, metavar="PATH",
                        help="also write the report JSON to PATH")
    args = parser.parse_args(argv)

    workloads = tuple(args.workload) if args.workload else WORKLOADS
    report = build_report(
        seed=args.seed,
        quick=args.quick,
        determinism=not args.no_determinism,
        workloads=workloads,
    )
    export_metrics("BENCH_streams", report)
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    _emit_summary(report)

    if args.check:
        failures = check_report(report)
        if failures:
            for failure in failures:
                emit(f"STREAMS GATE FAILURE: {failure}")
            return 1
        emit("streams check ok (segregation invariant, WA and erase "
             "reduction, full classification, determinism)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
