"""Bench E-H — device health & load observability report.

One machine-checkable report per invocation, assembled from the health
instruments in :mod:`repro.telemetry.health`:

* **Closed-loop DB rigs** (TPC-B / TPC-C on the NoFTL DES rig, health
  monitor attached): write amplification per host data class (WAL /
  heap / btree), wear distribution with skew and the remaining-lifetime
  projection, plus the live windowed series the monitor collected
  during the run.
* **Replay comparison** (the Figure-3 methodology): one recorded trace
  replayed into FASTer and NoFTL with a WA ledger on each array.  The
  ledger is the accounting source for the WA / erase comparison, and
  its totals are cross-checked against the registry counters the Fig3
  gate uses (``ftl.relocations``, ``flash.commands{op=erase}``).
* **Open-loop saturation rig**: a ramped arrival-rate writer over the
  device front end; the windowed engine must detect the saturation
  point (shed onset or latency knee) as load exceeds service capacity.

``--check`` turns the report into a gate:

* WA(NoFTL) < WA(FASTer) on every replay workload;
* the replay relocation/erase ratios sit in the Figure-3 band
  (copyback 1.2x-8x, erase > 1.1x in FASTer's disfavour);
* ledger erase totals equal the registry's erase counters exactly;
* every closed-loop rig classifies WAL plus heap-or-btree traffic and
  reports a concrete remaining-lifetime projection;
* the saturation rig detects a saturation point;
* the TPC-B closed-loop rig is run twice and the two health reports
  must be byte-identical (the determinism witness).

Output lands as ``BENCH_health.json`` in ``REPRO_METRICS_DIR`` (default
``benchmarks/out``); ``--export PATH`` additionally writes the combined
report to an explicit path for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import random
from typing import List, Optional, Sequence

from ..core import NoFTLConfig
from ..core.badblock import DegradedModeError
from ..device import FrontendConfig
from ..telemetry import HealthMonitor
from ..workloads import TPCB, TPCC, replay_trace, run_workload
from .fig3 import REPLAY_OP_RATIO, REPLAY_UTILIZATION, record_trace
from .reporting import emit, export_metrics, ratio, render_table
from .rigs import (
    attach_database,
    build_noftl_rig,
    build_sync_blockdev,
    build_sync_noftl,
    geometry_for_footprint,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = [
    "run_db_rig",
    "run_replay_compare",
    "run_saturation_rig",
    "build_report",
    "check_report",
    "stream_stats_of",
    "main",
]


def stream_stats_of(manager) -> dict:
    """Sum every region space's write-stream counters (streams mode)."""
    totals: dict = {}
    for region in manager.regions.regions:
        for key, value in region.space.stream_stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals

WORKLOADS = ("tpcb", "tpcc")

#: Figure-3 band the replay ratios must sit in (FASTer's disfavour).
COPYBACK_BAND = (1.2, 8.0)
ERASE_FLOOR = 1.1

#: Trace horizon for the replay comparison.  Short traces never reach
#: the steady-state GC regime where the paper's ~2x factor appears (and
#: FASTer's log area, sized off a tiny footprint, can even run out of
#: blocks), so the comparison always runs the Figure-3 benchmark's
#: proven horizon; ``--quick`` shortens only the closed-loop rigs.
REPLAY_TRACE_DURATION_US = 8_000_000.0


def _make_workload(name: str):
    """Smaller kits than bench.perf — four rigs + a double-run must stay
    CI-smoke sized — but the same shapes and write mixes."""
    if name == "tpcb":
        return TPCB(sf=4, accounts_per_branch=200)
    if name == "tpcc":
        return TPCC(warehouses=1, customers_per_district=20, items=80)
    raise ValueError(f"unknown workload {name!r}; pick from {WORKLOADS}")


# -- closed-loop DB rigs ------------------------------------------------------


def run_db_rig(
    workload_name: str,
    seed: int = 11,
    duration_us: float = 200_000.0,
    dies: int = 4,
    window_us: float = 10_000.0,
    write_streams: bool = False,
) -> dict:
    """TPC kit on the NoFTL DES rig with a health monitor attached.

    This is where the per-class WA decomposition comes from: WAL flushes
    arrive under ``txn-commit`` contexts, page write-backs are stamped
    ``heap`` / ``btree`` by the buffer pool, and the monitor's clock is
    wired to the simulator so die-busy windows are live, not replayed.

    ``write_streams`` (the ``--streams`` axis) turns on object-aware
    placement: per-class allocation points in the FTL plus reference-heat
    hot/cold hints from the buffer pool.  The full streams-vs-baseline
    comparison lives in :mod:`repro.bench.streams`; here the flag just
    lets the health report be taken under the streamed layout.
    """
    workload = _make_workload(workload_name)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies, utilization=0.85,
                              headroom_pages=footprint // 2)
    rig = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=dies, op_ratio=0.12,
                           write_streams=write_streams),
        seed=seed,
    )
    monitor = HealthMonitor(window_us=window_us, clock=lambda: rig.sim.now)
    monitor.attach_array(rig.array)
    monitor.attach_manager(rig.manager)
    monitor.install(rig.telemetry)
    db = attach_database(rig, buffer_capacity=max(64, footprint // 4),
                         foreground_flush=False,
                         heat_hints=write_streams)
    db.start_writers(4, policy="region")
    rig.sim.run_process(workload.load(db))
    stats = run_workload(rig.sim, db, _make_workload(workload_name),
                         duration_us=duration_us, num_terminals=8,
                         rng=random.Random(seed), preloaded=True)
    out = {
        "workload": workload_name,
        "arch": "noftl",
        "seed": seed,
        "duration_us": duration_us,
        "commits": stats.commits,
        "health": monitor.report(),
        "manager": rig.manager.health_snapshot(),
    }
    if write_streams:
        out["write_streams"] = True
        out["streams"] = stream_stats_of(rig.manager)
    return out


# -- replay comparison (Figure-3 methodology) ---------------------------------


def run_replay_compare(
    workload_name: str,
    seed: int = 11,
    duration_us: float = REPLAY_TRACE_DURATION_US,
) -> dict:
    """One trace, two targets, one WA ledger each.

    The comparison the paper's Figure 3 gates — FASTer relocates and
    erases roughly twice as much as NoFTL on the identical stream — with
    the ledger as the accounting source and the legacy registry counters
    kept alongside as a consistency cross-check.
    """
    trace = record_trace(workload_name, duration_us=duration_us, seed=seed)
    geometry = geometry_for_footprint(
        trace.max_page() + 1,
        utilization=REPLAY_UTILIZATION,
        op_ratio=REPLAY_OP_RATIO,
        dies=2,
    )

    targets = {}
    for arch in ("faster", "noftl"):
        if arch == "faster":
            device, array = build_sync_blockdev(
                "faster", geometry=geometry, seed=seed,
                op_ratio=REPLAY_OP_RATIO,
            )
        else:
            device, array = build_sync_noftl(
                geometry=geometry, seed=seed,
                config=NoFTLConfig(op_ratio=REPLAY_OP_RATIO),
            )
        monitor = HealthMonitor()
        monitor.attach_array(array)
        report = replay_trace(trace, device)
        ledger = monitor.ledger
        targets[arch] = {
            "replay": report.as_dict(),
            "wa": ledger.report(),
            "wear": monitor.wear(),
            "consistency": {
                # Exact identities between the ledger and the registry
                # counters replay_trace reads — one accounting source,
                # two independent paths to it.
                "ledger_erases": ledger.total_erases,
                "registry_erases": report.erases,
                "erases_agree": ledger.total_erases == report.erases,
                "ledger_maintenance_writes": ledger.maintenance_writes,
                "registry_relocations": report.relocations,
            },
        }

    faster = targets["faster"]
    noftl = targets["noftl"]
    return {
        "workload": workload_name,
        "seed": seed,
        "trace": trace.counts(),
        "targets": targets,
        "relative": {
            # Same axes (and the same counters) as the Fig3 gate rows.
            "copyback": round(ratio(faster["replay"]["relocations"],
                                    noftl["replay"]["relocations"]), 4),
            "erase": round(ratio(faster["replay"]["erases"],
                                 noftl["replay"]["erases"]), 4),
            "wa": round(ratio(faster["wa"]["write_amplification"] or 0.0,
                              noftl["wa"]["write_amplification"] or 1.0), 4),
        },
    }


# -- open-loop saturation rig -------------------------------------------------


def saturation_frontend_config() -> FrontendConfig:
    """Deliberately small: the rig must saturate inside a short run."""
    return FrontendConfig(
        max_inflight=4,
        destage_workers=2,
        cache_pages=32,
        dirty_high_watermark=0.75,
        queue_limit=16,
        write_deadline_us=2_500.0,
        read_deadline_us=2_500.0,
        trim_deadline_us=2_500.0,
    )


def run_saturation_rig(
    seed: int = 11,
    phases: int = 10,
    phase_us: float = 8_000.0,
    base_interval_us: float = 220.0,
    ramp: float = 1.6,
    window_us: float = 4_000.0,
    pages: int = 512,
) -> dict:
    """Open-loop arrival ramp over the device front end.

    Each phase shortens the write inter-arrival time by ``ramp``x;
    arrivals are spawned fire-and-forget (open loop — offered load does
    not slow down when the device does), so once service capacity is
    exceeded the dirty watermark holds, deadlines pass, and the front
    end sheds.  The windowed engine must see it happen.
    """
    rig = build_noftl_rig(
        config=NoFTLConfig(num_regions=2, op_ratio=0.12),
        seed=seed,
        frontend_config=saturation_frontend_config(),
    )
    frontend = rig.frontend
    sim = rig.sim
    monitor = HealthMonitor(window_us=window_us, clock=lambda: sim.now)
    monitor.attach_array(rig.array)
    monitor.attach_frontend(frontend)
    monitor.install(rig.telemetry)

    rng = random.Random(seed)
    outcomes = {"acked": 0, "shed": 0}

    def one_write(lpn: int):
        try:
            yield from frontend.write(lpn, data=("H", lpn))
        except DegradedModeError:
            outcomes["shed"] += 1  # counted by the front end too
        else:
            outcomes["acked"] += 1

    def driver():
        for phase in range(phases):
            interval = base_interval_us / (ramp ** phase)
            end_at = sim.now + phase_us
            while sim.now < end_at:
                sim.process(one_write(rng.randrange(pages)))
                yield sim.timeout(interval)
        # Drain window: let in-flight writes and destages settle so the
        # final windows reflect service, not an abrupt stop.
        yield sim.timeout(4 * window_us)

    sim.run_process(driver())
    return {
        "seed": seed,
        "offered": dict(outcomes),
        "frontend": frontend.snapshot(),
        "windows": monitor.windows.series(),
        "saturation": monitor.saturation(),
    }


# -- report assembly + gate ---------------------------------------------------


def build_report(
    seed: int = 11,
    quick: bool = False,
    determinism: bool = True,
    workloads: Sequence[str] = WORKLOADS,
    write_streams: bool = False,
) -> dict:
    db_duration = 150_000.0 if quick else 300_000.0
    replay_duration = REPLAY_TRACE_DURATION_US

    closed_loop = {}
    replay = {}
    for name in workloads:
        closed_loop[name] = run_db_rig(name, seed=seed,
                                       duration_us=db_duration,
                                       write_streams=write_streams)
        replay[name] = run_replay_compare(name, seed=seed,
                                          duration_us=replay_duration)

    report = {
        "seed": seed,
        "quick": quick,
        "closed_loop": closed_loop,
        "replay": replay,
        "saturation_rig": run_saturation_rig(seed=seed),
    }
    if write_streams:
        report["write_streams"] = True

    if determinism and workloads:
        first = workloads[0]
        repeat = run_db_rig(first, seed=seed, duration_us=db_duration,
                            write_streams=write_streams)
        baseline = json.dumps(closed_loop[first]["health"], sort_keys=True)
        echo = json.dumps(repeat["health"], sort_keys=True)
        report["determinism"] = {
            "workload": first,
            "checked": True,
            "identical": baseline == echo,
        }
    else:
        report["determinism"] = {"checked": False, "identical": None}
    return report


def check_report(report: dict) -> List[str]:
    """Return human-readable gate failures (empty = all gates hold)."""
    failures: List[str] = []

    for name, compare in report["replay"].items():
        faster_wa = compare["targets"]["faster"]["wa"]["write_amplification"]
        noftl_wa = compare["targets"]["noftl"]["wa"]["write_amplification"]
        if faster_wa is None or noftl_wa is None:
            failures.append(f"{name}: replay ledger saw no logical writes")
            continue
        if not noftl_wa < faster_wa:
            failures.append(
                f"{name}: WA(NoFTL)={noftl_wa:.3f} not below "
                f"WA(FASTer)={faster_wa:.3f}"
            )
        copyback = compare["relative"]["copyback"]
        erase = compare["relative"]["erase"]
        if not COPYBACK_BAND[0] < copyback < COPYBACK_BAND[1]:
            failures.append(
                f"{name}: copyback ratio {copyback:.2f}x outside the "
                f"Figure-3 band ({COPYBACK_BAND[0]}, {COPYBACK_BAND[1]})"
            )
        if not erase > ERASE_FLOOR:
            failures.append(
                f"{name}: erase ratio {erase:.2f}x not above {ERASE_FLOOR}"
            )
        for arch, target in compare["targets"].items():
            if not target["consistency"]["erases_agree"]:
                failures.append(
                    f"{name}/{arch}: ledger erases "
                    f"{target['consistency']['ledger_erases']} != registry "
                    f"{target['consistency']['registry_erases']}"
                )

    for name, rig in report["closed_loop"].items():
        per_class = rig["health"]["wa"]["per_class"]
        # The WAL lives on a dedicated log volume (a latency model, no
        # flash commands), so the classes visible here are the page
        # write-backs: heap and btree must both be present and nothing
        # may fall through to "unknown" on this rig.
        for cls in ("heap", "btree"):
            if per_class.get(cls, {}).get("logical", 0) <= 0:
                failures.append(f"{name}: no {cls} traffic classified")
        if per_class.get("unknown", {}).get("physical", 0) > 0:
            failures.append(
                f"{name}: {per_class['unknown']['physical']} physical "
                "writes fell through to the 'unknown' class"
            )
        lifetime = rig["health"]["wear"].get("lifetime") or {}
        if lifetime.get("remaining_host_writes") is None:
            failures.append(f"{name}: no remaining-lifetime projection")

    saturation = report["saturation_rig"]["saturation"]
    if not saturation["saturated"]:
        failures.append("saturation rig: no saturation point detected")

    determinism = report["determinism"]
    if determinism["checked"] and not determinism["identical"]:
        failures.append(
            "determinism: health reports differ between same-seed runs"
        )
    return failures


# -- CLI ----------------------------------------------------------------------


def _emit_summary(report: dict) -> None:
    rows = []
    for name, compare in report["replay"].items():
        faster = compare["targets"]["faster"]
        noftl = compare["targets"]["noftl"]
        rows.append([
            name.upper(),
            faster["wa"]["write_amplification"],
            noftl["wa"]["write_amplification"],
            f"{compare['relative']['copyback']:.2f}x",
            f"{compare['relative']['erase']:.2f}x",
        ])
    emit(render_table(
        "Write amplification — FASTer vs NoFTL (trace replay, WA ledger)",
        ["workload", "WA FASTer", "WA NoFTL", "copyback rel", "erase rel"],
        rows,
    ))

    rows = []
    for name, rig in report["closed_loop"].items():
        wa = rig["health"]["wa"]
        wear = rig["health"]["wear"]
        lifetime = wear.get("lifetime") or {}
        rows.append([
            name.upper(),
            rig["commits"],
            wa["write_amplification"],
            wear.get("skew"),
            lifetime.get("life_used"),
            lifetime.get("remaining_host_writes"),
        ])
    emit(render_table(
        "Closed-loop NoFTL rigs — WA, wear skew, lifetime projection",
        ["workload", "commits", "WA", "wear skew", "life used",
         "writes left"],
        rows,
    ))

    for name, rig in report["closed_loop"].items():
        per_class = rig["health"]["wa"]["per_class"]
        parts = ", ".join(
            f"{cls}: {entry['wa']}" for cls, entry in per_class.items()
            if entry["wa"] is not None
        )
        emit(f"  {name} WA per class: {parts}")

    point = report["saturation_rig"]["saturation"]["point"]
    if point is not None:
        emit(f"  saturation: {point['kind']} at window {point['window']} "
             f"(t={point['at_us']:,.0f}us)")
    else:
        emit("  saturation: none detected")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.health",
        description="Device health & load observability report",
    )
    parser.add_argument("--workload", action="append", choices=WORKLOADS,
                        default=None,
                        help="workload(s) to run (default: tpcb and tpcc)")
    parser.add_argument("--quick", action="store_true",
                        help="shorter horizons for CI smoke")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--check", action="store_true",
                        help="gate the report (WA ordering, Figure-3 band, "
                             "lifetime projection, saturation detection, "
                             "double-run byte-identity) and exit nonzero "
                             "on any failure")
    parser.add_argument("--streams", action="store_true",
                        help="run the closed-loop rigs with object-aware "
                             "write streams (write_streams + buffer-pool "
                             "heat hints) instead of the legacy hot/cold "
                             "layout")
    parser.add_argument("--no-determinism", action="store_true",
                        help="skip the double-run byte-identity witness")
    parser.add_argument("--export", default=None, metavar="PATH",
                        help="also write the combined report JSON to PATH")
    args = parser.parse_args(argv)

    workloads = tuple(args.workload) if args.workload else WORKLOADS
    report = build_report(
        seed=args.seed,
        quick=args.quick,
        determinism=not args.no_determinism,
        workloads=workloads,
        write_streams=args.streams,
    )
    export_metrics("BENCH_health", report)
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    _emit_summary(report)

    if args.check:
        failures = check_report(report)
        if failures:
            for failure in failures:
                emit(f"HEALTH GATE FAILURE: {failure}")
            return 1
        emit("health check ok (WA ordering, Figure-3 band, lifetime "
             "projection, saturation detection, determinism)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
