"""Experiment E6 — write-latency predictability.

Section 3 motivates NoFTL with the black-box SSD's latency profile:
*"the average 4KB random write latency on a SLC SSD is 0.450 ms, while
frequent FTL-specific outliers under heavy load can reach 80 ms"*.

The job is FIO-like (Demo Scenario 1): sustained 4 KiB random writes
over a mostly-full device.  On the block device, host writes that land
behind a FASTer log-wrap (a burst of full merges + erases behind the
single controller) observe multi-millisecond outliers; under NoFTL the
host amortizes small greedy GC steps and the tail stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core import NoFTLConfig
from ..flash import SLC_TIMING, Geometry
from ..workloads import SyntheticSpec, run_synthetic
from .rigs import build_blockdev_rig, build_noftl_rig

__all__ = ["LatencyProfile", "latency_outliers"]

#: A small SLC device so the synthetic job reaches GC steady state fast.
LATENCY_GEOMETRY = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=24,
    pages_per_block=32,
    page_bytes=4096,
)


@dataclass
class LatencyProfile:
    architecture: str
    mean_us: float
    p50_us: float
    p99_us: float
    p999_us: float
    max_us: float
    outliers_over_10x_mean: int
    samples: int

    @property
    def max_over_mean(self) -> float:
        return self.max_us / self.mean_us if self.mean_us else 0.0


def latency_outliers(
    ops: int = 6000,
    queue_depth: int = 4,
    span_fraction: float = 0.85,
    seed: int = 5,
) -> Dict[str, LatencyProfile]:
    """Random-write latency distributions: FASTer block device vs NoFTL."""
    profiles: Dict[str, LatencyProfile] = {}

    # Black-box SSD with FASTer.
    rig = build_blockdev_rig("faster", geometry=LATENCY_GEOMETRY,
                             timing=SLC_TIMING, seed=seed, op_ratio=0.12)
    span = int(rig.ftl.logical_pages * span_fraction)
    result = run_synthetic(
        rig.sim, rig.device,
        SyntheticSpec(pattern="random", ops=ops, queue_depth=queue_depth,
                      span=span, seed=seed),
    )
    profiles["faster"] = _profile("faster", result)

    # NoFTL on native flash.
    noftl = build_noftl_rig(geometry=LATENCY_GEOMETRY, timing=SLC_TIMING,
                            config=NoFTLConfig(op_ratio=0.12), seed=seed)
    span = int(noftl.storage.logical_pages * span_fraction)
    result = run_synthetic(
        noftl.sim, noftl.storage,
        SyntheticSpec(pattern="random", ops=ops, queue_depth=queue_depth,
                      span=span, seed=seed),
    )
    profiles["noftl"] = _profile("noftl", result)
    return profiles


def _profile(architecture: str, result) -> LatencyProfile:
    recorder = result.write_latency
    return LatencyProfile(
        architecture=architecture,
        mean_us=recorder.mean,
        p50_us=recorder.pct(50),
        p99_us=recorder.pct(99),
        p999_us=recorder.pct(99.9),
        max_us=recorder.maximum,
        outliers_over_10x_mean=recorder.outliers_over(10 * recorder.mean),
        samples=recorder.count,
    )
