"""Experiment E7 — flash model validation (Demo Scenario 1).

The paper validates its real-time emulator against the OpenSSD board by
configuring it with the board's parameters and comparing benchmark
results.  The analogous check here: configure the DES flash device with
the OpenSSD-Jasmine timing spec, drive it with micro- and macro-level
jobs, and compare against the analytic reference model (the timing spec
itself plus ideal pipelining bounds):

1. per-command latency (read / program / erase / copyback) must match
   the spec to within a fraction of a percent;
2. a single-die sequential job must take exactly the serial sum;
3. an all-die parallel job must land between the perfect-pipelining
   lower bound and the serial upper bound, close to the former.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..flash import (
    Copyback,
    EraseBlock,
    FlashArray,
    Geometry,
    OPENSSD_JASMINE,
    ProgramPage,
    ReadPage,
    SimFlashDevice,
)
from ..sim import Simulator
from ..telemetry import MetricsRegistry

__all__ = ["ValidationRow", "ValidationReport", "validate_emulator"]

OPENSSD_GEOMETRY = Geometry(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=32,
    pages_per_block=32,
    page_bytes=4096,
)


@dataclass
class ValidationRow:
    check: str
    expected_us: float
    measured_us: float

    @property
    def error_fraction(self) -> float:
        if self.expected_us == 0:
            return 0.0
        return abs(self.measured_us - self.expected_us) / self.expected_us


@dataclass
class ValidationReport:
    rows: List[ValidationRow] = field(default_factory=list)
    #: One registry shared by every scenario's flash array — the combined
    #: command counts back the CI smoke-bench artifact.
    telemetry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def max_error(self) -> float:
        return max(row.error_fraction for row in self.rows)

    def row(self, check: str) -> ValidationRow:
        for candidate in self.rows:
            if candidate.check == check:
                return candidate
        raise KeyError(check)


def validate_emulator(timing=OPENSSD_JASMINE,
                      geometry: Geometry = OPENSSD_GEOMETRY,
                      pipeline_ops_per_die: int = 16) -> ValidationReport:
    """Run the validation scenarios and report expected vs measured."""
    report = ValidationReport()
    registry = report.telemetry
    page_bytes = geometry.page_bytes

    # 1. Per-command latencies on an idle device.
    per_command = {
        "read": (timing.read_latency_us(page_bytes),
                 lambda device: device.execute(ReadPage(ppn=0))),
        "program": (timing.program_latency_us(page_bytes),
                    lambda device: device.execute(
                        ProgramPage(ppn=0, data=b"v"))),
        "erase": (timing.erase_latency_us(),
                  lambda device: device.execute(EraseBlock(pbn=1))),
        "copyback": (timing.copyback_latency_us(), None),  # special below
    }

    for name in ("program", "read", "erase"):
        expected, runner = per_command[name]
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(geometry, timing, telemetry=registry))

        def proc():
            if name != "program":
                yield from device.execute(ProgramPage(ppn=0, data=b"seed"))
            start = sim.now
            yield from runner(device)
            return sim.now - start

        measured = sim.run_process(proc())
        report.rows.append(ValidationRow(f"cmd:{name}", expected, measured))

    # copyback needs two blocks of one plane
    sim = Simulator()
    device = SimFlashDevice(sim, FlashArray(geometry, timing, telemetry=registry))
    blocks = geometry.blocks_of_plane(0, 0)

    def copyback_proc():
        yield from device.execute(
            ProgramPage(ppn=geometry.ppn_of(blocks[0], 0), data=b"m"))
        start = sim.now
        yield from device.execute(
            Copyback(src_ppn=geometry.ppn_of(blocks[0], 0),
                     dst_ppn=geometry.ppn_of(blocks[1], 0)))
        return sim.now - start

    report.rows.append(ValidationRow(
        "cmd:copyback", timing.copyback_latency_us(),
        sim.run_process(copyback_proc())))

    # 2. Serial sequence on one die == exact serial sum.
    sim = Simulator()
    device = SimFlashDevice(sim, FlashArray(geometry, timing, telemetry=registry))
    count = 8

    def serial_proc():
        start = sim.now
        for page in range(count):
            yield from device.execute(ProgramPage(ppn=page, data=page))
        return sim.now - start

    expected_serial = count * timing.program_latency_us(page_bytes)
    report.rows.append(ValidationRow(
        "serial:one-die", expected_serial, sim.run_process(serial_proc())))

    # 3. Parallel erase across all dies: channel-free, perfect overlap.
    sim = Simulator()
    device = SimFlashDevice(sim, FlashArray(geometry, timing, telemetry=registry))

    def eraser(die):
        for step in range(pipeline_ops_per_die):
            yield from device.execute(
                EraseBlock(pbn=geometry.blocks_of_die(die)[step]))

    for die in range(geometry.total_dies):
        sim.process(eraser(die))
    sim.run()
    expected_parallel = pipeline_ops_per_die * timing.erase_latency_us()
    report.rows.append(ValidationRow(
        "parallel:erase-all-dies", expected_parallel, sim.now))

    return report
