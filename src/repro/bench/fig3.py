"""Experiment E1 — Figure 3: GC overhead of FASTer vs NoFTL.

Methodology exactly as the paper states under the table: *"Off-line
trace-driven testing.  Traces were recorded on in-memory database
running the benchmarks"* — we run each TPC kit against a RAM volume
behind a trace recorder, then replay the identical page-I/O stream into

* a black-box SSD with the FASTer FTL (legacy path: no trims), and
* the NoFTL storage manager (page-level host mapping + trim + hints),

and report absolute and relative COPYBACK (page relocations) and ERASE
counts.  Paper's numbers: copybacks 1.97x-2.15x, erases 1.68x-1.82x in
FASTer's disfavour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..db import Database
from ..db.storage import RAMStorageAdapter
from ..sim import Simulator
from ..telemetry import HealthMonitor
from ..workloads import (
    TPCB,
    TPCC,
    TPCE,
    TraceRecordingAdapter,
    replay_trace,
    run_workload,
)
from .reporting import ratio
from .rigs import (
    DEMO_GEOMETRY,
    build_sync_blockdev,
    build_sync_noftl,
    geometry_for_footprint,
)

__all__ = ["Fig3Row", "Fig3Result", "record_trace", "fig3_gc_overhead",
           "WORKLOAD_LABELS", "main"]

WORKLOAD_LABELS = {
    "tpcc": "TPC-C",
    "tpcb": "TPC-B",
    "tpce": "TPC-E",
}


@dataclass
class Fig3Row:
    workload: str
    io_type: str          # 'COPYBACK' | 'ERASE'
    faster_absolute: int
    noftl_absolute: int

    @property
    def relative(self) -> float:
        return ratio(self.faster_absolute, self.noftl_absolute)


@dataclass
class Fig3Result:
    rows: List[Fig3Row]
    traces: Dict[str, dict]
    reports: Dict[str, dict]

    def row(self, workload: str, io_type: str) -> Fig3Row:
        for candidate in self.rows:
            if candidate.workload == workload and candidate.io_type == io_type:
                return candidate
        raise KeyError((workload, io_type))


def _make_workload(name: str, scale: float):
    if name == "tpcc":
        return TPCC(warehouses=max(1, int(2 * scale)),
                    customers_per_district=40, items=150)
    if name == "tpcb":
        return TPCB(sf=max(1, int(4 * scale)), accounts_per_branch=700)
    if name == "tpce":
        return TPCE(customers=max(100, int(1000 * scale)), securities=80)
    raise ValueError(f"unknown workload {name!r}")


def record_trace(workload_name: str, duration_us: float = 3_000_000,
                 num_terminals: int = 8, buffer_capacity: int = 96,
                 scale: float = 1.0, seed: int = 11):
    """Run a workload on an in-memory database and capture its I/O trace."""
    sim = Simulator()
    logical_pages = int(DEMO_GEOMETRY.total_pages * 0.85)
    ram = RAMStorageAdapter(sim, logical_pages=logical_pages,
                            latency_us=25.0)
    adapter = TraceRecordingAdapter(ram)
    db = Database(sim, adapter, page_bytes=DEMO_GEOMETRY.page_bytes,
                  buffer_capacity=buffer_capacity, cpu_us_per_op=2.0)
    db.start_writers(4, policy="global")
    workload = _make_workload(workload_name, scale)
    run_workload(sim, db, workload, duration_us=duration_us,
                 num_terminals=num_terminals, rng=random.Random(seed))
    sim.run_process(db.checkpoint())
    return adapter.trace


#: Replay-device sizing.  Calibrated so both targets run in GC steady
#: state (12% over-provisioning — FASTer's log area must fit inside it —
#: and ~82% logical space utilization), the regime where the paper's ~2x
#: copyback factor appears.  Lower utilization exaggerates NoFTL's win,
#: higher drowns it; see the E10 ablation for the sensitivity.
REPLAY_UTILIZATION = 0.85
REPLAY_OP_RATIO = 0.12
REPLAY_DIES = 2


def _fig3_task(name: str, duration_us: float, scale: float,
               seed: int) -> dict:
    """Record + replay one workload (sweep task body).

    Fully self-contained — every rig here builds its own fresh registry
    — and returns plain picklable data, so the per-workload comparisons
    can fan out over a process pool with results identical to the
    sequential loop.
    """
    from ..core import NoFTLConfig

    trace = record_trace(name, duration_us=duration_us, scale=scale,
                         seed=seed)

    # Size the replay device to the trace footprint so both targets
    # run at the same realistic space utilization (steady-state GC).
    geometry = geometry_for_footprint(
        trace.max_page() + 1,
        utilization=REPLAY_UTILIZATION,
        op_ratio=REPLAY_OP_RATIO,
        dies=REPLAY_DIES,
    )

    faster_dev, faster_array = build_sync_blockdev(
        "faster", geometry=geometry, seed=seed,
        op_ratio=REPLAY_OP_RATIO,
    )
    faster_health = HealthMonitor()
    faster_health.attach_array(faster_array)
    faster_report = replay_trace(trace, faster_dev)

    noftl_dev, noftl_array = build_sync_noftl(
        geometry=geometry, seed=seed,
        config=NoFTLConfig(op_ratio=REPLAY_OP_RATIO),
    )
    noftl_health = HealthMonitor()
    noftl_health.attach_array(noftl_array)
    noftl_report = replay_trace(trace, noftl_dev)

    # The health ledger is the single accounting source for WA and
    # wear in the exported report; the Fig3Row axes below stay on the
    # registry counters the benchmark gate has always used, and
    # ``bench.health --check`` asserts both sources agree.
    return {
        "workload": name,
        "trace_counts": trace.counts(),
        "report": {
            "FASTer": {
                **faster_report.as_dict(),
                "health": faster_health.report(),
            },
            "NoFTL": {
                **noftl_report.as_dict(),
                "health": noftl_health.report(),
            },
        },
        # Both axes come from each rig's shared telemetry registry: the
        # COPYBACK row counts page relocations (``ftl.relocations`` —
        # what the paper's hardware issues as copyback commands; here
        # cross-plane moves fall back to read+program but are the same
        # GC traffic), the ERASE row counts ``flash.commands{op=erase}``.
        "copyback": (faster_report.relocations, noftl_report.relocations),
        "erase": (faster_report.erases, noftl_report.erases),
    }


def fig3_gc_overhead(workloads=("tpcc", "tpcb", "tpce"),
                     duration_us: float = 10_000_000,
                     scale: float = 1.0, seed: int = 11,
                     workers: int = 1) -> Fig3Result:
    """Record one trace per workload, replay against FASTer and NoFTL.

    ``workers > 1`` runs the per-workload record+replay comparisons
    across a process pool; results assemble in workload order, identical
    to the sequential run.
    """
    from .sweep import SweepTask, run_sweep

    tasks = [
        SweepTask(
            label=f"fig3:{name}",
            fn="repro.bench.fig3:_fig3_task",
            kwargs={"name": name, "duration_us": duration_us,
                    "scale": scale, "seed": seed},
        )
        for name in workloads
    ]
    rows: List[Fig3Row] = []
    traces: Dict[str, dict] = {}
    reports: Dict[str, dict] = {}

    def on_result(index, task, data):
        name = data["workload"]
        traces[name] = data["trace_counts"]
        reports[name] = data["report"]
        rows.append(Fig3Row(name, "COPYBACK", *data["copyback"]))
        rows.append(Fig3Row(name, "ERASE", *data["erase"]))

    run_sweep(tasks, workers=workers, on_result=on_result)
    return Fig3Result(rows, traces, reports)


def main(argv=None) -> int:
    import argparse

    from .reporting import emit, export_metrics, render_table

    parser = argparse.ArgumentParser(
        description="Figure 3: GC overhead of FASTer vs NoFTL "
                    "(trace-driven replay)"
    )
    parser.add_argument("--workload", action="append",
                        choices=tuple(WORKLOAD_LABELS), default=None,
                        help="workload(s) to replay (default: all three)")
    parser.add_argument("--duration-us", type=float, default=10_000_000)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for the per-workload "
                             "replays (1 = in-process; results are "
                             "identical either way)")
    parser.add_argument("--export", action="store_true",
                        help="write the result to $REPRO_METRICS_DIR")
    args = parser.parse_args(argv)

    workloads = tuple(args.workload) if args.workload \
        else tuple(WORKLOAD_LABELS)
    result = fig3_gc_overhead(workloads, duration_us=args.duration_us,
                              scale=args.scale, seed=args.seed,
                              workers=args.workers)
    emit(render_table(
        "Fig. 3 — GC overhead, FASTer vs NoFTL",
        ["workload", "I/O type", "FASTer", "NoFTL", "factor"],
        [[WORKLOAD_LABELS[row.workload], row.io_type,
          row.faster_absolute, row.noftl_absolute, row.relative]
         for row in result.rows],
    ))
    if args.export:
        path = export_metrics("fig3", {
            "rows": [{
                "workload": row.workload,
                "io_type": row.io_type,
                "faster": row.faster_absolute,
                "noftl": row.noftl_absolute,
                "relative": row.relative,
            } for row in result.rows],
            "traces": result.traces,
            "reports": result.reports,
        })
        print(f"fig3 snapshot: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
