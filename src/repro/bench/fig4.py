"""Experiment E2/E3 — Figure 4: transaction throughput with global vs
flash-aware (die-wise) assignment of db-writers.

Setup mirrors the figure's caption: a fixed-capacity drive re-sliced
over 1..32 NAND dies, 16 read processes, and as many db-writers as dies.
The only variable is the assignment policy:

* *global*: every db-writer draws from one shared dirty-page queue, so
  several writers routinely target the same die and queue behind each
  other (and behind the region's allocation lock);
* *die-wise*: each db-writer owns one region (= die); no two writers
  ever compete for a chip.

Paper's result: die-wise ≥ global everywhere, the gap growing with the
die count, up to 1.5x (TPC-C) / 1.43x (TPC-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import NoFTLConfig
from ..workloads import TPCB, TPCC, run_workload
from .reporting import ratio
from .rigs import (
    attach_database,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["Fig4Point", "Fig4Result", "fig4_dbwriters"]


@dataclass
class Fig4Point:
    dies: int
    policy: str
    tps: float
    dirty_eviction_stalls: int
    region_lock_waits: int


@dataclass
class Fig4Result:
    workload: str
    dies_list: List[int]
    points: List[Fig4Point] = field(default_factory=list)

    def tps_series(self, policy: str) -> List[float]:
        return [point.tps for point in self.points if point.policy == policy]

    def speedup_at(self, dies: int) -> float:
        by_policy: Dict[str, float] = {
            point.policy: point.tps
            for point in self.points if point.dies == dies
        }
        return ratio(by_policy["region"], by_policy["global"])


def _make_workload(name: str):
    # Scaled-down renditions of the figure's captions (sf=50 TPC-C,
    # sf=500 TPC-B): enough branches/warehouses that row locks never cap
    # throughput before the storage does.
    if name == "tpcc":
        return TPCC(warehouses=8, customers_per_district=30, items=100)
    if name == "tpcb":
        return TPCB(sf=16, accounts_per_branch=400)
    raise ValueError(f"unknown workload {name!r}")


def fig4_dbwriters(
    workload_name: str = "tpcc",
    dies_list: Sequence[int] = (1, 2, 4, 8, 16, 32),
    duration_us: float = 2_000_000,
    num_readers: int = 16,
    seed: int = 23,
) -> Fig4Result:
    """Sweep die counts × assignment policies; writers = dies.

    The drive is re-sized to hold the workload's footprint at ~85%
    utilization for every die count (the paper keeps a fixed 10 GB drive
    while varying dies), so flash GC stays active.  The buffer pool is
    warm (footprint-sized) and a dirty-page throttle couples transaction
    admission to db-writer cleaning throughput — Shore-MT's checkpoint /
    log-recycling back-pressure — which is exactly the channel through
    which writer-to-chip contention reaches TPS in the paper.
    """
    footprint = measure_workload_footprint(_make_workload(workload_name))
    # headroom for tables that grow during the run (orders, history)
    headroom = footprint // 2
    result = Fig4Result(workload_name, list(dies_list))
    for dies in dies_list:
        for policy in ("global", "region"):
            rig = build_noftl_rig(
                geometry=sized_geometry(footprint, dies,
                                        utilization=0.85,
                                        headroom_pages=headroom,
                                        pages_per_block=16),
                config=NoFTLConfig(num_regions=dies, op_ratio=0.12),
                seed=seed,
            )
            db = attach_database(rig,
                                 buffer_capacity=footprint + headroom,
                                 cpu_us_per_op=1.0,
                                 wal_flush_latency_us=60.0,
                                 foreground_flush=False,
                                 dirty_throttle_fraction=0.10)
            db.start_writers(dies, policy=policy)
            workload = _make_workload(workload_name)
            stats = run_workload(
                rig.sim, db, workload,
                duration_us=duration_us,
                num_terminals=num_readers,
                rng=random.Random(seed),
            )
            result.points.append(Fig4Point(
                dies=dies,
                policy=policy,
                tps=stats.tps,
                dirty_eviction_stalls=db.buffer.dirty_eviction_stalls,
                region_lock_waits=rig.storage.region_lock_contention()[
                    "total_waits"],
            ))
    return result
