"""Crash sweep — power cuts at seeded flash-op boundaries, then cold start.

The durability claim behind the paper's architecture is the sharpest one
it makes: with flash management inside the DBMS there is no FTL left to
hide behind, so *the database itself* must come back from an arbitrary
power cut with every acknowledged commit intact.  This harness proves it
by brute force.  One baseline run learns how many flash commands a
workload issues; the sweep then replays the identical run N times, each
time pulling the plug at a different seeded command boundary (torn page
or half-erased block included, courtesy of the injector's wreckage
model), and cold-starts the database from nothing but the surviving
:class:`~repro.flash.FlashArray` and the WAL prefix that was durable *at
the instant of the cut*.

Per cut point the harness checks, in order:

1. **mount integrity** — the OOB scan's rebuilt mapping/allocation state
   passes :meth:`~repro.core.NoFTLStorageManager.verify_integrity`;
2. **no torn page surfaced** — every mapped logical page reads back
   without :class:`~repro.flash.UncorrectableError`;
3. **no acknowledged commit lost** — an independent interpreter folds
   the durable log's *committed* heap records into a per-slot expected
   image and reads every slot back through the recovered database;
4. **business invariants** — the workload's own ``verify_consistency``
   (TPC-B balance sheets, TPC-C order counts);
5. **the database resumes** — fresh terminals commit new transactions on
   the recovered state and the invariants still hold afterwards.

Run from the command line (used by the CI ``crash-smoke`` job)::

    python -m repro.bench.crash --cuts 25 --check

The telemetry snapshot (``flash.power_cuts``, ``noftl.mount.*``, per-cut
verdicts) lands in ``$REPRO_METRICS_DIR/crash_<workload>.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import NoFTLConfig
from ..db import RID, cold_start
from ..flash import FaultPlan, PowerCutError, UncorrectableError
from ..ftl.base import UNMAPPED
from ..telemetry import MetricsRegistry
from ..workloads import TPCB, TPCC, run_workload
from .reporting import emit, export_metrics, render_table
from .rigs import attach_database, build_noftl_rig, sized_geometry, \
    measure_workload_footprint
from .sweep import SweepTask, run_sweep

__all__ = ["CutReport", "CrashReport", "run_crash_sweep"]

_HEAP_KINDS = ("insert", "update", "delete")


def _make_workload(name: str):
    # Deliberately smaller than the chaos sizes: a sweep replays the
    # whole run once per cut point, so the footprint is the multiplier.
    if name == "tpcc":
        return TPCC(warehouses=1, customers_per_district=12, items=48)
    if name == "tpcb":
        return TPCB(sf=2, accounts_per_branch=120)
    raise ValueError(f"unknown crash workload {name!r}")


@dataclass
class CutReport:
    """Verdict for one power-cut point."""

    cut_op: int
    fired: bool = False
    durable_lsn: int = 0
    acked_commits: int = 0
    #: mount forensics (from the cold start's OOB scan)
    torn_pages: int = 0
    duplicate_ties: int = 0
    quarantined_blocks: int = 0
    mappings: int = 0
    #: recovery forensics
    redo_applied: int = 0
    undo_applied: int = 0
    #: violations — all must stay empty / True
    integrity_errors: List[str] = field(default_factory=list)
    torn_reads: List[int] = field(default_factory=list)
    lost_slots: List[Tuple[str, int, int]] = field(default_factory=list)
    consistency_ok: bool = False
    resumed_commits: int = 0
    resumed_consistent: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return (self.fired and not self.error
                and not self.integrity_errors and not self.torn_reads
                and not self.lost_slots and self.consistency_ok
                and self.resumed_commits > 0 and self.resumed_consistent)

    def snapshot(self) -> dict:
        return {
            "cut_op": self.cut_op,
            "fired": self.fired,
            "durable_lsn": self.durable_lsn,
            "acked_commits": self.acked_commits,
            "torn_pages": self.torn_pages,
            "duplicate_ties": self.duplicate_ties,
            "quarantined_blocks": self.quarantined_blocks,
            "mappings": self.mappings,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "integrity_errors": list(self.integrity_errors),
            "torn_reads": len(self.torn_reads),
            "lost_slots": [list(key) for key in self.lost_slots[:10]],
            "consistency_ok": self.consistency_ok,
            "resumed_commits": self.resumed_commits,
            "resumed_consistent": self.resumed_consistent,
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class CrashReport:
    """Outcome of one full sweep."""

    workload: str
    seed: int
    baseline_commits: int = 0
    baseline_ops: int = 0
    load_ops: int = 0
    cuts: List[CutReport] = field(default_factory=list)
    telemetry: Optional[MetricsRegistry] = None

    @property
    def ok(self) -> bool:
        return bool(self.cuts) and all(cut.ok for cut in self.cuts)

    def snapshot(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "baseline_commits": self.baseline_commits,
            "baseline_ops": self.baseline_ops,
            "load_ops": self.load_ops,
            "cuts": [cut.snapshot() for cut in self.cuts],
            "cuts_total": len(self.cuts),
            "cuts_failed": sum(1 for cut in self.cuts if not cut.ok),
            "ok": self.ok,
        }


def _committed_slot_image(durable, committed):
    """Fold the durable committed heap records into ``(heap, page, slot)
    -> expected bytes`` (``None`` = expected absent) plus the final
    committed owner heap of every page id.

    This is the harness's *independent* oracle: it never consults the
    recovery code under test, only the log semantics — insert/update set
    the slot to the after-image, delete clears it, last committed record
    wins.  Loser records are ignored on purpose: recovery must undo them
    back to exactly these committed values (before-image chains bottom
    out at the last committed write under strict 2PL).

    The owner map handles recycled page ids: a page one heap emptied,
    released and another heap re-grew holds the *new* owner's rows, so
    the old heap's expected-absent slots are vacuous there.
    """
    slots: Dict[tuple, object] = {}
    owner: Dict[int, str] = {}
    for record in durable:
        if record.kind not in _HEAP_KINDS:
            continue
        if record.txn_id not in committed:
            continue
        key = (record.payload[0], record.payload[1], record.payload[2])
        slots[key] = None if record.kind == "delete" else record.payload[3]
        owner[record.payload[1]] = record.payload[0]
    return slots, owner


def _build_rig(workload_name: str, geometry, seed: int, telemetry,
               fault_plan=None, num_writers: int = 4,
               footprint: int = 0):
    """One deterministic testbed; identical construction order on every
    call so a cut run replays the baseline's flash-command sequence
    exactly until the plug is pulled."""
    rig = build_noftl_rig(
        geometry=geometry,
        config=NoFTLConfig(num_regions=8, op_ratio=0.28),
        seed=seed,
        telemetry=telemetry,
        fault_plan=fault_plan,
        store_data=True,
    )
    db = attach_database(rig, buffer_capacity=max(64, footprint // 8),
                         foreground_flush=False)
    db.wal.keep_records = True
    rig.sim.run_process(_make_workload(workload_name).load(db))
    load_ops = rig.array.fault_injector.ops
    db.start_writers(num_writers, policy="region")
    return rig, db, load_ops


def _run_one_cut(workload_name: str, geometry, footprint: int, seed: int,
                 cut_op: int, duration_us: float, resume_us: float,
                 num_terminals: int, telemetry) -> CutReport:
    report = CutReport(cut_op=cut_op)
    plan = FaultPlan.power_cut_at(cut_op, seed=seed)
    rig, db, __ = _build_rig(workload_name, geometry, seed, telemetry,
                             fault_plan=plan, footprint=footprint)

    # Snapshot the durable WAL prefix at the instant the power dies —
    # the log lives on a separate device, so nothing that happens while
    # the doomed run unwinds may leak into what recovery gets to see.
    at_cut: dict = {}

    def on_cut(command):
        at_cut["durable_lsn"] = db.wal.flushed_lsn
        at_cut["records"] = list(db.wal.records)

    rig.array.on_power_cut = on_cut
    try:
        run_workload(rig.sim, db, _make_workload(workload_name),
                     duration_us=duration_us, num_terminals=num_terminals,
                     rng=random.Random(seed), preloaded=True)
    except PowerCutError:
        pass
    if not at_cut:
        report.error = "cut point never reached"
        return report
    report.fired = True
    report.durable_lsn = at_cut["durable_lsn"]
    durable = [r for r in at_cut["records"]
               if r.lsn <= report.durable_lsn]
    committed = {r.txn_id for r in durable if r.kind == "commit"}
    report.acked_commits = len(committed)

    # -- cold start: array + durable WAL are the only inputs --------------
    workload = _make_workload(workload_name)
    try:
        boot = cold_start(
            rig.array, geometry, durable, report.durable_lsn,
            workload.declare_schema,
            config=NoFTLConfig(num_regions=8, op_ratio=0.28),
            buffer_capacity=max(64, footprint // 8),
            telemetry=telemetry,
            db_kwargs={"foreground_flush": False},
        )
    except Exception as exc:  # a crash here IS the bug being hunted
        report.error = f"cold start failed: {exc!r}"
        return report
    report.torn_pages = boot.mount.torn_pages
    report.duplicate_ties = boot.mount.duplicate_ties
    report.quarantined_blocks = len(boot.mount.quarantined_blocks)
    report.mappings = boot.mount.mappings
    report.redo_applied = boot.recovery.redo_applied
    report.undo_applied = boot.recovery.undo_applied

    # -- check 1: mapping/allocation invariants ---------------------------
    report.integrity_errors = boot.manager.verify_integrity()

    # -- check 2: every mapped page is readable (no torn page surfaced) ---
    def readback():
        mapping = boot.manager.mapping
        for lpn in range(len(mapping.l2p)):
            if mapping.l2p[lpn] == UNMAPPED:
                continue
            try:
                yield from boot.storage.read(lpn)
            except UncorrectableError:
                report.torn_reads.append(lpn)

    boot.sim.run_process(readback())

    # -- check 3: no acknowledged-committed slot lost ---------------------
    expected, page_owner = _committed_slot_image(durable, committed)

    def check_slots():
        txn = boot.db.begin()
        for (heap_name, page_id, slot), want in sorted(expected.items()):
            if want is None and page_owner.get(page_id) != heap_name:
                # The page moved to another heap after this slot's
                # delete committed; absence here is vacuously true.
                continue
            heap = boot.db.heaps.get(heap_name)
            if heap is None:
                report.lost_slots.append((heap_name, page_id, slot))
                continue
            try:
                raw = yield from heap.read(txn, RID(page_id, slot),
                                           acquire_lock=False)
            except KeyError:
                raw = None
            except UncorrectableError:
                report.torn_reads.append(page_id)
                continue
            if raw != want:
                report.lost_slots.append((heap_name, page_id, slot))
        yield from boot.db.commit(txn)

    boot.sim.run_process(check_slots())

    # -- check 4: business invariants -------------------------------------
    report.consistency_ok = bool(
        boot.sim.run_process(workload.verify_consistency(boot.db))
    )

    # -- check 5: the recovered database takes new traffic ----------------
    try:
        boot.db.start_writers(4, policy="region")
        stats = run_workload(boot.sim, boot.db, workload,
                             duration_us=resume_us,
                             num_terminals=num_terminals,
                             rng=random.Random(seed + cut_op),
                             preloaded=True)
        report.resumed_commits = stats.commits
        report.resumed_consistent = bool(
            boot.sim.run_process(workload.verify_consistency(boot.db))
        )
    except Exception as exc:
        report.error = f"resume failed: {exc!r}"
    return report


def _cut_task(workload_name: str, geometry, footprint: int, seed: int,
              cut_op: int, duration_us: float, resume_us: float,
              num_terminals: int) -> Tuple[MetricsRegistry, CutReport]:
    """One power-cut audit against a fresh registry (sweep task body).

    This is the unit :func:`~repro.bench.sweep.run_sweep` dispatches —
    in-process for ``workers=1``, in a pool worker otherwise.  The fresh
    registry is what makes the parallel merge byte-identical to a
    sequential sweep: both modes produce the same per-cut registries and
    the parent folds them into its master in the same cut order.
    """
    registry = MetricsRegistry()
    report = _run_one_cut(workload_name, geometry, footprint, seed, cut_op,
                          duration_us, resume_us, num_terminals, registry)
    return registry, report


def run_crash_sweep(
    workload_name: str = "tpcb",
    cuts: int = 10,
    seed: int = 7,
    duration_us: float = 120_000.0,
    resume_us: float = 40_000.0,
    num_terminals: int = 8,
    telemetry: Optional[MetricsRegistry] = None,
    workers: int = 1,
) -> CrashReport:
    """Baseline run → N seeded cut points → cold start + audits per cut.

    ``workers > 1`` fans the (fully independent) cut audits out over a
    process pool; per-cut telemetry merges back into the master registry
    in cut order, so report and telemetry are byte-identical to a
    ``workers=1`` sweep.
    """
    telemetry = telemetry or MetricsRegistry()
    report = CrashReport(workload=workload_name, seed=seed,
                         telemetry=telemetry)

    workload = _make_workload(workload_name)
    footprint = measure_workload_footprint(workload)
    geometry = sized_geometry(footprint, dies=8, utilization=0.8,
                              op_ratio=0.28,
                              headroom_pages=footprint // 2)

    # -- baseline: learn the run's flash-command span ---------------------
    rig, db, load_ops = _build_rig(workload_name, geometry, seed,
                                   telemetry, footprint=footprint)
    stats = run_workload(rig.sim, db, _make_workload(workload_name),
                         duration_us=duration_us,
                         num_terminals=num_terminals,
                         rng=random.Random(seed), preloaded=True)
    report.baseline_commits = stats.commits
    report.load_ops = load_ops
    report.baseline_ops = rig.array.fault_injector.ops
    if report.baseline_ops <= load_ops + 1:
        raise RuntimeError("workload issued no flash commands to cut")

    # Seeded sweep points, strictly after the initial load (a database
    # that never finished loading has no commits to lose — and no schema
    # for the terminals to resume against).
    span = range(load_ops + 1, report.baseline_ops)
    rng = random.Random(seed)
    if len(span) <= cuts:
        cut_ops = list(span)
    else:
        cut_ops = sorted(rng.sample(span, cuts))

    tasks = [
        SweepTask(
            label=f"{workload_name}@op{cut_op}",
            fn="repro.bench.crash:_cut_task",
            kwargs={
                "workload_name": workload_name,
                "geometry": geometry,
                "footprint": footprint,
                "seed": seed,
                "cut_op": cut_op,
                "duration_us": duration_us,
                "resume_us": resume_us,
                "num_terminals": num_terminals,
            },
        )
        for cut_op in cut_ops
    ]

    def on_result(index, task, result):
        # Runs in the parent, in cut order, regardless of worker count:
        # the merge sequence (and the progress lines) are deterministic.
        cut_registry, cut = result
        telemetry.merge_from(cut_registry)
        report.cuts.append(cut)
        verdict = "ok" if cut.ok else "FAILED"
        emit(f"  cut @ op {cut.cut_op}: durable_lsn={cut.durable_lsn} "
             f"acked={cut.acked_commits} torn={cut.torn_pages} "
             f"resumed={cut.resumed_commits} [{verdict}]")

    run_sweep(tasks, workers=workers, on_result=on_result)

    telemetry.register_collector(f"crash.{workload_name}",
                                 report.snapshot)
    return report


def _print_report(report: CrashReport) -> None:
    rows = [
        (cut.cut_op, cut.durable_lsn, cut.acked_commits, cut.torn_pages,
         cut.quarantined_blocks, cut.redo_applied, cut.undo_applied,
         cut.resumed_commits, "ok" if cut.ok else "FAILED")
        for cut in report.cuts
    ]
    emit(render_table(
        f"crash sweep — {report.workload} (seed {report.seed}, "
        f"baseline {report.baseline_commits} commits over "
        f"{report.baseline_ops} flash ops)",
        ["cut op", "durable lsn", "acked", "torn", "quar", "redo",
         "undo", "resumed", "verdict"],
        rows,
    ))


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Power-cut sweep: cold-start recovery audit on NoFTL"
    )
    parser.add_argument("--workload", default="all",
                        choices=("tpcc", "tpcb", "all"))
    parser.add_argument("--cuts", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration-us", type=float, default=120_000.0)
    parser.add_argument("--resume-us", type=float, default=40_000.0)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for the cut audits "
                             "(1 = in-process; output is byte-identical "
                             "either way)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any cut point fails")
    parser.add_argument("--export", action="store_true",
                        help="write telemetry snapshots to "
                             "$REPRO_METRICS_DIR")
    args = parser.parse_args(argv)

    names = ("tpcb", "tpcc") if args.workload == "all" \
        else (args.workload,)
    failed = False
    for name in names:
        report = run_crash_sweep(
            workload_name=name, cuts=args.cuts, seed=args.seed,
            duration_us=args.duration_us, resume_us=args.resume_us,
            workers=args.workers,
        )
        _print_report(report)
        if args.export:
            path = export_metrics(f"crash_{name}", report.telemetry,
                                  extra=report.snapshot())
            print(f"telemetry snapshot: {path}")
        if report.ok:
            print(f"{name}: {len(report.cuts)} cuts survived — no "
                  f"acknowledged commit lost, no torn page surfaced")
        else:
            bad = [c.cut_op for c in report.cuts if not c.ok]
            print(f"{name}: CRASH SWEEP FAILED at cut ops {bad}")
            failed = True
    if args.check and failed:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
