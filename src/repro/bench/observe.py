"""Causal-tracing dashboard: where do the tail latencies come from?

``python -m repro.bench.observe`` runs a fixed-seed TPC-B rig per
architecture (``--arch faster --arch noftl``), records every host
operation and flash command to a JSONL trace, then *loads the trace
back* and renders the attribution report from the file alone — the same
code path as ``--from-trace``, so any number in the dashboard is
reproducible later without re-running the rig.

The report per architecture:

* **origin mix** — flash commands by root cause (txn / db-writer / gc /
  merge / wear-level / ...), with a zero-missing-origin check;
* **blame decomposition** — p99 (and p99.9) write and commit latency
  split into media, queue-behind-GC, queue-other, inline GC, retry, WAL
  and residual time (:func:`repro.telemetry.blame_breakdown`);
* **windowed series** — throughput, per-die busy fraction and
  maintenance activity over time (die-utilization skew under global vs
  die-wise writer assignment is visible here);
* **span rollup** — flamegraph-style inclusive time by span path
  (``log.reclaim;merge.full`` etc.).

``--check`` turns the paper's qualitative claim into an exit code: the
black-box FTL's p99 write tail must carry a strictly larger GC-blamed
component than NoFTL's, and every flash command must carry an origin.
"""

from __future__ import annotations

import argparse
import json
import os
import random
from typing import Dict, List, Optional

from ..core import NoFTLConfig
from ..telemetry import (
    EventTrace,
    blame_breakdown,
    load_jsonl,
    origin_mix,
    span_rollup,
    verify_origins,
    windowed_series,
)
from ..workloads import TPCB, run_workload
from .reporting import (
    DEFAULT_METRICS_DIR,
    emit,
    export_metrics,
    render_table,
)
from .rigs import (
    attach_database,
    build_blockdev_rig,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)

__all__ = ["run_arch", "analyze_trace", "render_report", "main"]

ARCHES = ("noftl", "faster", "pagemap", "dftl")


def _make_workload():
    # Same scaled-down TPC-B rendition as the Figure 4 bench.
    return TPCB(sf=16, accounts_per_branch=400)


def run_arch(
    arch: str,
    trace_path: str,
    seed: int = 23,
    duration_us: float = 1_500_000.0,
    dies: int = 8,
    terminals: int = 16,
    policy: str = "region",
) -> dict:
    """Run one architecture's TPC-B rig, streaming the trace to JSONL.

    Returns run-level facts (tps, commits, dies) — the analysis itself
    is done from the trace file so it stays replayable.
    """
    if arch not in ARCHES:
        raise ValueError(f"unknown arch {arch!r}; pick from {ARCHES}")
    workload = _make_workload()
    footprint = measure_workload_footprint(workload)
    headroom = footprint // 2
    geometry = sized_geometry(footprint, dies, utilization=0.85,
                              headroom_pages=headroom, pages_per_block=16)
    with open(trace_path, "w", encoding="utf-8") as sink:
        trace = EventTrace(capacity=8192, sink=sink)
        if arch == "noftl":
            rig = build_noftl_rig(
                geometry=geometry,
                config=NoFTLConfig(num_regions=dies, op_ratio=0.12),
                seed=seed,
                trace=trace,
            )
            writer_policy = policy
        else:
            rig = build_blockdev_rig(arch, geometry=geometry, seed=seed,
                                     trace=trace)
            # One opaque region: die-wise assignment is impossible, which
            # is the point of the black-box comparison.
            writer_policy = "global"
        db = attach_database(rig,
                             buffer_capacity=footprint + headroom,
                             cpu_us_per_op=1.0,
                             wal_flush_latency_us=60.0,
                             foreground_flush=False,
                             dirty_throttle_fraction=0.10)
        db.start_writers(dies, policy=writer_policy)
        stats = run_workload(rig.sim, db, _make_workload(),
                             duration_us=duration_us,
                             num_terminals=terminals,
                             rng=random.Random(seed))
        # Detach before closing: DES processes parked mid-GC finalize
        # lazily and would otherwise emit span ends into a closed file.
        trace.enabled = False
        trace.sink = None
    return {
        "arch": arch,
        "policy": writer_policy,
        "seed": seed,
        "dies": dies,
        "duration_us": duration_us,
        "tps": stats.tps,
        "commits": stats.commits,
        "trace_path": trace_path,
        "trace_events": trace.emitted,
    }


def analyze_trace(path: str, window_us: float = 100_000.0) -> dict:
    """Build the full attribution report from a saved JSONL trace."""
    events = load_jsonl(path)
    return {
        "trace_path": path,
        "events": len(events),
        "origins": verify_origins(events),
        "origin_mix": origin_mix(events),
        "write_blame": blame_breakdown(events, op="write"),
        "commit_blame": blame_breakdown(events, op="commit"),
        "series": windowed_series(events, window_us=window_us),
        "spans": span_rollup(events)[:12],
    }


def _fmt(value: float) -> str:
    return f"{value:,.1f}"


def render_report(arch: str, run: Optional[dict], report: dict) -> None:
    """Text dashboard for one architecture."""
    header = f"== {arch} =="
    if run is not None:
        header += (f"  tps={run['tps']:.1f} commits={run['commits']}"
                   f" policy={run['policy']} dies={run['dies']}")
    emit(header)
    origins = report["origins"]
    emit(f"flash commands: {origins['flash_cmds']}"
         f" (missing origin: {origins['missing_origin']})")
    mix = report["origin_mix"]
    if mix:
        emit(render_table(
            "origin mix (flash commands by root cause)",
            ["origin", "commands"],
            [[origin, str(count)]
             for origin, count in sorted(mix.items(),
                                         key=lambda kv: -kv[1])],
        ))
    for name in ("write_blame", "commit_blame"):
        blame = report[name]
        if not blame.get("count"):
            continue
        emit(f"{blame['op']}: n={blame['count']}"
             f" p50={_fmt(blame['p50_us'])}us"
             f" p99={_fmt(blame['p99_us'])}us"
             f" p99.9={_fmt(blame['p999_us'])}us"
             f" | tail GC-blamed {_fmt(blame['gc_blamed_us'])}us"
             f" ({blame['shares']['gc_us'] + blame['shares']['queue_gc_us']:.0%})")
        emit(render_table(
            f"p99 {blame['op']} blame (mean us over tail samples)",
            ["bucket", "all ops", "tail"],
            [[bucket, _fmt(blame["buckets"][bucket]),
              _fmt(blame["tail_buckets"][bucket])]
             for bucket in blame["tail_buckets"]],
        ))
    series = report["series"]
    if series["die_busy"]:
        rows = []
        for die, fractions in series["die_busy"].items():
            mean = sum(fractions) / len(fractions) if fractions else 0.0
            spark = "".join(
                " .:-=+*#"[min(7, int(f * 8))] for f in fractions[:48]
            )
            rows.append([str(die), f"{mean:.2f}", spark])
        emit(render_table(
            f"per-die busy fraction ({series['window_us']:.0f}us windows)",
            ["die", "mean", "timeline"],
            rows,
        ))
    if report["spans"]:
        emit(render_table(
            "span rollup (inclusive time by path)",
            ["path", "count", "total us", "mean us"],
            [[s["path"], str(s["count"]), _fmt(s["total_us"]),
              _fmt(s["mean_us"])] for s in report["spans"]],
        ))


def run_checks(reports: Dict[str, dict], dies: int) -> List[str]:
    """The acceptance assertions; returns a list of failure strings."""
    failures = []
    for arch, report in reports.items():
        origins = report["origins"]
        if origins["flash_cmds"] == 0:
            failures.append(f"{arch}: trace carries no flash commands")
        if origins["missing_origin"]:
            failures.append(
                f"{arch}: {origins['missing_origin']} flash commands"
                " without an origin label"
            )
    if "noftl" in reports:
        die_series = reports["noftl"]["series"]["die_busy"]
        if len(die_series) != dies:
            failures.append(
                f"noftl: per-die series covers {len(die_series)} dies,"
                f" expected {dies}"
            )
    if "faster" in reports and "noftl" in reports:
        faster_gc = reports["faster"]["write_blame"].get("gc_blamed_us", 0.0)
        noftl_gc = reports["noftl"]["write_blame"].get("gc_blamed_us", 0.0)
        if not faster_gc > noftl_gc:
            failures.append(
                "FASTer's p99 write GC-blamed component"
                f" ({faster_gc:.1f}us) is not strictly larger than"
                f" NoFTL's ({noftl_gc:.1f}us)"
            )
        if faster_gc <= 0:
            failures.append("FASTer shows no GC-blamed write latency")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.observe",
        description="Causal tracing and tail-latency attribution dashboard",
    )
    parser.add_argument("--arch", action="append", choices=ARCHES,
                        help="architecture(s) to run (repeatable);"
                             " default: faster noftl")
    parser.add_argument("--policy", default="region",
                        choices=("region", "global"),
                        help="db-writer assignment for the NoFTL rig")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--duration-us", type=float, default=1_500_000.0)
    parser.add_argument("--dies", type=int, default=8)
    parser.add_argument("--terminals", type=int, default=16)
    parser.add_argument("--window-us", type=float, default=100_000.0)
    parser.add_argument("--trace-dir", default=None,
                        help="where run traces are written (default: "
                             "REPRO_METRICS_DIR or benchmarks/out)")
    parser.add_argument("--from-trace", action="append", default=[],
                        metavar="ARCH=PATH",
                        help="skip the rig: analyze a saved JSONL trace")
    parser.add_argument("--export", action="store_true",
                        help="write the JSON artifact via REPRO_METRICS_DIR")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the attribution"
                             " acceptance assertions hold")
    args = parser.parse_args(argv)

    runs: Dict[str, Optional[dict]] = {}
    traces: Dict[str, str] = {}
    for item in args.from_trace:
        arch, sep, path = item.partition("=")
        if not sep:
            parser.error(f"--from-trace wants ARCH=PATH, got {item!r}")
        traces[arch] = path
        runs[arch] = None
    arches = args.arch or (["faster", "noftl"] if not traces else [])
    if args.trace_dir is None:
        args.trace_dir = os.environ.get("REPRO_METRICS_DIR",
                                        DEFAULT_METRICS_DIR)
    if arches:
        os.makedirs(args.trace_dir, exist_ok=True)
    for arch in arches:
        if arch in traces:
            continue
        path = os.path.join(args.trace_dir, f"observe-{arch}.trace.jsonl")
        emit(f"running {arch} rig (seed={args.seed},"
             f" {args.duration_us:.0f}us)...")
        runs[arch] = run_arch(
            arch, path, seed=args.seed, duration_us=args.duration_us,
            dies=args.dies, terminals=args.terminals, policy=args.policy,
        )
        traces[arch] = path

    reports: Dict[str, dict] = {}
    for arch, path in traces.items():
        reports[arch] = analyze_trace(path, window_us=args.window_us)
        render_report(arch, runs.get(arch), reports[arch])

    failures = run_checks(reports, args.dies) if args.check else []
    payload = {
        "runs": {arch: run for arch, run in runs.items() if run},
        "reports": reports,
        "checks": {"failures": failures, "passed": not failures},
    }
    if args.export:
        out = export_metrics("observe", payload)
        emit(f"artifact: {out}")
    else:
        emit(json.dumps(payload["checks"]))
    for failure in failures:
        emit(f"CHECK FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
