"""On-device FTL baselines (and the shared page-mapped space that NoFTL
reuses in the host).

* :class:`PageMapFTL` — pure page-level mapping, fully cached (ideal);
* :class:`DFTL` — demand-cached page mapping (Gupta et al., ASPLOS'09);
* :class:`LazyFTL` — lazy batch-persisted page mapping (Ma et al.,
  SIGMOD'11);
* :class:`FASTer` — hybrid log-block mapping with second chance
  (Lim et al., SNAPI'10);
* :class:`BlockMapFTL` — classic block mapping (worst-case anchor).
"""

from .base import UNMAPPED, BaseFTL, BlockPool, FTLStats, MappingState, relocate_page
from .blockmap import BlockMapFTL
from .dftl import DFTL
from .faster import FASTer
from .lazyftl import LazyFTL
from .pagemap import PageMapFTL
from .pagespace import PageMappedSpace

__all__ = [
    "UNMAPPED",
    "BaseFTL",
    "BlockPool",
    "FTLStats",
    "MappingState",
    "relocate_page",
    "BlockMapFTL",
    "DFTL",
    "FASTer",
    "LazyFTL",
    "PageMapFTL",
    "PageMappedSpace",
]
