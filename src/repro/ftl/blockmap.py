"""Classic block-mapping FTL — the historical worst-case baseline.

One mapping entry per *logical block*; a page update that cannot append in
place forces a read-modify-write of the whole block.  Kept as the lower
anchor of the FTL spectrum the related-work section spans (page-, block-
and hybrid-mapping FTLs).

State is flat: the lbn -> pbn table and per-block fill marks are typed
arrays, the per-page written flags one bytearray bitmap over the logical
page space — the same representation the page-mapped engine uses.
"""

from __future__ import annotations

import random
from array import array as _array
from collections import deque
from typing import Deque, Iterable, Optional

from ..flash.commands import (
    EraseBlock,
    ProgramPage,
    stamp_context,
    tag_commands,
)
from ..flash.errors import BlockWornOut
from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry, OpContext
from .base import UNMAPPED, BaseFTL, read_page_with_retry, relocate_page

__all__ = ["BlockMapFTL"]


class BlockMapFTL(BaseFTL):
    """lbn -> pbn mapping with read-modify-write on out-of-order updates."""

    def __init__(
        self,
        geometry: Geometry,
        op_ratio: float = 0.1,
        bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        super().__init__(geometry, op_ratio, telemetry=telemetry, trace=trace)
        pages_per_block = geometry.pages_per_block
        # Export whole blocks only.
        self.logical_blocks = self.logical_pages // pages_per_block
        self.logical_pages = self.logical_blocks * pages_per_block
        bad = set(bad_blocks)
        self._free: Deque[int] = deque(
            pbn for pbn in range(geometry.total_blocks) if pbn not in bad
        )
        self._rng = rng or random.Random(0)
        self.block_map = _array("q", [UNMAPPED]) * self.logical_blocks
        # High-water mark of programmed pages per mapped physical block;
        # pages below it hold data (valid unless rewritten => whole-block RMW).
        self._fill = _array("l", [0]) * self.logical_blocks
        # Written bitmap over the logical page space (a page may be skipped).
        self._written = bytearray(self.logical_pages)

    def read(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        lbn, offset = divmod(lpn, self.geometry.pages_per_block)
        pbn = self.block_map[lbn]
        if pbn == UNMAPPED or not self._written[lpn]:
            return None
        result, __ = yield from read_page_with_retry(
            self.geometry.ppn_of(pbn, offset),
            stats=self.stats, counter=self._tm_read_retries,
        )
        return result.data

    def write(self, lpn: int, data=None):
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        lbn, offset = divmod(lpn, self.geometry.pages_per_block)
        pbn = self.block_map[lbn]
        if pbn == UNMAPPED:
            pbn = self._take_block()
            self.block_map[lbn] = pbn
            self._fill[lbn] = 0
        if offset >= self._fill[lbn]:
            # Appending in ascending order is allowed in place.
            yield ProgramPage(ppn=self.geometry.ppn_of(pbn, offset), data=data, oob={"lpn": lpn})
            self._fill[lbn] = offset + 1
            self._written[lpn] = 1
            return
        # Rewrite below the high-water mark: whole-block read-modify-write.
        # The triggering program is host work, but the block relocation it
        # forces is FTL maintenance — tagged "merge" so the attribution
        # engine can blame it for the latency it induces.
        yield from tag_commands(self._rewrite_block(lbn, pbn, offset, data), OpContext("merge"))

    def _rewrite_block(self, lbn: int, old_pbn: int, offset: int, data):
        new_pbn = self._take_block()
        pages_per_block = self.geometry.pages_per_block
        base = lbn * pages_per_block
        new_written = bytearray(pages_per_block)
        high = 0
        for page in range(pages_per_block):
            dst = self.geometry.ppn_of(new_pbn, page)
            if page == offset:
                # The page the host actually asked to write: pre-stamped
                # host-class so the surrounding "merge" tag (and the WA
                # ledger) charges only the *forced* relocations to
                # maintenance, not the host's own logical write.  The
                # executor adopts this chain under the live request.
                yield stamp_context(
                    ProgramPage(ppn=dst, data=data, oob={"lpn": base + page}),
                    OpContext("host"),
                )
                new_written[page] = 1
                high = page + 1
            elif self._written[base + page]:
                src = self.geometry.ppn_of(old_pbn, page)
                ok = yield from relocate_page(self.geometry, src, dst, self.stats)
                if not ok:
                    self._tm_relocation_skips.inc()
                    continue  # unreadable source: recorded, page dropped
                new_written[page] = 1
                high = page + 1
        self.block_map[lbn] = new_pbn
        self._written[base:base + pages_per_block] = new_written
        self._fill[lbn] = high
        try:
            yield EraseBlock(pbn=old_pbn)
            self.stats.gc_erases += 1
            self._free.append(old_pbn)
        except BlockWornOut:
            self.stats.grown_bad_blocks += 1

    def _take_block(self) -> int:
        if not self._free:
            raise RuntimeError("block-map FTL out of free blocks")
        return self._free.popleft()

    def is_fast_read(self, lpn: int) -> bool:
        return True

    def health_snapshot(self) -> dict:
        out = super().health_snapshot()
        out["free_blocks"] = len(self._free)
        return out
