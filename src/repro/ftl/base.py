"""Common FTL machinery: the host-visible interface, I/O accounting,
mapping state and free-block pools.

All FTLs in this package (and the NoFTL storage manager built on the same
parts) express flash access as command-yielding generators — see
:mod:`repro.flash.executor`.
"""

from __future__ import annotations

from array import array as _array
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from ..flash.commands import Copyback, Pause, ProgramPage, ReadPage
from ..flash.errors import DieOutageError, UncorrectableError
from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry

__all__ = [
    "FTLStats",
    "BaseFTL",
    "MappingState",
    "BlockPool",
    "VictimBuckets",
    "relocate_page",
    "read_page_with_retry",
    "UNMAPPED",
]

UNMAPPED = -1


@dataclass
class FTLStats:
    """Counts every class of I/O an FTL causes.

    ``gc_relocations`` is the number of valid pages moved by garbage
    collection / merges, regardless of mechanism; ``gc_copybacks`` is the
    subset done by COPYBACK (no bus transfer).  Together with ``erases``
    these are exactly the two rows of the paper's Figure 3 table.
    """

    host_reads: int = 0
    host_writes: int = 0
    host_trims: int = 0
    gc_relocations: int = 0
    gc_copybacks: int = 0
    gc_reads: int = 0
    gc_programs: int = 0
    gc_erases: int = 0
    map_reads: int = 0       # DFTL: translation-page reads
    map_programs: int = 0    # DFTL: translation-page programs
    merges_full: int = 0     # FASTer
    merges_switch: int = 0   # FASTer
    merges_partial: int = 0  # FASTer
    second_chances: int = 0  # FASTer isolation-area migrations
    wl_moves: int = 0
    grown_bad_blocks: int = 0
    read_retries: int = 0    # reads that needed another attempt (ECC/outage)
    scrubs: int = 0          # pages relocated after a retried read
    program_remaps: int = 0  # in-flight writes remapped after ProgramError
    relocation_skips: int = 0  # GC/merge pages skipped as unreadable
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def total_relocation_ios(self) -> int:
        """All page movements caused by maintenance, in copyback units."""
        return self.gc_relocations

    @property
    def write_amplification(self) -> float:
        """(host + maintenance page programs) / host page programs."""
        if self.host_writes == 0:
            return 0.0
        moved = self.gc_relocations + self.map_programs
        return (self.host_writes + moved) / self.host_writes

    def snapshot(self) -> dict:
        data = {
            name: getattr(self, name)
            for name in (
                "host_reads", "host_writes", "host_trims",
                "gc_relocations", "gc_copybacks", "gc_reads", "gc_programs",
                "gc_erases", "map_reads", "map_programs",
                "merges_full", "merges_switch", "merges_partial",
                "second_chances", "wl_moves", "grown_bad_blocks",
                "read_retries", "scrubs", "program_remaps",
                "relocation_skips",
            )
        }
        data["write_amplification"] = self.write_amplification
        return data


class BaseFTL:
    """Host-visible FTL interface: read / write / trim over logical pages.

    Subclasses implement the three operations as flash-command generators.
    ``logical_pages`` is the exported logical address space — total flash
    minus over-provisioning.
    """

    def __init__(self, geometry: Geometry, op_ratio: float = 0.1,
                 telemetry: Optional[MetricsRegistry] = None,
                 trace: Optional[EventTrace] = None):
        if not 0.0 < op_ratio < 0.9:
            raise ValueError(f"op_ratio must be in (0, 0.9), got {op_ratio}")
        self.geometry = geometry
        self.op_ratio = op_ratio
        self.logical_pages = int(geometry.total_pages * (1.0 - op_ratio))
        self.stats = FTLStats()
        # Telemetry: shared registry/trace when the rig provides them,
        # private ones otherwise, so instrumentation is always live.  The
        # collector exposes the classic FTLStats counters in snapshots.
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = trace if trace is not None else EventTrace(clock=self.telemetry.now)
        self.telemetry.register_collector(f"ftl.{type(self).__name__}", self.stats.snapshot)
        # Shared recovery counters: every FTL's read path retries through
        # these, so chaos dashboards see one family per layer.
        self._tm_read_retries = self.telemetry.counter("ftl.read_retries", layer="ftl")
        self._tm_relocation_skips = self.telemetry.counter("ftl.gc.relocation_skips", layer="ftl")

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def maintenance_active(self) -> bool:
        """True while this FTL is running maintenance (GC, merges, wear
        leveling) that host commands could queue behind.  The block device
        uses this to classify controller/queue waits as GC-blamed in the
        latency attribution; FTLs with real maintenance override it."""
        return False

    def health_snapshot(self) -> dict:
        """Per-FTL contribution to the device health report
        (``python -m repro.bench.health``): the classic stats counters —
        the spot-check the WA ledger's numbers are cross-validated
        against.  Subclasses extend with their own state (log occupancy,
        map-cache hit ratio, ...)."""
        return {"ftl": self.name, "stats": self.stats.snapshot()}

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"lpn {lpn} outside logical space 0..{self.logical_pages - 1}")

    def read(self, lpn: int):  # pragma: no cover - interface
        raise NotImplementedError

    def write(self, lpn: int, data=None):  # pragma: no cover - interface
        raise NotImplementedError

    def trim(self, lpn: int):
        """Deallocation hint; base implementation ignores it (black-box
        SSDs of the paper's era commonly did).  Yields nothing."""
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        return
        yield  # pragma: no cover - makes this a generator


class MappingState:
    """Page-level mapping tables plus validity bookkeeping.

    One instance is shared by all allocation domains (planes / regions) of
    a page-mapped space:

    * ``l2p``: logical -> physical page (UNMAPPED when never written);
    * ``p2l``: physical -> logical (UNMAPPED when the page is invalid);
    * ``valid_in_block``: number of valid pages per physical block;
    * ``block_write_time``: logical timestamp of each block's last program
      (for cost-benefit GC);
    * ``lpn_class``: optional per-lpn data-class code table (write
      streams only — see :mod:`repro.ftl.streams`), None until
      :meth:`enable_class_tracking` so legacy rigs pay nothing.
    """

    def __init__(self, geometry: Geometry, logical_pages: int):
        self.geometry = geometry
        self.logical_pages = logical_pages
        self.l2p = _array("q", [UNMAPPED]) * logical_pages
        self.p2l = _array("q", [UNMAPPED]) * geometry.total_pages
        self.valid_in_block = _array("l", [0]) * geometry.total_blocks
        self.block_write_time = _array("q", [0]) * geometry.total_blocks
        self.clock = 0
        self.lpn_class: Optional[bytearray] = None
        self._pages_per_block = geometry.pages_per_block
        #: Per-block watcher slot: a :class:`VictimBuckets` instance (or
        #: None) notified whenever the block's valid count changes, so GC
        #: victim structures track validity at O(1) per bind/invalidate.
        #: Blocks of different allocation domains (planes, regions) are
        #: disjoint, so one flat slot array serves every space sharing
        #: this mapping.
        self.block_watch: List[Optional["VictimBuckets"]] = [None] * geometry.total_blocks

    def enable_class_tracking(self) -> None:
        """Allocate the per-lpn class table (write-streams mode).  Codes
        are :data:`repro.ftl.streams.CLASS_CODES`; 0 means untracked."""
        if self.lpn_class is None:
            self.lpn_class = bytearray(self.logical_pages)

    def lookup(self, lpn: int) -> int:
        return self.l2p[lpn]

    def bind(self, lpn: int, ppn: int) -> None:
        """Point ``lpn`` at ``ppn``, invalidating any previous location."""
        old = self.l2p[lpn]
        if old != UNMAPPED:
            self.invalidate_ppn(old)
        self.l2p[lpn] = ppn
        self.p2l[ppn] = lpn
        pbn = ppn // self._pages_per_block
        valid = self.valid_in_block[pbn] + 1
        self.valid_in_block[pbn] = valid
        self.clock += 1
        self.block_write_time[pbn] = self.clock
        watcher = self.block_watch[pbn]
        if watcher is not None:
            watcher.on_valid_changed(pbn, valid)

    def unbind(self, lpn: int) -> None:
        """Drop the mapping entirely (trim)."""
        old = self.l2p[lpn]
        if old != UNMAPPED:
            self.invalidate_ppn(old)
            self.l2p[lpn] = UNMAPPED
        if self.lpn_class is not None:
            self.lpn_class[lpn] = 0

    def invalidate_ppn(self, ppn: int) -> None:
        if self.p2l[ppn] == UNMAPPED:
            raise ValueError(f"double invalidation of ppn {ppn}")
        self.p2l[ppn] = UNMAPPED
        pbn = ppn // self._pages_per_block
        valid = self.valid_in_block[pbn] - 1
        if valid < 0:
            raise ValueError(f"valid count underflow on block {pbn}")
        self.valid_in_block[pbn] = valid
        watcher = self.block_watch[pbn]
        if watcher is not None:
            watcher.on_valid_changed(pbn, valid)

    def valid_lpns_of_block(self, pbn: int) -> List[tuple]:
        """(page_offset, lpn) pairs still valid inside ``pbn``."""
        base = pbn * self.geometry.pages_per_block
        result = []
        for offset in range(self.geometry.pages_per_block):
            lpn = self.p2l[base + offset]
            if lpn != UNMAPPED:
                result.append((offset, lpn))
        return result

    def total_valid(self) -> int:
        return sum(self.valid_in_block)


class BlockPool:
    """Free-block pool of one allocation domain (typically one plane).

    FIFO reuse spreads erases across blocks, which is itself a mild form
    of dynamic wear leveling.
    """

    def __init__(self, blocks: Iterable[int]):
        self._free: Deque[int] = deque(blocks)
        self._initial = len(self._free)

    def __len__(self) -> int:
        return len(self._free)

    @property
    def initial_size(self) -> int:
        return self._initial

    def take(self) -> int:
        if not self._free:
            raise RuntimeError("block pool exhausted (GC failed to keep up)")
        return self._free.popleft()

    def give(self, pbn: int) -> None:
        self._free.append(pbn)

    def remove(self, pbn: int) -> bool:
        """Drop a specific block from the pool (grown bad block)."""
        try:
            self._free.remove(pbn)
            return True
        except ValueError:
            return False

    def peek_free(self) -> List[int]:
        return list(self._free)


class VictimBuckets:
    """O(1) greedy GC victim selection via invalid-count bucket lists
    (after Dayan & Bonnet, "GC Techniques for Flash-Resident Page-Mapping
    FTLs").

    Member blocks — the *occupied* (fully written, no longer active)
    blocks of one allocation domain — live in one bucket per valid-page
    count, each bucket an insertion-ordered dict (FIFO tie-break).  A
    lazy minimum pointer makes the greedy pick amortized O(1): host
    writes land on active blocks, which are not members, so a member's
    valid count normally only *decreases*; the pointer therefore only
    needs to walk upward when its bucket drains, and is pulled back down
    on the rare insert/update below it.

    The structure registers itself in
    :attr:`MappingState.block_watch` for each member, so mapping-table
    binds/invalidations keep the buckets current at one list probe plus
    one dict move per event.
    """

    __slots__ = ("_buckets", "_bucket_of", "_min")

    def __init__(self, pages_per_block: int):
        # Index == valid count; the last bucket (== pages_per_block)
        # holds fully valid blocks, which greedy never selects.
        self._buckets: List[dict] = [{} for _ in range(pages_per_block + 1)]
        self._bucket_of: Dict[int, int] = {}
        self._min = pages_per_block + 1

    def __contains__(self, pbn: int) -> bool:
        return pbn in self._bucket_of

    def __len__(self) -> int:
        return len(self._bucket_of)

    def __iter__(self):
        return iter(self._bucket_of)

    def add(self, pbn: int, valid: int) -> None:
        """Admit ``pbn`` with its current valid count (idempotent: an
        existing member is moved to the ``valid`` bucket)."""
        old = self._bucket_of.get(pbn)
        if old is not None:
            if old == valid:
                return
            del self._buckets[old][pbn]
        self._bucket_of[pbn] = valid
        self._buckets[valid][pbn] = None
        if valid < self._min:
            self._min = valid

    def discard(self, pbn: int) -> None:
        """Drop ``pbn`` from the structure (no-op for non-members)."""
        old = self._bucket_of.pop(pbn, None)
        if old is not None:
            del self._buckets[old][pbn]

    def on_valid_changed(self, pbn: int, valid: int) -> None:
        """Mapping-state hook: move a member to its new bucket."""
        old = self._bucket_of.get(pbn)
        if old is None or old == valid:
            return
        del self._buckets[old][pbn]
        self._buckets[valid][pbn] = None
        self._bucket_of[pbn] = valid
        if valid < self._min:
            self._min = valid

    def valid_of(self, pbn: int) -> Optional[int]:
        return self._bucket_of.get(pbn)

    def min_victim(self, skip=()) -> Optional[int]:
        """Oldest member of the lowest non-empty bucket, excluding fully
        valid blocks (nothing to gain) and any block in ``skip``.

        Amortized O(1): the lazy minimum pointer resumes where it last
        stopped and never revisits drained buckets until an insert below
        it pulls it back down.
        """
        buckets = self._buckets
        full = len(buckets) - 1
        index = self._min
        while index < full and not buckets[index]:
            index += 1
        self._min = index
        if index >= full:
            return None
        if not skip:
            return next(iter(buckets[index]))
        while index < full:
            for pbn in buckets[index]:
                if pbn not in skip:
                    return pbn
            index += 1
        return None

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._bucket_of.clear()
        self._min = len(self._buckets)


def read_page_with_retry(ppn: int, *, stats: Optional[FTLStats] = None,
                         counter=None, retries: int = 4,
                         outage_retries: int = 150,
                         backoff_us: float = 50.0):
    """READ PAGE with bounded retry; returns ``(result, ecc_retries)``.

    A flash-command generator.  Two failure classes are handled:

    * :class:`UncorrectableError` (ECC) — re-read after a linear backoff
      Pause, up to ``retries`` extra attempts, then re-raise.  Transient
      read disturb clears on retry; a persistent media defect exhausts the
      budget and propagates to the caller.
    * :class:`DieOutageError` — the die rejected the command with no state
      change; wait out the window with an escalating Pause (op-count
      windows advance on Pause commands too), up to ``outage_retries``.

    ``stats.read_retries`` and ``counter`` count every extra ECC attempt.
    """
    ecc = 0
    waits = 0
    while True:
        try:
            result = yield ReadPage(ppn=ppn)
            return result, ecc
        except UncorrectableError:
            ecc += 1
            if stats is not None:
                stats.read_retries += 1
            if counter is not None:
                counter.inc()
            if ecc > retries:
                raise
            yield Pause(duration_us=backoff_us * ecc)
        except DieOutageError:
            waits += 1
            if waits > outage_retries:
                raise
            yield Pause(duration_us=min(backoff_us * (2 ** min(waits, 5)), 2000.0))


def relocate_page(geometry: Geometry, src_ppn: int, dst_ppn: int,
                  stats: FTLStats, oob=None, counter=None,
                  retries: int = 4, outage_retries: int = 150):
    """Move one valid page, preferring COPYBACK when planes match.

    A flash-command generator; returns ``True`` when the page moved and
    ``False`` when the source proved unreadable even after retries — the
    caller must then skip-and-record (``stats.relocation_skips`` is bumped
    here) rather than abort its GC/merge.  The array checks source faults
    before consuming the copyback destination slot, so the read-retry +
    program fallback can reuse the same ``dst_ppn``.

    Updates the relocation counters that Figure 3 reports; ``counter`` is
    the caller's ``ftl.relocations`` telemetry counter, bumped alongside.
    """
    if geometry.same_plane(src_ppn, dst_ppn):
        try:
            yield Copyback(src_ppn=src_ppn, dst_ppn=dst_ppn, oob=oob)
        except (UncorrectableError, DieOutageError):
            pass  # fall through to the read/program path with retries
        else:
            stats.gc_relocations += 1
            stats.gc_copybacks += 1
            if counter is not None:
                counter.inc()
            return True
    try:
        result, __ = yield from read_page_with_retry(
            src_ppn, stats=stats, retries=retries,
            outage_retries=outage_retries,
        )
    except UncorrectableError:
        stats.relocation_skips += 1
        return False
    stats.gc_reads += 1
    waits = 0
    while True:
        try:
            yield ProgramPage(ppn=dst_ppn, data=result.data,
                              oob=oob if oob is not None else result.oob)
            break
        except DieOutageError:
            # Rejected before the slot was consumed; wait out the window.
            waits += 1
            if waits > outage_retries:
                raise
            yield Pause(duration_us=min(50.0 * (2 ** min(waits, 5)), 2000.0))
    stats.gc_relocations += 1
    stats.gc_programs += 1
    if counter is not None:
        counter.inc()
    return True
