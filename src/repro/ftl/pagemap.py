"""Pure page-level mapping FTL.

The idealised on-device FTL: the *entire* page-granularity mapping table
is cached (which is exactly what commodity controllers cannot afford —
Section 3.1 of the paper: "the amount of on-device memory is insufficient
to hold a complete mapping table at page-level granularity").  It serves
two purposes here:

* the reference point for DFTL's slowdown (paper: DFTL is up to 3.7x
  slower than pure page-level mapping under TPC-C/-B);
* the mechanical core that NoFTL moves into the host, where the memory
  objection disappears.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry
from .base import BaseFTL, MappingState
from .pagespace import PageMappedSpace

__all__ = ["PageMapFTL"]


class PageMapFTL(BaseFTL):
    """Device-level page-mapping FTL over all planes of the device."""

    def __init__(
        self,
        geometry: Geometry,
        op_ratio: float = 0.1,
        gc_policy: str = "greedy",
        gc_low_water: int = 2,
        separate_streams: bool = False,
        wear_level_delta: Optional[int] = None,
        bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        super().__init__(geometry, op_ratio, telemetry=telemetry, trace=trace)
        self.mapping = MappingState(geometry, self.logical_pages)
        planes = [
            (die, plane)
            for die in range(geometry.total_dies)
            for plane in range(geometry.planes_per_die)
        ]
        self.space = PageMappedSpace(
            geometry,
            self.mapping,
            planes,
            self.stats,
            gc_policy=gc_policy,
            gc_low_water=gc_low_water,
            separate_streams=separate_streams,
            wear_level_delta=wear_level_delta,
            bad_blocks=bad_blocks,
            rng=rng,
            telemetry=self.telemetry,
            trace=self.trace,
        )

    def read(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        data = yield from self.space.read(lpn)
        return data

    def write(self, lpn: int, data=None):
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        yield from self.space.write(lpn, data)

    def trim(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        self.space.trim(lpn)
        return
        yield  # pragma: no cover - generator form

    def is_fast_read(self, lpn: int) -> bool:
        """Reads never touch FTL metadata: always lock-free."""
        return True

    @property
    def maintenance_active(self) -> bool:
        return self.space.maintenance_active

    def health_snapshot(self) -> dict:
        out = super().health_snapshot()
        out["occupancy"] = self.space.occupancy()
        out["wear_shadow"] = self.space.wear_shadow()
        return out
