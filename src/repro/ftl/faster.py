"""FASTer: hybrid log-block FTL with a second-chance isolation area
(Lim, Lee, Moon — SNAPI 2010), descendant of FAST.

Layout:

* **data area** — block-level mapped (``lbn -> pbn``); pages sit at their
  in-block offset, so fresh data can append in place;
* **SW log block** — one dedicated block absorbing sequential rewrites of
  a single logical block; completed sequences retire by *switch merge*
  (pointer swap + one erase), interrupted ones by *partial merge*;
* **RW log area** — page-mapped log blocks written append-only in
  round-robin; reclaimed FIFO.

FASTer's contribution over FAST is the *second chance*: when the oldest
log block is reclaimed, still-valid pages that have not yet had a second
chance are migrated to the log tail instead of forcing full merges —
hot pages usually die before their second eviction.  Pages caught a
second time force the expensive **full merge** of their logical block:
gather the newest version of every page of the block (from data area +
log) into a freshly allocated block.

Those merges are the copyback/erase traffic that the paper's Figure 3
counts: roughly 2x the copybacks and 1.7-1.8x the erases of NoFTL under
TPC traces.
"""

from __future__ import annotations

import random
from array import array as _array
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from ..flash.commands import (
    EraseBlock,
    Pause,
    ProgramPage,
    stamp_context,
    tag_commands,
)
from ..flash.errors import BlockWornOut, DieOutageError, UncorrectableError
from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry, OpContext
from .base import UNMAPPED, BaseFTL, read_page_with_retry, relocate_page

__all__ = ["FASTer"]


class FASTer(BaseFTL):
    """Hybrid mapping FTL with FASTer's isolation/second-chance policy.

    Parameters
    ----------
    log_fraction
        Fraction of physical blocks dedicated to the RW log area.
    second_chance
        Enable the FASTer policy; with False this degrades to plain FAST
        (every reclaim merges immediately).
    migration_cap_fraction
        A reclaim migrates at most this fraction of a log block's pages;
        beyond it, remaining valid pages are merged (bounds the isolation
        area's growth, as in the original paper).
    """

    def __init__(
        self,
        geometry: Geometry,
        op_ratio: float = 0.1,
        log_fraction: float = 0.07,
        second_chance: bool = True,
        migration_cap_fraction: float = 0.75,
        use_sw_log: bool = True,
        log_stripes: int = 4,
        bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        super().__init__(geometry, op_ratio, telemetry=telemetry, trace=trace)
        if not 0.0 < log_fraction < 0.5:
            raise ValueError("log_fraction must be in (0, 0.5)")
        if not 0.0 <= migration_cap_fraction <= 1.0:
            raise ValueError("migration_cap_fraction must be in [0, 1]")
        pages_per_block = geometry.pages_per_block
        self.logical_blocks = self.logical_pages // pages_per_block
        self.logical_pages = self.logical_blocks * pages_per_block
        self.second_chance = second_chance
        self.migration_cap = migration_cap_fraction
        self.use_sw_log = use_sw_log
        self._rng = rng or random.Random(0)

        bad = set(bad_blocks)
        good_blocks = [pbn for pbn in range(geometry.total_blocks) if pbn not in bad]
        self._free: Deque[int] = deque(good_blocks)
        if log_stripes < 1:
            raise ValueError("log_stripes must be >= 1")
        # Bank-striped log tails, as on the OpenSSD firmware: appends
        # round-robin over several active log blocks so log writes exploit
        # die parallelism (a single tail would serialize at one die).
        self.log_stripes = log_stripes
        self.log_blocks_max = max(2 + log_stripes, int(len(good_blocks) * log_fraction))

        # data area — flat per-lbn arrays plus one written bitmap over the
        # logical page space (same representation the page-mapped engine
        # and the block-map FTL use).
        self.block_map = _array("q", [UNMAPPED]) * self.logical_blocks
        self._data_fill = _array("l", [0]) * self.logical_blocks
        self._data_written = bytearray(self.logical_pages)

        # RW log area
        self._log_order: Deque[int] = deque()    # full log blocks, FIFO
        # stripe -> [pbn, next_offset] or None
        self._active_logs: List[Optional[list]] = [None] * log_stripes
        self._stripe_rr = 0
        # lpn -> newest log ppn (UNMAPPED when absent) + live-entry count.
        self._log_map = _array("q", [UNMAPPED]) * self.logical_pages
        self._log_live = 0
        self._log_block_entries: Dict[int, List] = {}  # pbn -> [(off, lpn)]
        self._second_chanced = bytearray(self.logical_pages)
        self._second_chanced_live = 0

        # SW log block
        self._sw_lbn: Optional[int] = None
        self._sw_pbn: Optional[int] = None
        self._sw_fill = 0

        self._reclaiming = False
        # Logical blocks currently being merged: concurrent host writes to
        # them are diverted to the log so the merge cannot lose them.
        self._merging: Set[int] = set()

        # Telemetry: merge-type counters plus spans over log reclaims and
        # full merges — the operations behind FASTer's Figure 3 overhead.
        self._tm_merges = {
            kind: self.telemetry.counter(
                "ftl.merges", layer="ftl", ftl="FASTer", kind=kind)
            for kind in ("full", "switch", "partial")
        }
        self._tm_second_chances = self.telemetry.counter(
            "ftl.second_chances", layer="ftl", ftl="FASTer")
        self._tm_reclaim_us = self.telemetry.histogram(
            "ftl.log.reclaim_us", layer="ftl", ftl="FASTer")
        self._tm_merge_us = self.telemetry.histogram("ftl.merge.full_us", layer="ftl", ftl="FASTer")
        self._tm_relocations = self.telemetry.counter("ftl.relocations", layer="ftl")

    # -- host interface ---------------------------------------------------------

    def read(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        ppn = self._newest_ppn(lpn)
        if ppn is None:
            return None
        result, __ = yield from read_page_with_retry(
            ppn, stats=self.stats, counter=self._tm_read_retries
        )
        return result.data

    def write(self, lpn: int, data=None):
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        pages_per_block = self.geometry.pages_per_block
        lbn, offset = divmod(lpn, pages_per_block)

        if self.use_sw_log:
            if lbn == self._sw_lbn:
                if offset == self._sw_fill:
                    yield from self._sw_append(lbn, offset, data)
                    return
                # Sequence broken: retire the SW block before the write
                # takes the normal path, so no stale SW copy survives.
                yield from self._sw_retire(partial=True)
            if offset == 0 and self._can_write_in_place(lbn, offset) is False:
                # A rewrite starting at offset 0: open a fresh SW sequence.
                yield from self._sw_start(lbn, data)
                return

        if self._can_write_in_place(lbn, offset):
            yield from self._write_in_place(lbn, offset, data)
            return
        yield from self._log_append(lpn, data)

    def is_fast_read(self, lpn: int) -> bool:
        return True  # reads never mutate FASTer metadata

    @property
    def maintenance_active(self) -> bool:
        """True while a log reclaim or full merge is in flight — host
        commands queueing behind the controller then are blocked by GC."""
        return self._reclaiming or bool(self._merging)

    # -- data-area path -----------------------------------------------------------

    def _can_write_in_place(self, lbn: int, offset: int) -> bool:
        """True when the page can append at its home offset (fresh block
        or ascending first-writes).  Blocks under merge are excluded —
        concurrent writes must go to the log or the merge would lose
        them."""
        if lbn in self._merging:
            return False
        if self.block_map[lbn] == UNMAPPED:
            return True
        return offset >= self._data_fill[lbn]

    def _write_in_place(self, lbn: int, offset: int, data):
        if self.block_map[lbn] == UNMAPPED:
            self.block_map[lbn] = self._take_block()
            self._data_fill[lbn] = 0
        pbn = self.block_map[lbn]
        lpn = lbn * self.geometry.pages_per_block + offset
        # Claim the slot and retire any older log version *before*
        # yielding: concurrent writers and merges must see the raised
        # fill / written set immediately, and a *newer* log version bound
        # by a concurrent writer after this point must survive (it would
        # be wrongly deleted if we invalidated after the program).  The
        # die's FIFO guarantees our program lands before any read that
        # the new state routes here.
        self._data_fill[lbn] = max(self._data_fill[lbn], offset + 1)
        self._data_written[lpn] = 1
        self._invalidate_log_entry(lpn)
        yield ProgramPage(ppn=self.geometry.ppn_of(pbn, offset), data=data, oob={"lpn": lpn})

    # -- SW log path -----------------------------------------------------------------

    def _sw_start(self, lbn: int, data):
        if self._sw_lbn is not None:
            yield from self._sw_retire(partial=True)
        self._sw_lbn = lbn
        self._sw_pbn = self._take_block()
        self._sw_fill = 0
        yield from self._sw_append(lbn, 0, data)

    def _sw_append(self, lbn: int, offset: int, data):
        lpn = lbn * self.geometry.pages_per_block + offset
        # Claim + invalidate before yielding (see _write_in_place).
        self._sw_fill = offset + 1
        self._invalidate_log_entry(lpn)
        yield ProgramPage(ppn=self.geometry.ppn_of(self._sw_pbn, offset),
                          data=data, oob={"lpn": lpn})
        if self._sw_fill == self.geometry.pages_per_block:
            yield from self._sw_retire(partial=False)

    def _sw_retire(self, partial: bool):
        """Switch merge (complete sequence) or partial merge (interrupted):
        promote the SW block to data block.  Flash work done here is merge
        maintenance, not the host write itself — tag it so."""
        yield from tag_commands(self._sw_retire_body(partial), OpContext("merge"))

    def _sw_retire_body(self, partial: bool):
        lbn, pbn = self._sw_lbn, self._sw_pbn
        fill = self._sw_fill
        pages_per_block = self.geometry.pages_per_block
        base = lbn * pages_per_block
        self._sw_lbn = self._sw_pbn = None
        self._sw_fill = 0
        written = set(range(fill))
        old_pbn = self.block_map[lbn]
        if old_pbn == UNMAPPED:
            old_pbn = None
        if partial and old_pbn is not None:
            self.stats.merges_partial += 1
            self._tm_merges["partial"].inc()
            # Fill the tail of the SW block from the newest versions.  The
            # written bitmap is read for the *old* block here and only
            # rewritten after the loop, so the splice below cannot shadow
            # these lookups.
            consumed = []
            for offset in range(fill, pages_per_block):
                lpn = base + offset
                src = self._log_map[lpn]
                from_log = src != UNMAPPED
                if not from_log:
                    if not self._data_written[lpn]:
                        continue
                    src = self.geometry.ppn_of(old_pbn, offset)
                dst = self.geometry.ppn_of(pbn, offset)
                ok = yield from relocate_page(self.geometry, src, dst,
                                              self.stats, oob={"lpn": lpn},
                                              counter=self._tm_relocations)
                if from_log:
                    # Consume the entry even when unreadable: leaving it
                    # would wedge the log reclaim on a dead page forever.
                    consumed.append((lpn, src))
                if not ok:
                    self._tm_relocation_skips.inc()
                    continue  # page lost to media; recorded, not merged
                written.add(offset)
        else:
            consumed = []
            self.stats.merges_switch += 1
            self._tm_merges["switch"].inc()
        # New block first, then retire log entries (see _full_merge_locked).
        self.block_map[lbn] = pbn
        self._data_fill[lbn] = (max(written) + 1) if written else 0
        new_bits = bytearray(pages_per_block)
        for offset in written:
            new_bits[offset] = 1
        self._data_written[base:base + pages_per_block] = new_bits
        for lpn, src in consumed:
            if self._log_map[lpn] == src:
                self._consume_log_entry(lpn)
        if old_pbn is not None:
            yield from self._erase_block(old_pbn)

    # -- RW log path --------------------------------------------------------------------

    def _log_append(self, lpn: int, data):
        """Append one host page version at the log tail.

        The slot allocation, mapping update and program issue form one
        atomic (yield-free) section, so concurrent appenders can never
        program a log block out of ascending order, and issue order
        equals mapping order.
        """
        ppn = yield from self._log_slot()
        pbn = self.geometry.block_of_ppn(ppn)
        offset = self.geometry.page_offset_of_ppn(ppn)
        self._invalidate_log_entry(lpn)
        self._log_map[lpn] = ppn
        self._log_live += 1
        self._log_block_entries[pbn].append((offset, lpn))
        yield ProgramPage(ppn=ppn, data=data, oob={"lpn": lpn})

    def _log_slot(self, for_migration: bool = False):
        """Generator: next free log page (round-robin over the stripes).

        A stripe's new block is allocated *before* reclaiming (briefly
        exceeding the log budget) because second-chance migrations
        performed during the reclaim themselves append to the log.
        Reclaim is guarded against re-entry; if the budget is badly
        over-run while a reclaim is already in flight (heavy concurrent
        writers), host appenders back off with :class:`Pause` commands
        until the reclaimer frees space — the firmware's backpressure.
        The reclaimer's own migration appends (``for_migration``) are
        exempt, or they would deadlock against their own reclaim.
        """
        pages_per_block = self.geometry.pages_per_block
        stripe = self._stripe_rr % self.log_stripes
        self._stripe_rr += 1
        while True:
            active = self._active_logs[stripe]
            if active is not None and active[1] < pages_per_block:
                break
            if active is not None:
                self._log_order.append(active[0])
                self._active_logs[stripe] = None
            over_budget = (len(self._log_order) + self.log_stripes > self.log_blocks_max)
            if over_budget and self._reclaiming and not for_migration:
                hard_over = (len(self._log_order) > self.log_blocks_max + 2 * self.log_stripes)
                if hard_over:
                    # Waiting for the in-flight reclaim to free log space:
                    # GC backpressure, blamed as such.
                    yield stamp_context(Pause(duration_us=200.0), OpContext("gc"))
                    continue
            pbn = self._take_block()
            self._log_block_entries[pbn] = []
            self._active_logs[stripe] = [pbn, 0]
            if over_budget and not self._reclaiming:
                self._reclaiming = True
                try:
                    while (len(self._log_order) + self.log_stripes > self.log_blocks_max):
                        yield from self._reclaim_oldest_log_block()
                finally:
                    self._reclaiming = False
        active = self._active_logs[stripe]
        ppn = self.geometry.ppn_of(active[0], active[1])
        active[1] += 1
        return ppn

    def _reclaim_oldest_log_block(self):
        victim = self._log_order.popleft()
        ctx = OpContext("gc")
        with self.trace.span("log.reclaim", histogram=self._tm_reclaim_us,
                             ctx=ctx, victim=victim) as span:
            yield from tag_commands(self._reclaim_log_block(victim, ctx=ctx, span=span), ctx)

    def _reclaim_log_block(self, victim: int, ctx=None, span=None):
        entries = self._log_block_entries.pop(victim, [])
        valid = [
            (offset, lpn)
            for offset, lpn in entries
            if self._log_map[lpn] == self.geometry.ppn_of(victim, offset)
        ]
        migrate: List = []
        merge_lpns: List[int] = []
        # Under heavy pressure the isolation area must not grow further:
        # degrade to plain FAST (merge everything) until the log drains.
        pressure = len(self._log_order) > self.log_blocks_max + self.log_stripes
        if self.second_chance and not pressure:
            cap = int(self.migration_cap * self.geometry.pages_per_block)
            for offset, lpn in valid:
                if not self._second_chanced[lpn] and len(migrate) < cap:
                    migrate.append((offset, lpn))
                else:
                    merge_lpns.append(lpn)
        else:
            merge_lpns = [lpn for __, lpn in valid]

        # Full merges first: they consume log entries in *other* blocks too.
        for lbn in sorted({lpn // self.geometry.pages_per_block for lpn in merge_lpns}):
            yield from self._full_merge(lbn, parent_ctx=ctx, parent_span=span)

        for offset, lpn in migrate:
            src = self.geometry.ppn_of(victim, offset)
            if self._log_map[lpn] != src:
                continue  # consumed by a merge above
            self.stats.second_chances += 1
            self._tm_second_chances.inc()
            # Read the payload first (a yield), then allocate + bind +
            # program atomically so concurrent appenders keep the log
            # block's program order ascending.
            self.stats.gc_relocations += 1
            self._tm_relocations.inc()
            self.stats.gc_reads += 1
            try:
                result, __ = yield from read_page_with_retry(
                    src, stats=self.stats, counter=self._tm_read_retries
                )
            except UncorrectableError:
                # Unreadable after retries: drop the entry (its block must
                # still be reclaimable) and record the loss.
                self.stats.relocation_skips += 1
                self._tm_relocation_skips.inc()
                if self._log_map[lpn] == src:
                    self._consume_log_entry(lpn)
                continue
            if self._log_map[lpn] != src:
                continue  # a fresher host version landed mid-read
            dst = yield from self._log_slot(for_migration=True)
            dst_pbn = self.geometry.block_of_ppn(dst)
            dst_offset = self.geometry.page_offset_of_ppn(dst)
            self._invalidate_log_entry(lpn)
            self._log_map[lpn] = dst
            self._log_live += 1
            self._log_block_entries[dst_pbn].append((dst_offset, lpn))
            self._second_chanced[lpn] = 1
            self._second_chanced_live += 1
            self.stats.gc_programs += 1
            yield ProgramPage(ppn=dst, data=result.data, oob={"lpn": lpn})

        # The victim may still hold valid pages whose logical block is
        # being merged by a concurrent operation (we skipped those merges
        # above).  Erasing now would destroy data that merge still reads:
        # defer the victim instead and let the in-flight merge finish.
        remaining = [
            (offset, lpn)
            for offset, lpn in entries
            if self._log_map[lpn] == self.geometry.ppn_of(victim, offset)
        ]
        if remaining:
            self._log_block_entries[victim] = entries
            self._log_order.appendleft(victim)
            yield Pause(duration_us=50.0)  # let the other merge progress
            return
        yield from self._erase_block(victim)

    def _full_merge(self, lbn: int, parent_ctx=None, parent_span=None):
        """Gather the newest version of every page of ``lbn`` into a fresh
        block — the expensive operation FASTer tries to avoid."""
        self.stats.merges_full += 1
        self._tm_merges["full"].inc()
        if lbn in self._merging:
            return  # a concurrent reclaim is already merging this block
        self._merging.add(lbn)
        ctx = (parent_ctx.child("merge") if parent_ctx is not None else OpContext("merge"))
        try:
            with self.trace.span("merge.full", histogram=self._tm_merge_us,
                                 parent=parent_span, ctx=ctx, lbn=lbn):
                yield from tag_commands(self._full_merge_locked(lbn), ctx)
        finally:
            self._merging.discard(lbn)

    def _full_merge_locked(self, lbn: int):
        pages_per_block = self.geometry.pages_per_block
        base = lbn * pages_per_block
        old_pbn = self.block_map[lbn]
        if old_pbn == UNMAPPED:
            old_pbn = None
        prefer_plane = None
        if old_pbn is not None:
            prefer_plane = (self.geometry.die_of_block(old_pbn),
                            self.geometry.plane_of_block(old_pbn))
        new_pbn = self._take_block(prefer_plane)
        written: Set[int] = set()
        # Old written bits are read during the loop and only overwritten by
        # the splice after it.
        consumed = []
        for offset in range(pages_per_block):
            lpn = base + offset
            src = self._log_map[lpn]
            from_log = src != UNMAPPED
            if not from_log:
                if old_pbn is None or not self._data_written[lpn]:
                    continue
                src = self.geometry.ppn_of(old_pbn, offset)
            dst = self.geometry.ppn_of(new_pbn, offset)
            ok = yield from relocate_page(self.geometry, src, dst, self.stats,
                                          oob={"lpn": lpn},
                                          counter=self._tm_relocations)
            if from_log:
                # Consume unreadable entries too, or the reclaim that
                # triggered this merge can never retire its victim.
                consumed.append((lpn, src))
            if not ok:
                self._tm_relocation_skips.inc()
                continue  # page lost to media; recorded, not merged
            written.add(offset)
        # Install the new block *first*, then retire the consumed log
        # entries — removing an entry while block_map still points at the
        # old block would expose stale data to concurrent readers.  Each
        # retire re-checks that no newer host version replaced the entry.
        self.block_map[lbn] = new_pbn
        new_bits = bytearray(pages_per_block)
        for offset in written:
            new_bits[offset] = 1
        self._data_written[base:base + pages_per_block] = new_bits
        self._data_fill[lbn] = (max(written) + 1) if written else 0
        for lpn, src in consumed:
            if self._log_map[lpn] == src:
                self._consume_log_entry(lpn)
        if old_pbn is not None:
            yield from self._erase_block(old_pbn)

    # -- shared helpers ---------------------------------------------------------------

    def _newest_ppn(self, lpn: int) -> Optional[int]:
        pages_per_block = self.geometry.pages_per_block
        lbn, offset = divmod(lpn, pages_per_block)
        if self._sw_lbn == lbn and offset < self._sw_fill:
            return self.geometry.ppn_of(self._sw_pbn, offset)
        ppn = self._log_map[lpn]
        if ppn != UNMAPPED:
            return ppn
        pbn = self.block_map[lbn]
        if pbn != UNMAPPED and self._data_written[lpn]:
            return self.geometry.ppn_of(pbn, offset)
        return None

    def _invalidate_log_entry(self, lpn: int) -> None:
        if self._log_map[lpn] != UNMAPPED:
            self._log_map[lpn] = UNMAPPED
            self._log_live -= 1
        if self._second_chanced[lpn]:
            self._second_chanced[lpn] = 0
            self._second_chanced_live -= 1

    def _consume_log_entry(self, lpn: int) -> None:
        self._invalidate_log_entry(lpn)

    def _take_block(self, prefer_plane=None) -> int:
        if not self._free:
            raise RuntimeError("FASTer out of free blocks")
        if prefer_plane is not None:
            for index, pbn in enumerate(self._free):
                plane = (self.geometry.die_of_block(pbn), self.geometry.plane_of_block(pbn))
                if plane == prefer_plane:
                    del self._free[index]
                    return pbn
        return self._free.popleft()

    def _erase_block(self, pbn: int):
        waits = 0
        while True:
            try:
                yield EraseBlock(pbn=pbn)
                break
            except DieOutageError:
                waits += 1
                if waits > 150:
                    raise
                yield Pause(duration_us=min(50.0 * (2 ** min(waits, 5)), 2000.0))
            except BlockWornOut:
                self.stats.grown_bad_blocks += 1
                return
        self.stats.gc_erases += 1
        self._free.append(pbn)

    # -- introspection -------------------------------------------------------------------

    def log_occupancy(self) -> dict:
        active = sum(1 for entry in self._active_logs if entry is not None)
        return {
            "log_blocks": len(self._log_order) + active,
            "log_blocks_max": self.log_blocks_max,
            "live_log_entries": self._log_live,
            "second_chanced": self._second_chanced_live,
        }

    def health_snapshot(self) -> dict:
        out = super().health_snapshot()
        out["log"] = self.log_occupancy()
        return out
