"""DFTL: page-level FTL with demand-based selective caching of mappings
(Gupta, Kim, Urgaonkar — ASPLOS 2009).

The full page-granularity mapping does not fit in device RAM, so it lives
in *translation pages* on flash.  A small Cached Mapping Table (CMT, LRU)
holds the hot entries; the Global Translation Directory (GTD) — small
enough for controller SRAM — locates each translation page.

Costs modelled faithfully:

* CMT miss -> one translation-page read;
* dirty CMT eviction -> translation-page read-modify-write (with the
  standard batching optimisation: one write-back flushes every dirty
  entry of that translation page);
* GC relocation of a data page whose entry is not cached -> immediate
  translation-page read-modify-write (batched per translation page);
* GC relocation of a translation page -> GTD update only (free).

These are exactly the overheads that make DFTL up to 3.7x slower than
pure page-level mapping under TPC-C/-B (paper Section 3.1), reproduced in
bench E5.

Implementation note: translation pages are mapped into an extended
logical space (``tp_lpn = logical_pages + tvpn``) so allocation and GC
are shared with :class:`~repro.ftl.pagespace.PageMappedSpace`; the
``l2p`` entries above ``logical_pages`` *are* the GTD.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from ..flash.commands import tag_commands
from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry, OpContext
from .base import UNMAPPED, BaseFTL, MappingState, read_page_with_retry
from .pagespace import PageMappedSpace

__all__ = ["DFTL"]


class DFTL(BaseFTL):
    """Demand-based page-mapping FTL.

    Parameters
    ----------
    cmt_entries
        Capacity of the Cached Mapping Table in mapping entries.  The
        headline experiments size this well below the workload's working
        set, as on a real controller.
    entries_per_translation_page
        Mapping slots per translation page (page_bytes / 8 on real
        hardware; configurable down for small test devices).
    """

    def __init__(
        self,
        geometry: Geometry,
        op_ratio: float = 0.1,
        cmt_entries: int = 4096,
        entries_per_translation_page: Optional[int] = None,
        gc_policy: str = "greedy",
        gc_low_water: int = 2,
        bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        super().__init__(geometry, op_ratio, telemetry=telemetry, trace=trace)
        if cmt_entries < 1:
            raise ValueError("cmt_entries must be >= 1")
        self.cmt_entries = cmt_entries
        if entries_per_translation_page is None:
            entries_per_translation_page = max(1, geometry.page_bytes // 8)
        self.entries_per_tp = entries_per_translation_page
        self.num_tvpns = -(-self.logical_pages // self.entries_per_tp)

        extended = self.logical_pages + self.num_tvpns
        self.mapping = MappingState(geometry, extended)
        planes = [
            (die, plane)
            for die in range(geometry.total_dies)
            for plane in range(geometry.planes_per_die)
        ]
        self.space = PageMappedSpace(
            geometry,
            self.mapping,
            planes,
            self.stats,
            gc_policy=gc_policy,
            gc_low_water=gc_low_water,
            separate_streams=True,
            bad_blocks=bad_blocks,
            rng=rng,
            telemetry=self.telemetry,
            trace=self.trace,
        )
        self.space.rebind_hook = self._gc_rebind
        # CMT: lpn -> dirty flag, in LRU order (oldest first).
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()
        self.cmt_hits = 0
        self.cmt_misses = 0
        self._tm_cmt_hits = self.telemetry.counter(
            "ftl.map_cache", layer="ftl", ftl="DFTL", event="hit")
        self._tm_cmt_misses = self.telemetry.counter(
            "ftl.map_cache", layer="ftl", ftl="DFTL", event="miss")
        # Translation pages whose on-flash copy is stale because GC moved
        # data pages; drained by the outermost rebind so the
        # GC -> TP-write -> GC cascade stays iterative, never recursive.
        self._pending_tvpns: set = set()
        self._rebind_active = False

    # -- address helpers -------------------------------------------------------

    def _tvpn_of(self, lpn: int) -> int:
        return lpn // self.entries_per_tp

    def _tp_lpn(self, tvpn: int) -> int:
        return self.logical_pages + tvpn

    def _tp_exists(self, tvpn: int) -> bool:
        return self.mapping.lookup(self._tp_lpn(tvpn)) != UNMAPPED

    # -- host interface ----------------------------------------------------------

    def read(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        yield from self._ensure_cached(lpn)
        ppn = self.mapping.lookup(lpn)
        if ppn == UNMAPPED:
            return None
        result, __ = yield from read_page_with_retry(
            ppn, stats=self.stats, counter=self._tm_read_retries
        )
        return result.data

    def write(self, lpn: int, data=None):
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        yield from self._ensure_cached(lpn)
        yield from self.space.write(lpn, data)
        self._cmt[lpn] = True  # dirty
        self._cmt.move_to_end(lpn)

    def trim(self, lpn: int):
        """TRIM still needs the mapping present to persist the
        deallocation — a real cost black-box FTLs pay that NoFTL does not."""
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        yield from self._ensure_cached(lpn)
        if self.mapping.lookup(lpn) != UNMAPPED:
            self.mapping.unbind(lpn)
            self._cmt[lpn] = True
            self._cmt.move_to_end(lpn)

    def is_fast_read(self, lpn: int) -> bool:
        """A read is metadata-free only when its mapping is cached."""
        return lpn in self._cmt

    # -- CMT machinery ----------------------------------------------------------

    def _ensure_cached(self, lpn: int):
        """Generator: make ``lpn``'s mapping resident in the CMT."""
        if lpn in self._cmt:
            self.cmt_hits += 1
            self._tm_cmt_hits.inc()
            self._cmt.move_to_end(lpn)
            return
        self.cmt_misses += 1
        self._tm_cmt_misses.inc()
        while len(self._cmt) >= self.cmt_entries:
            victim_lpn, dirty = self._cmt.popitem(last=False)
            if dirty:
                yield from self._writeback_tvpn(self._tvpn_of(victim_lpn))
        tvpn = self._tvpn_of(lpn)
        if self._tp_exists(tvpn):
            self.stats.map_reads += 1
            yield from read_page_with_retry(
                self.mapping.lookup(self._tp_lpn(tvpn)),
                stats=self.stats, counter=self._tm_read_retries,
            )
        self._cmt[lpn] = False  # clean

    def _writeback_tvpn(self, tvpn: int):
        """Generator: persist one translation page (read-modify-write),
        cleaning every dirty CMT entry it covers (batching optimisation)."""
        if self._tp_exists(tvpn):
            self.stats.map_reads += 1
            yield from read_page_with_retry(
                self.mapping.lookup(self._tp_lpn(tvpn)),
                stats=self.stats, counter=self._tm_read_retries,
            )
        self.stats.map_programs += 1
        # The translation-page program runs under the adopting host
        # request but is device overhead, not host data: stamp it with
        # the ``map`` data class so the WA ledger counts it as physical-
        # only (the executor adopts this chain under the request ctx, so
        # blame charging is unchanged).
        yield from tag_commands(
            self.space.write(self._tp_lpn(tvpn), data=("TP", tvpn)),
            OpContext("host", data_class="map"),
        )
        low = tvpn * self.entries_per_tp
        high = low + self.entries_per_tp
        for cached_lpn in list(self._cmt):
            if low <= cached_lpn < high and self._cmt[cached_lpn]:
                self._cmt[cached_lpn] = False

    # -- GC integration ------------------------------------------------------------

    def _gc_rebind(self, moved: List[Tuple[int, int]]):
        """Generator hook: GC moved data pages; persist their new homes.

        Cached entries are merely marked dirty (their write-back is
        deferred and batched); uncached entries force a translation-page
        read-modify-write right now, grouped per translation page.
        """
        for lpn, __ in moved:
            if lpn >= self.logical_pages:
                continue  # translation page: GTD updated in place, free
            if lpn in self._cmt:
                self._cmt[lpn] = True
            else:
                self._pending_tvpns.add(self._tvpn_of(lpn))
        if self._rebind_active:
            # Nested GC (triggered by a TP write below): record only; the
            # outermost rebind drains the set.  Keeps GC iterative.
            return
        self._rebind_active = True
        try:
            while self._pending_tvpns:
                tvpn = self._pending_tvpns.pop()
                yield from self._writeback_tvpn(tvpn)
        finally:
            self._rebind_active = False

    # -- introspection ---------------------------------------------------------------

    @property
    def maintenance_active(self) -> bool:
        return self.space.maintenance_active

    @property
    def cmt_hit_ratio(self) -> float:
        total = self.cmt_hits + self.cmt_misses
        return self.cmt_hits / total if total else 0.0

    def health_snapshot(self) -> dict:
        out = super().health_snapshot()
        out["cmt"] = {
            "entries": len(self._cmt),
            "capacity": self.cmt_entries,
            "hits": self.cmt_hits,
            "misses": self.cmt_misses,
            "hit_ratio": round(self.cmt_hit_ratio, 4),
        }
        out["occupancy"] = self.space.occupancy()
        return out
