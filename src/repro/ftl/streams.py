"""Write-stream taxonomy: host data classes mapped to allocation points.

The NoFTL premise (PAPER.md §3) is that the DBMS *knows* what it writes.
PR 8's :class:`~repro.telemetry.health.WriteAmplificationLedger` made
that knowledge measurable (every program classified WAL / heap / btree /
map / temp / recovery); this module makes it *actionable*: each data
class gets its own named allocation point per plane, so blocks fill with
single-class data and GC never co-locates a short-lived WAL segment with
a cold heap page.  "Enlightening Flash Storage to Stream Writes by
Objects" (PAPERS.md) quantifies the win; ``repro.bench.streams`` gates
it here.

Three namespaces, all plain strings used as keys of a plane's
``active`` dict:

* the legacy temperature streams ``"hot"`` / ``"cold"`` (streams-off
  mode, bit-identical to every pre-streams rig);
* one foreground stream per data class — heap splits into
  ``heap-hot`` / ``heap-cold`` driven by buffer-pool reference heat;
* one GC stream per class (``<class>@gc``): victims relocate into their
  *own class's* GC frontier, never into a foreground write point, so
  generational separation survives relocation (the segregation
  invariant DESIGN.md §14 states).

Classes are also encoded as small integers for the per-lpn class table
(:attr:`~repro.ftl.base.MappingState.lpn_class`) and the OOB ``cls``
stamp that lets :meth:`~repro.core.manager.NoFTLStorageManager.mount`
re-derive per-stream frontiers after a power cut.  Code 0 means
"unknown / untracked" so a zero-filled table is the correct cold state.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CLASS_CODES",
    "CODE_CLASSES",
    "FOREGROUND_STREAMS",
    "GC_SUFFIX",
    "class_code_of_stream",
    "gc_stream_of_code",
    "stream_for",
]

#: data class -> OOB / lpn_class code.  0 is reserved for "unknown".
CLASS_CODES = {
    "wal": 1,
    "heap": 2,
    "btree": 3,
    "map": 4,
    "temp": 5,
    "recovery": 6,
}

#: code -> data class (inverse of :data:`CLASS_CODES`).
CODE_CLASSES = {code: cls for cls, code in CLASS_CODES.items()}

#: Suffix separating a class's GC frontier from its foreground stream.
GC_SUFFIX = "@gc"

#: Foreground stream names per class code (heap defaults to its hot
#: half; the hint-driven split happens in :func:`stream_for`).
FOREGROUND_STREAMS = {
    1: "wal",
    2: "heap-hot",
    3: "btree",
    4: "map",
    5: "temp",
    6: "recovery",
}


def stream_for(data_class: Optional[str], hint: str) -> str:
    """Foreground stream for a classified host write.

    ``heap`` splits by the buffer pool's temperature ``hint`` (reference
    heat); every other class gets one stream.  An unclassified write
    falls back on the legacy temperature streams, so partially stamped
    traffic degrades to hot/cold separation instead of mixing classes.
    """
    if data_class is None or data_class == "unknown":
        return hint
    if data_class == "heap":
        return "heap-cold" if hint == "cold" else "heap-hot"
    return data_class


def class_code_of_stream(stream: str) -> int:
    """Class code a stream's blocks will hold (0 for the legacy
    hot/cold streams, whose blocks are class-untracked)."""
    if stream.endswith(GC_SUFFIX):
        stream = stream[: -len(GC_SUFFIX)]
    if stream in ("heap-hot", "heap-cold"):
        return CLASS_CODES["heap"]
    return CLASS_CODES.get(stream, 0)


def gc_stream_of_code(code: int) -> str:
    """GC relocation stream for a page of class ``code``.

    Class-tagged pages relocate into their own class's GC frontier;
    untracked pages (code 0 — written before streams were enabled, or
    under the legacy hint path) share one untracked GC stream, which is
    exactly the legacy ``cold`` point.
    """
    cls = CODE_CLASSES.get(code)
    if cls is None:
        return "cold"
    return cls + GC_SUFFIX
