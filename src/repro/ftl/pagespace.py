"""Page-mapped flash space: out-of-place allocation plus garbage collection
over a set of planes.

This is the engine behind both the pure page-level FTL
(:class:`repro.ftl.pagemap.PageMapFTL` — the paper's on-device baseline)
and the NoFTL storage manager (:mod:`repro.core`), which instantiates one
space per physical *region* and drives it with DBMS knowledge (trim hints,
hot/cold streams).

Concurrency note (DES mode): writers into one space are expected to be
serialized by the caller (the NoFTL region lock or the block device's
controller mutex — the paper's "single ASIC controller").  Reads are pure
lookups and may run concurrently.  GC nevertheless double-checks mappings
before rebinding relocated pages, so a read-mostly race cannot lose data.
"""

from __future__ import annotations

import random
from array import array as _array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..flash.commands import (
    EraseBlock,
    Pause,
    ProgramPage,
    stamp_context,
    tag_commands,
)
from ..flash.errors import (
    BlockWornOut,
    DieOutageError,
    FlashError,
    PowerCutError,
    ProgramError,
    UncorrectableError,
)
from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry, OpContext
from .base import (
    UNMAPPED,
    BlockPool,
    FTLStats,
    MappingState,
    VictimBuckets,
    read_page_with_retry,
    relocate_page,
)
from .streams import class_code_of_stream, gc_stream_of_code

__all__ = ["PageMappedSpace", "PlaneId"]

#: (global die index, plane index within die)
PlaneId = Tuple[int, int]

_HOT = "hot"
_COLD = "cold"


class _Plane:
    """Allocation state of one plane.

    ``occupied`` (the GC candidate set) is mirrored into ``buckets``, an
    invalid-count bucket structure giving O(1) greedy victim selection;
    membership changes go through :meth:`occupy`/:meth:`release` so the
    two stay in lockstep and the mapping's per-block watch slot points at
    the right bucket list.
    """

    def __init__(self, plane_id: PlaneId, blocks: Sequence[int],
                 bad_blocks: Iterable[int], mapping: MappingState,
                 pages_per_block: int):
        self.plane_id = plane_id
        bad = set(bad_blocks)
        self.pool = BlockPool(pbn for pbn in blocks if pbn not in bad)
        self.occupied: set = set()
        self.collecting: set = set()
        self.buckets = VictimBuckets(pages_per_block)
        self._mapping = mapping
        # stream -> [pbn, next_offset]; None until first allocation
        self.active: Dict[str, Optional[list]] = {_HOT: None, _COLD: None}
        self.erases_since_wl = 0

    def occupy(self, pbn: int) -> None:
        """A filled block leaves its active point: index it for GC."""
        self.occupied.add(pbn)
        self.buckets.add(pbn, self._mapping.valid_in_block[pbn])
        self._mapping.block_watch[pbn] = self.buckets

    def release(self, pbn: int) -> None:
        """Drop a block from GC candidacy (erase, quarantine, rebuild)."""
        self.occupied.discard(pbn)
        self.buckets.discard(pbn)
        if self._mapping.block_watch[pbn] is self.buckets:
            self._mapping.block_watch[pbn] = None


class PageMappedSpace:
    """Out-of-place page allocation with greedy / cost-benefit GC.

    Parameters
    ----------
    geometry, mapping
        Device shape and the (shared) mapping tables.
    planes
        The planes this space allocates from.  Logical pages are striped
        across them, so consecutive LPNs land on different dies.
    stats
        Counter sink (shared with the owning FTL / storage manager).
    gc_policy
        ``"greedy"`` (min valid pages) or ``"cost_benefit"``
        (valid ratio weighted by block age, Rosenblum-style).
    gc_low_water
        GC runs while a plane's free-block pool is below this level.
    separate_streams
        When True, GC relocations go to a dedicated "cold" active block
        per plane instead of mixing with host writes (hot/cold stream
        separation — ablation E10).
    class_streams
        When True (requires ``separate_streams``), the space accepts one
        named allocation point per data-class stream
        (:mod:`repro.ftl.streams`): host writes carry their class in OOB
        and the per-lpn class table, and GC relocates every valid page
        into *its own class's* GC frontier — never into a foreground
        write point — so blocks stay single-class through relocation.
        Off (the default) is bit-identical to the legacy hot/cold space.
    wear_level_delta
        Static wear-leveling trigger: when the erase-count spread inside a
        plane exceeds this, the coldest occupied block is refreshed.
        ``None`` disables.
    read_retry_limit, outage_retry_limit
        Bounded recovery budgets for host reads and relocations: extra
        read attempts after an ECC failure, and Pause-retry rounds while a
        die is in an outage window.
    scrub_on_retry
        When True, a host read that only succeeded after retries scrubs
        the page — relocates it to a fresh block and marks the old block
        suspect so GC prioritises it.
    metric_prefix
        Namespace for the recovery telemetry counters (``read_retries``,
        ``scrubs``, ``program_remaps``, ``gc.relocation_skips``): ``"ftl"``
        for on-device FTLs, ``"noftl"`` for manager-owned region spaces.
    """

    def __init__(
        self,
        geometry: Geometry,
        mapping: MappingState,
        planes: Sequence[PlaneId],
        stats: FTLStats,
        gc_policy: str = "greedy",
        gc_low_water: int = 2,
        separate_streams: bool = True,
        class_streams: bool = False,
        use_copyback: bool = True,
        wear_level_delta: Optional[int] = None,
        wear_level_check_every: int = 64,
        bad_blocks: Iterable[int] = (),
        placement_divisor: int = 1,
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
        read_retry_limit: int = 4,
        outage_retry_limit: int = 150,
        scrub_on_retry: bool = True,
        metric_prefix: str = "ftl",
    ):
        if gc_policy not in ("greedy", "cost_benefit"):
            raise ValueError(f"unknown gc_policy: {gc_policy!r}")
        if gc_low_water < 2:
            raise ValueError("gc_low_water must be >= 2 (GC needs a spare block)")
        if not planes:
            raise ValueError("a space needs at least one plane")
        self.geometry = geometry
        self.mapping = mapping
        self.stats = stats
        self.gc_policy = gc_policy
        self.gc_low_water = gc_low_water
        self.separate_streams = separate_streams
        if class_streams and not separate_streams:
            raise ValueError("class_streams requires separate_streams")
        self.class_streams = class_streams
        if class_streams:
            mapping.enable_class_tracking()
        #: Plain stream-placement counters (never registered as metrics,
        #: so legacy golden digests are untouched): victim blocks whose
        #: valid pages spanned more than one tracked class, and per-stream
        #: frontiers adopted back from a mount scan.
        self.stream_stats: Dict[str, int] = {
            "victims": 0,
            "mixed_class_victims": 0,
            "frontiers_adopted": 0,
        }
        self.use_copyback = use_copyback
        self.wear_level_delta = wear_level_delta
        self.wear_level_check_every = wear_level_check_every
        if placement_divisor < 1:
            raise ValueError("placement_divisor must be >= 1")
        self.placement_divisor = placement_divisor
        self._rng = rng or random.Random(0)
        bad = set(bad_blocks)
        self._planes: Dict[PlaneId, _Plane] = {}
        for plane_id in planes:
            die, plane = plane_id
            blocks = geometry.blocks_of_plane(die, plane)
            self._planes[plane_id] = _Plane(
                plane_id, blocks, bad, mapping, geometry.pages_per_block
            )
        self.plane_ids: List[PlaneId] = list(planes)
        #: Optional generator hook called after each collected block with the
        #: list of (lpn, dst_ppn) pages it moved.  DFTL uses it to charge
        #: translation-page maintenance for GC-relocated data pages.
        self.rebind_hook = None
        #: Optional plain callback invoked with the pbn of a block that wore
        #: out during erase (NoFTL wires this to its bad-block manager).
        self.on_grown_bad = None
        # Erase-count shadow (the host cannot see array internals; NoFTL
        # tracks wear itself, which is exactly what the paper proposes).
        # Flat, like every other per-block table since the typed-array
        # refactor; only this space's blocks ever increment.
        self.erase_counts = _array("l", [0]) * geometry.total_blocks
        if read_retry_limit < 0 or outage_retry_limit < 0:
            raise ValueError("retry limits must be >= 0")
        self.read_retry_limit = read_retry_limit
        self.outage_retry_limit = outage_retry_limit
        self.scrub_on_retry = scrub_on_retry
        self.metric_prefix = metric_prefix
        #: Blocks that produced a retried-but-recovered read; GC victim
        #: selection prioritises them so suspect media is refreshed soon.
        self.suspect_blocks: set = set()
        #: Blocks quarantined after a program failure or an unreadable GC
        #: page — never erased, never reused.
        self.quarantined_blocks: set = set()

        # Telemetry: GC victim quality, collection/wear-level spans, and
        # back-off waits behind an in-flight collection.
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = trace if trace is not None else EventTrace(clock=self.telemetry.now)
        self._tm_gc_runs = self.telemetry.counter("ftl.gc.collections", layer="ftl")
        self._tm_gc_waits = self.telemetry.counter("ftl.gc.backoff_waits", layer="ftl")
        self._tm_victim_valid = self.telemetry.histogram("ftl.gc.victim_valid", layer="ftl")
        self._tm_gc_us = self.telemetry.histogram("ftl.gc.collect_us", layer="ftl")
        self._tm_wl_us = self.telemetry.histogram("ftl.wl.migrate_us", layer="ftl")
        self._tm_relocations = self.telemetry.counter("ftl.relocations", layer="ftl")
        prefix = metric_prefix
        self._tm_read_retries = self.telemetry.counter(f"{prefix}.read_retries", layer=prefix)
        self._tm_scrubs = self.telemetry.counter(f"{prefix}.scrubs", layer=prefix)
        self._tm_program_remaps = self.telemetry.counter(f"{prefix}.program_remaps", layer=prefix)
        self._tm_relocation_skips = self.telemetry.counter(
            f"{prefix}.gc.relocation_skips", layer=prefix
        )

    # -- placement -----------------------------------------------------------------

    def plane_of_lpn(self, lpn: int) -> PlaneId:
        """Deterministic striping of logical pages across this space's
        planes (die-wise striping when the planes span dies in order).

        ``placement_divisor`` compensates for an outer striping level: a
        region manager that routes ``lpn % n_regions`` to this space passes
        ``n_regions`` so region-local pages still spread over all planes.
        """
        return self.plane_ids[(lpn // self.placement_divisor) % len(self.plane_ids)]

    def free_blocks(self, plane_id: PlaneId) -> int:
        return len(self._planes[plane_id].pool)

    def total_free_blocks(self) -> int:
        return sum(len(plane.pool) for plane in self._planes.values())

    @property
    def maintenance_active(self) -> bool:
        """True while any plane has a collection (GC / wear-level refresh)
        in flight — used by the layers above to classify lock waits as
        queueing-behind-GC."""
        return any(plane.collecting for plane in self._planes.values())

    # -- host operations -------------------------------------------------------------

    def read(self, lpn: int):
        """Generator: read the current version of ``lpn`` (None if never
        written).

        ECC failures are retried with backoff (bounded by
        ``read_retry_limit``); a read that recovers only after retries
        scrubs the page to fresh media.  A persistent media defect
        exhausts the budget and the :class:`UncorrectableError`
        propagates to the host.
        """
        ppn = self.mapping.lookup(lpn)
        if ppn == UNMAPPED:
            return None
        result, retried = yield from read_page_with_retry(
            ppn, stats=self.stats, counter=self._tm_read_retries,
            retries=self.read_retry_limit,
            outage_retries=self.outage_retry_limit,
        )
        if retried and self.scrub_on_retry:
            yield from self._scrub_page(lpn, ppn, result.data)
        return result.data

    def write(self, lpn: int, data=None, stream: str = _HOT):
        """Generator: write ``lpn`` out-of-place, GC-ing first if needed.

        A PAGE PROGRAM failure consumes the target page; the write is
        remapped to a freshly allocated page and the failed block is
        retired (grown bad, valid pages scrubbed out).  Die outages are
        waited out — the rejected command consumed nothing.
        """
        plane_id = self.plane_of_lpn(lpn)
        yield from self.ensure_space(plane_id)
        stream = stream if self.separate_streams else _HOT
        ppn = self._allocate(plane_id, stream)
        # OOB carries the logical page number and a monotonically increasing
        # sequence number, so a cold scan can rebuild the mapping (recovery).
        oob = {"lpn": lpn, "seq": self.mapping.clock + 1}
        if self.class_streams:
            # The class rides in OOB (mount re-derives per-stream
            # frontiers from it) and in the per-lpn table (GC routes
            # relocations by it).
            code = class_code_of_stream(stream)
            if code:
                oob["cls"] = code
            self.mapping.lpn_class[lpn] = code
        ppn = yield from self._program_with_remap(plane_id, stream, ppn, data, oob)
        self.mapping.bind(lpn, ppn)
        return ppn

    def _program_with_remap(self, plane_id: PlaneId, stream: str, ppn: int,
                            data, oob, max_remaps: int = 8):
        """Generator: program ``ppn``, remapping to fresh blocks on
        :class:`ProgramError`.  Returns the ppn that actually holds the
        data."""
        remaps = 0
        waits = 0
        while True:
            try:
                yield ProgramPage(ppn=ppn, data=data, oob=oob)
                return ppn
            except DieOutageError:
                # Rejected before the slot was consumed: retry same ppn.
                waits += 1
                if waits > self.outage_retry_limit:
                    raise
                yield Pause(duration_us=min(50.0 * (2 ** min(waits, 5)), 2000.0))
            except ProgramError:
                remaps += 1
                self.stats.program_remaps += 1
                self._tm_program_remaps.inc()
                if remaps > max_remaps:
                    raise
                failed_pbn = self.geometry.block_of_ppn(ppn)
                self._quarantine_block(plane_id, failed_pbn)
                yield from tag_commands(
                    self._evacuate_block(plane_id, stream, failed_pbn),
                    OpContext("evacuation"),
                )
                ppn = self._allocate(plane_id, stream)

    def _route_maintenance(self, lpn: int, fallback: str):
        """(stream, oob) for relocating ``lpn`` during maintenance work
        (evacuation, scrub).  With class streams the page goes to its own
        class's GC frontier and keeps its class tag in OOB; otherwise it
        takes ``fallback`` (the legacy behaviour)."""
        oob = {"lpn": lpn, "seq": self.mapping.clock + 1}
        if not self.class_streams:
            return fallback, oob
        code = self.mapping.lpn_class[lpn]
        if code:
            oob["cls"] = code
        return gc_stream_of_code(code), oob

    def _quarantine_block(self, plane_id: PlaneId, pbn: int) -> None:
        """Retire a block in place after a failure (no flash I/O).

        Pulled from allocation — active write points abandoned, pool and
        occupied membership dropped — and reported grown-bad exactly once.
        Quarantined blocks are never erased: their programmed pages stay
        readable until the mapping moves or drops them.
        """
        plane = self._planes[plane_id]
        for name, active in plane.active.items():
            if active is not None and active[0] == pbn:
                plane.active[name] = None
        plane.release(pbn)
        plane.pool.remove(pbn)
        self.suspect_blocks.discard(pbn)
        if pbn not in self.quarantined_blocks:
            self.quarantined_blocks.add(pbn)
            self.stats.grown_bad_blocks += 1
            if self.on_grown_bad is not None:
                self.on_grown_bad(pbn)

    def _evacuate_block(self, plane_id: PlaneId, stream: str, pbn: int, max_failures: int = 4):
        """Generator: best-effort scrub of a quarantined block's valid
        pages onto trustworthy media.  Pages that cannot move (pool dry,
        repeated program failures) stay in place — they remain readable,
        just pinned to suspect media."""
        failures = 0
        for offset, lpn in self.mapping.valid_lpns_of_block(pbn):
            src = self.geometry.ppn_of(pbn, offset)
            if self.mapping.lookup(lpn) != src:
                continue
            dst_stream, oob = self._route_maintenance(lpn, stream)
            while True:
                try:
                    dst = self._allocate(plane_id, dst_stream)
                except RuntimeError:
                    return  # no free slots; leave remaining pages pinned
                try:
                    moved = yield from relocate_page(
                        self.geometry, src, dst, self.stats,
                        oob=oob,
                        counter=self._tm_relocations,
                        retries=self.read_retry_limit,
                        outage_retries=self.outage_retry_limit,
                    )
                except ProgramError:
                    # The evacuation destination failed too; quarantine it
                    # and try another block, boundedly.
                    failures += 1
                    self.stats.program_remaps += 1
                    self._tm_program_remaps.inc()
                    self._quarantine_block(plane_id, self.geometry.block_of_ppn(dst))
                    if failures > max_failures:
                        return
                    continue
                if not moved:
                    self._tm_relocation_skips.inc()
                elif self.mapping.lookup(lpn) == src:
                    self.mapping.bind(lpn, dst)
                break

    def _scrub_page(self, lpn: int, src_ppn: int, data):
        """Generator: best-effort relocation of a page whose read needed
        retries.  The source block is marked suspect either way; GC will
        refresh it soon."""
        pbn = self.geometry.block_of_ppn(src_ppn)
        if pbn not in self.quarantined_blocks:
            self.suspect_blocks.add(pbn)
        plane_id = self.plane_of_lpn(lpn)
        stream, oob = self._route_maintenance(
            lpn, _COLD if self.separate_streams else _HOT
        )
        try:
            dst = self._allocate(plane_id, stream)
        except RuntimeError:
            return  # no free slot right now; the suspect mark stands
        try:
            yield stamp_context(ProgramPage(ppn=dst, data=data, oob=oob), OpContext("scrub"))
        except PowerCutError:
            raise  # the whole device is gone, not just this scrub
        except FlashError:
            return  # scrub is advisory; the original page still reads
        # Reads are lock-free: only rebind if the mapping is unchanged.
        if self.mapping.lookup(lpn) == src_ppn:
            self.mapping.bind(lpn, dst)
            self.stats.scrubs += 1
            self._tm_scrubs.inc()

    def trim(self, lpn: int) -> None:
        """Host-side only — deallocating a page costs no flash I/O."""
        self.mapping.unbind(lpn)

    # -- allocation -------------------------------------------------------------------

    def _allocate(self, plane_id: PlaneId, stream: str) -> int:
        plane = self._planes[plane_id]
        # Stream keys grow on demand: the legacy hot/cold points are
        # pre-seeded, class streams appear the first time traffic of that
        # class reaches this plane.
        active = plane.active.get(stream)
        if active is None or active[1] >= self.geometry.pages_per_block:
            if active is not None:
                plane.occupy(active[0])
            pbn = plane.pool.take()
            active = [pbn, 0]
            plane.active[stream] = active
        ppn = self.geometry.ppn_of(active[0], active[1])
        active[1] += 1
        return ppn

    # -- garbage collection -------------------------------------------------------------

    def ensure_space(self, plane_id: PlaneId):
        """Generator: run GC until the plane has breathing room.

        One collection per plane at a time: concurrent operations that
        find a collection in flight back off with
        :class:`~repro.flash.commands.Pause` instead of starting a second
        victim — several parallel collections would drain the free pool
        faster than erases replenish it.
        """
        plane = self._planes[plane_id]
        attempts = 0
        while len(plane.pool) < self.gc_low_water:
            if plane.collecting:
                self._tm_gc_waits.inc()
                # This wait exists only because GC holds the plane: blame
                # it on GC by tagging the pause with a maintenance origin.
                yield stamp_context(Pause(duration_us=100.0), OpContext("gc"))
                attempts += 1
                if attempts > 64 * plane.pool.initial_size:
                    raise RuntimeError(f"plane {plane_id}: GC starvation while waiting")
                continue
            victim = self._select_victim(plane)
            if victim is None:
                if len(plane.pool) == 0:
                    raise RuntimeError(
                        f"plane {plane_id}: no free blocks and no GC victim "
                        "(over-provisioning too small?)"
                    )
                break
            yield from self._collect(plane, victim)
            attempts += 1
            if attempts > 64 * plane.pool.initial_size:
                raise RuntimeError(f"plane {plane_id}: GC not converging")
        if self.wear_level_delta is not None:
            yield from self._maybe_wear_level(plane)

    def _select_victim(self, plane: _Plane) -> Optional[int]:
        pages_per_block = self.geometry.pages_per_block
        # Refresh suspect media first, whatever the policy says: among
        # this plane's suspect occupied blocks, take the fewest-valid one
        # (ties toward the lowest pbn — a pure function of device state).
        if self.suspect_blocks:
            best = None
            best_valid = None
            for pbn in sorted(self.suspect_blocks):
                if pbn not in plane.occupied or pbn in plane.collecting:
                    continue
                valid = self.mapping.valid_in_block[pbn]
                if valid >= pages_per_block:
                    continue
                if best_valid is None or valid < best_valid:
                    best, best_valid = pbn, valid
            if best is not None:
                return best
        if self.gc_policy == "greedy":
            # O(1) pick from the invalid-count bucket lists: lowest valid
            # count wins, FIFO within a bucket.
            return plane.buckets.min_victim(skip=plane.collecting)
        # Cost-benefit weighs every block's age: linear scan (kept for the
        # Rosenblum-policy ablation; greedy is the paper's default).
        best = None
        best_score = None
        for pbn in plane.occupied:
            if pbn in plane.collecting:
                continue
            valid = self.mapping.valid_in_block[pbn]
            if valid >= pages_per_block:
                continue  # nothing to gain
            utilisation = valid / pages_per_block
            age = self.mapping.clock - self.mapping.block_write_time[pbn]
            # benefit/cost: free space gained per copy work, times age
            score = -((1.0 - utilisation) / (2.0 * utilisation + 1e-9)) * (age + 1)
            if best_score is None or score < best_score:
                best, best_score = pbn, score
        return best

    def _collect(self, plane: _Plane, victim: int, origin: str = "gc", parent=None):
        """Generator: relocate the victim's valid pages, erase it.

        Every flash command issued here — relocations, erases, and any
        translation-page maintenance done by the ``rebind_hook`` — is
        tagged with a fresh maintenance context (``origin``), so the
        executor charges its time to the GC bucket of whichever host
        request ended up running it inline.
        """
        plane.collecting.add(victim)
        moved = []
        valid_count = self.mapping.valid_in_block[victim]
        self._tm_gc_runs.inc()
        self._tm_victim_valid.observe(valid_count)
        ctx = OpContext(origin)
        with self.trace.span("gc.collect", histogram=self._tm_gc_us,
                             parent=parent, ctx=ctx,
                             plane=plane.plane_id, victim=victim,
                             valid=valid_count) as span:
            yield from tag_commands(self._collect_body(plane, victim, moved), ctx)
            span.note(moved=len(moved))
        if self.rebind_hook is not None and moved:
            yield from tag_commands(self.rebind_hook(moved), ctx)

    def _collect_body(self, plane: _Plane, victim: int, moved: list):
        skipped = 0
        class_streams = self.class_streams
        lpn_class = self.mapping.lpn_class if class_streams else None
        classes_seen = set()
        self.stream_stats["victims"] += 1
        try:
            for offset, lpn in self.mapping.valid_lpns_of_block(victim):
                src = self.geometry.ppn_of(victim, offset)
                if self.mapping.lookup(lpn) != src:
                    continue  # overwritten since selection
                if class_streams:
                    # Segregation invariant: a relocated page lands in
                    # its *own class's* GC frontier, never a foreground
                    # write point — generational separation survives GC.
                    code = lpn_class[lpn]
                    if code:
                        classes_seen.add(code)
                    gc_stream = gc_stream_of_code(code)
                else:
                    gc_stream = _COLD if self.separate_streams else _HOT
                dst_failures = 0
                while True:
                    dst = self._allocate(plane.plane_id, gc_stream)
                    # OOB travels with the page (copyback preserves it),
                    # keeping the recovery sequence number of the original
                    # write.
                    try:
                        if self.use_copyback:
                            ok = yield from relocate_page(
                                self.geometry, src, dst, self.stats,
                                counter=self._tm_relocations,
                                retries=self.read_retry_limit,
                                outage_retries=self.outage_retry_limit,
                            )
                        else:
                            ok = True
                            try:
                                result, __ = yield from read_page_with_retry(
                                    src, stats=self.stats,
                                    counter=self._tm_read_retries,
                                    retries=self.read_retry_limit,
                                    outage_retries=self.outage_retry_limit,
                                )
                            except UncorrectableError:
                                self.stats.relocation_skips += 1
                                ok = False
                            if ok:
                                yield ProgramPage(ppn=dst, data=result.data, oob=result.oob)
                                self.stats.gc_relocations += 1
                                self._tm_relocations.inc()
                                self.stats.gc_reads += 1
                                self.stats.gc_programs += 1
                    except ProgramError:
                        # The relocation destination failed to program; the
                        # slot is consumed and its block is untrustworthy.
                        # Quarantine it and redo the copy elsewhere.
                        dst_failures += 1
                        self.stats.program_remaps += 1
                        self._tm_program_remaps.inc()
                        self._quarantine_block(plane.plane_id, self.geometry.block_of_ppn(dst))
                        if dst_failures > 4:
                            raise
                        continue
                    break
                if not ok:
                    # Unreadable even after retries: record and keep the
                    # mapping pointing at the victim (the host sees the
                    # media error on its next read).  NAND allows skipping
                    # the allocated dst page, so the hole is legal.
                    skipped += 1
                    self._tm_relocation_skips.inc()
                    continue
                if self.mapping.lookup(lpn) == src:
                    self.mapping.bind(lpn, dst)
                    moved.append((lpn, dst))
                # else: host overwrote mid-copy; the copy is stillborn and
                # stays invalid in the new block.
            if skipped:
                # An erase would destroy the unreadable-but-mapped pages'
                # last trace; quarantine the victim instead and report it
                # grown bad so spare accounting sees the capacity loss.
                plane.release(victim)
                self.suspect_blocks.discard(victim)
                self.quarantined_blocks.add(victim)
                self.stats.grown_bad_blocks += 1
                if self.on_grown_bad is not None:
                    self.on_grown_bad(victim)
            else:
                yield from self._erase_into_pool(plane, victim)
            if len(classes_seen) > 1:
                # Heap/wal (or any cross-class) co-location: the thing
                # write streams exist to eliminate in steady state.
                self.stream_stats["mixed_class_victims"] += 1
        finally:
            plane.collecting.discard(victim)

    def _erase_into_pool(self, plane: _Plane, pbn: int):
        plane.release(pbn)
        waits = 0
        while True:
            try:
                yield EraseBlock(pbn=pbn)
                break
            except DieOutageError:
                # Nothing was erased; wait out the window and retry.
                waits += 1
                if waits > self.outage_retry_limit:
                    raise
                yield Pause(duration_us=min(50.0 * (2 ** min(waits, 5)), 2000.0))
            except BlockWornOut:
                # Wear-out or injected erase failure: the array marked the
                # block bad; retire it from this space.
                self.suspect_blocks.discard(pbn)
                self.quarantined_blocks.add(pbn)
                self.stats.grown_bad_blocks += 1
                if self.on_grown_bad is not None:
                    self.on_grown_bad(pbn)
                return
        self.suspect_blocks.discard(pbn)
        self.stats.gc_erases += 1
        self.erase_counts[pbn] += 1
        plane.pool.give(pbn)

    # -- wear leveling -----------------------------------------------------------------

    def _maybe_wear_level(self, plane: _Plane):
        """Static wear leveling: refresh the coldest occupied block when the
        in-plane erase spread exceeds the threshold, so its low-wear block
        re-enters the pool and absorbs future hot writes."""
        plane.erases_since_wl += 1
        if plane.erases_since_wl < self.wear_level_check_every:
            return
        plane.erases_since_wl = 0
        if not plane.occupied or len(plane.pool) < self.gc_low_water:
            return
        erase_counts = self.erase_counts
        counts = [erase_counts[pbn] for pbn in plane.occupied]
        pool_counts = [erase_counts[pbn] for pbn in plane.pool.peek_free()]
        spread = max(counts + pool_counts) - min(counts)
        if spread <= self.wear_level_delta:
            return
        coldest = min(plane.occupied, key=erase_counts.__getitem__)
        self.stats.wl_moves += 1
        with self.trace.span("wl.migrate", histogram=self._tm_wl_us,
                             plane=plane.plane_id, block=coldest,
                             spread=spread) as span:
            yield from self._collect(plane, coldest, origin="wear-level", parent=span)

    def rebuild_allocation(self, programmed_blocks, bad_blocks=None,
                           quarantined=(), frontiers=None) -> None:
        """Crash recovery: reset allocation state from a scan result.

        ``programmed_blocks`` is the set of flat block numbers observed to
        contain at least one programmed page.  Those blocks become
        *occupied* (GC reclaims them as their pages die); everything else
        returns to the free pools.  Active write points restart fresh —
        partially filled blocks simply retire early, as on real FTL
        power-up scans — **except** blocks named in ``frontiers``.

        ``frontiers`` (write-streams mode) maps ``pbn -> (stream,
        next_offset)`` for partially filled single-class blocks the mount
        scan identified as resumable write points.  Each becomes the
        plane's active block for that stream again instead of retiring
        into ``occupied``: without this, the first post-mount writes of
        *every* class would land in freshly taken blocks while the
        half-full class blocks retire — and, worse, a space rebuilt
        without stream knowledge would funnel all classes back through
        one fresh frontier, silently undoing the class separation the
        crash interrupted.

        ``bad_blocks``, when given, is the full authoritative bad set
        (factory + grown) rebuilt by the mount scan: those blocks enter
        neither pool nor occupied.  When omitted (legacy in-place
        recovery) the pre-crash pool membership stands in for it.
        ``quarantined`` re-seeds :attr:`quarantined_blocks` from scan
        evidence; the pre-crash ``suspect_blocks``/``quarantined_blocks``
        sets are host-RAM-only state and are always cleared — trusting
        them after a crash is exactly the bug this parameter fixes
        (a pre-crash quarantine silently forgotten, or worse, stale
        entries shadowing healthy blocks).
        """
        from .base import BlockPool

        programmed = set(programmed_blocks)
        my_blocks: set = set()
        watch = self.mapping.block_watch
        for plane in self._planes.values():
            die, plane_index = plane.plane_id
            blocks = self.geometry.blocks_of_plane(die, plane_index)
            my_blocks.update(blocks)
            if bad_blocks is None:
                known = set(plane.pool.peek_free()) | plane.occupied
                for active in plane.active.values():
                    if active is not None:
                        known.add(active[0])
                usable = [pbn for pbn in blocks if pbn in known]
            else:
                usable = [pbn for pbn in blocks if pbn not in bad_blocks]
            # Re-seed the GC victim index from the freshly swapped-in
            # mapping tables: block order (ascending pbn) fixes the FIFO
            # tie-break deterministically from device state alone.
            plane.occupied = set()
            plane.buckets.clear()
            for pbn in blocks:
                if watch[pbn] is plane.buckets:
                    watch[pbn] = None
            adopted = {}
            if frontiers:
                for pbn in usable:
                    entry = frontiers.get(pbn)
                    if entry is not None and entry[0] not in adopted:
                        adopted[entry[0]] = (pbn, entry[1])
            adopted_blocks = {pbn for pbn, __ in adopted.values()}
            plane.pool = BlockPool(pbn for pbn in usable if pbn not in programmed)
            for pbn in usable:
                if pbn in programmed and pbn not in adopted_blocks:
                    plane.occupy(pbn)
            plane.active = {key: None for key in plane.active}
            for stream, (pbn, next_offset) in adopted.items():
                plane.active[stream] = [pbn, next_offset]
            self.stream_stats["frontiers_adopted"] += len(adopted)
            plane.collecting = set()
        self.suspect_blocks.clear()
        self.quarantined_blocks = {pbn for pbn in quarantined if pbn in my_blocks}

    # -- introspection -----------------------------------------------------------------

    def occupancy(self) -> dict:
        return {
            "planes": len(self._planes),
            "free_blocks": self.total_free_blocks(),
            "occupied_blocks": sum(
                len(plane.occupied) for plane in self._planes.values()
            ),
            "valid_pages": self.mapping.total_valid(),
            "suspect_blocks": len(self.suspect_blocks),
            "quarantined_blocks": len(self.quarantined_blocks),
        }

    def wear_shadow(self) -> dict:
        """Host-side erase-count shadow (what the wear-leveler steers by).

        The array's flat ``erase_counts`` are the device truth; this is
        the host's view over the same flat layout (entries stay zero for
        blocks this space never erased).  The health report carries both
        so drift between them is visible.
        """
        counts = sorted(count for count in self.erase_counts if count)
        if not counts:
            return {"blocks_seen": 0, "min": 0, "max": 0, "mean": 0.0}
        return {
            "blocks_seen": len(counts),
            "min": counts[0],
            "max": counts[-1],
            "mean": round(sum(counts) / len(counts), 4),
        }
