"""LazyFTL: page-level mapping with lazy batch-persisted translation
updates (Ma, Feng, Li — SIGMOD 2011).

The paper's Section 3.1 names LazyFTL, next to DFTL, as state-of-the-art
page-level mapping under device RAM pressure.  Where DFTL pays a
translation-page read-modify-write whenever a dirty mapping falls out of
its cache, LazyFTL keeps the *recent* mappings in a small in-RAM update
table (UMT) and persists them in batches, grouped by translation page —
amortizing the mapping I/O that makes DFTL slow:

* host writes land in update blocks; their mappings go to the UMT
  (RAM only, no flash I/O);
* when the UMT outgrows its budget, the oldest entries are flushed in
  one pass: one translation-page read-modify-write per *translation
  page*, not per mapping;
* GC relocations also just touch the UMT — persistence stays lazy;
* reads consult the UMT first; misses read the on-flash translation
  page (cached clean, like DFTL's CMT, since reads must still find
  cold mappings).

Shares the allocation/GC engine and the extended-logical-space encoding
of translation pages with :class:`~repro.ftl.dftl.DFTL`, so the two
differ only in their mapping-persistence policy — exactly the comparison
the literature draws.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from ..flash.geometry import Geometry
from ..telemetry import EventTrace, MetricsRegistry
from .base import UNMAPPED, BaseFTL, MappingState, read_page_with_retry
from .pagespace import PageMappedSpace

__all__ = ["LazyFTL"]


class LazyFTL(BaseFTL):
    """Page-mapping FTL with lazy, batched translation persistence.

    Parameters
    ----------
    umt_entries
        Budget of the in-RAM update mapping table.  When exceeded, the
        whole table is flushed batch-wise (grouped per translation page).
    read_cache_entries
        Clean mapping cache for reads (misses cost one TP read).
    entries_per_translation_page
        Mapping slots per translation page.
    """

    def __init__(
        self,
        geometry: Geometry,
        op_ratio: float = 0.1,
        umt_entries: int = 2048,
        read_cache_entries: int = 2048,
        entries_per_translation_page: Optional[int] = None,
        gc_policy: str = "greedy",
        gc_low_water: int = 2,
        bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        super().__init__(geometry, op_ratio, telemetry=telemetry, trace=trace)
        if umt_entries < 1 or read_cache_entries < 1:
            raise ValueError("cache budgets must be >= 1")
        self.umt_entries = umt_entries
        self.read_cache_entries = read_cache_entries
        if entries_per_translation_page is None:
            entries_per_translation_page = max(1, geometry.page_bytes // 8)
        self.entries_per_tp = entries_per_translation_page
        self.num_tvpns = -(-self.logical_pages // self.entries_per_tp)

        extended = self.logical_pages + self.num_tvpns
        self.mapping = MappingState(geometry, extended)
        planes = [
            (die, plane)
            for die in range(geometry.total_dies)
            for plane in range(geometry.planes_per_die)
        ]
        self.space = PageMappedSpace(
            geometry,
            self.mapping,
            planes,
            self.stats,
            gc_policy=gc_policy,
            gc_low_water=gc_low_water,
            separate_streams=True,
            bad_blocks=bad_blocks,
            rng=rng,
            telemetry=self.telemetry,
            trace=self.trace,
        )
        self.space.rebind_hook = self._gc_rebind

        # Update Mapping Table: lpns whose newest mapping is RAM-only.
        self._umt: "OrderedDict[int, bool]" = OrderedDict()
        # Clean read cache: lpn -> True (presence means "mapping known
        # without flash I/O"; the authoritative ppn is in self.mapping).
        self._read_cache: "OrderedDict[int, bool]" = OrderedDict()
        self._flushing = False
        self.umt_flushes = 0
        self.read_cache_hits = 0
        self.read_cache_misses = 0
        self._tm_rc_hits = self.telemetry.counter(
            "ftl.map_cache", layer="ftl", ftl="LazyFTL", event="hit")
        self._tm_rc_misses = self.telemetry.counter(
            "ftl.map_cache", layer="ftl", ftl="LazyFTL", event="miss")

    # -- address helpers -------------------------------------------------------

    def _tvpn_of(self, lpn: int) -> int:
        return lpn // self.entries_per_tp

    def _tp_lpn(self, tvpn: int) -> int:
        return self.logical_pages + tvpn

    def _tp_exists(self, tvpn: int) -> bool:
        return self.mapping.lookup(self._tp_lpn(tvpn)) != UNMAPPED

    # -- host interface ----------------------------------------------------------

    def read(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        if lpn in self._umt or lpn in self._read_cache:
            self.read_cache_hits += 1
            self._tm_rc_hits.inc()
            if lpn in self._read_cache:
                self._read_cache.move_to_end(lpn)
        else:
            self.read_cache_misses += 1
            self._tm_rc_misses.inc()
            tvpn = self._tvpn_of(lpn)
            if self._tp_exists(tvpn):
                self.stats.map_reads += 1
                yield from read_page_with_retry(
                    self.mapping.lookup(self._tp_lpn(tvpn)),
                    stats=self.stats, counter=self._tm_read_retries,
                )
            self._cache_clean(lpn)
        ppn = self.mapping.lookup(lpn)
        if ppn == UNMAPPED:
            return None
        result, __ = yield from read_page_with_retry(
            ppn, stats=self.stats, counter=self._tm_read_retries
        )
        return result.data

    def write(self, lpn: int, data=None):
        self._check_lpn(lpn)
        self.stats.host_writes += 1
        yield from self.space.write(lpn, data)
        self._note_update(lpn)
        yield from self._maybe_flush_umt()

    def trim(self, lpn: int):
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        if self.mapping.lookup(lpn) != UNMAPPED:
            self.mapping.unbind(lpn)
            self._note_update(lpn)
            yield from self._maybe_flush_umt()

    def is_fast_read(self, lpn: int) -> bool:
        return lpn in self._umt or lpn in self._read_cache

    # -- lazy persistence machinery ------------------------------------------------

    def _note_update(self, lpn: int) -> None:
        self._umt[lpn] = True
        self._umt.move_to_end(lpn)

    def _cache_clean(self, lpn: int) -> None:
        self._read_cache[lpn] = True
        while len(self._read_cache) > self.read_cache_entries:
            self._read_cache.popitem(last=False)

    def _maybe_flush_umt(self):
        """Generator: batch-persist when the UMT exceeds its budget.

        All pending mappings are grouped by translation page; each group
        costs one TP read-modify-write regardless of how many mappings it
        carries — LazyFTL's amortization.
        """
        if len(self._umt) <= self.umt_entries or self._flushing:
            return
        self._flushing = True
        try:
            self.umt_flushes += 1
            pending = list(self._umt.keys())
            by_tvpn = {}
            for lpn in pending:
                by_tvpn.setdefault(self._tvpn_of(lpn), []).append(lpn)
            for tvpn, lpns in sorted(by_tvpn.items()):
                if self._tp_exists(tvpn):
                    self.stats.map_reads += 1
                    yield from read_page_with_retry(
                        self.mapping.lookup(self._tp_lpn(tvpn)),
                        stats=self.stats, counter=self._tm_read_retries,
                    )
                self.stats.map_programs += 1
                yield from self.space.write(self._tp_lpn(tvpn), data=("TP", tvpn))
                for lpn in lpns:
                    self._umt.pop(lpn, None)
                    self._cache_clean(lpn)
        finally:
            self._flushing = False

    # -- GC integration -------------------------------------------------------------

    def _gc_rebind(self, moved: List[Tuple[int, int]]):
        """Generator hook: GC moved pages — record lazily, no flash I/O
        now (the defining difference from DFTL's eager write-back)."""
        for lpn, __ in moved:
            if lpn >= self.logical_pages:
                continue  # translation page: GTD update, free
            self._note_update(lpn)
        yield from self._maybe_flush_umt()

    # -- introspection ----------------------------------------------------------------

    @property
    def maintenance_active(self) -> bool:
        return self.space.maintenance_active

    @property
    def umt_fill(self) -> int:
        return len(self._umt)

    def snapshot(self) -> dict:
        data = self.stats.snapshot()
        data.update({
            "umt_fill": self.umt_fill,
            "umt_flushes": self.umt_flushes,
            "read_cache_hits": self.read_cache_hits,
            "read_cache_misses": self.read_cache_misses,
        })
        return data
