"""Flash device front-ends.

Two ways of driving one :class:`~repro.flash.array.FlashArray`:

* :class:`SyncFlashDevice` executes commands immediately.  Used for
  off-line trace replay (the paper's Figure 3 methodology) and for unit
  tests, where only command *counts* and summed latency matter.

* :class:`SimFlashDevice` executes commands inside the DES: each global
  die is a capacity-1 resource (dies execute one command at a time) and
  each channel bus is a capacity-1 resource held only during data
  transfer.  This is what exposes native flash parallelism — commands to
  different dies overlap, commands to one die queue up — the effect the
  paper's die-wise db-writer experiment (Figure 4) lives on.
"""

from __future__ import annotations

from typing import List

from ..sim import LatencyRecorder, Resource, Simulator
from ..telemetry import MAINTENANCE_ORIGINS
from .array import FlashArray
from .commands import (
    CommandResult,
    Copyback,
    EraseBlock,
    FlashCommand,
    Identify,
    Pause,
    ProgramPage,
    ReadOob,
    ReadPage,
)

__all__ = ["SyncFlashDevice", "SimFlashDevice"]

# Phase-model kinds, resolved once per command type (exact-type dict hit
# on the hot path, isinstance walk only for subclasses).
_INSTANT, _READ, _PROGRAM, _LATENCY = range(4)
_PHASE_OF_TYPE = {
    ReadPage: _READ,
    ProgramPage: _PROGRAM,
    EraseBlock: _LATENCY,
    Copyback: _LATENCY,
    ReadOob: _LATENCY,
    Identify: _INSTANT,
    Pause: _INSTANT,
}


def _phase_of(command) -> int:
    kind = _PHASE_OF_TYPE.get(type(command))
    if kind is not None:
        return kind
    if isinstance(command, (Identify, Pause)):
        return _INSTANT
    if isinstance(command, ReadPage):
        return _READ
    if isinstance(command, ProgramPage):
        return _PROGRAM
    return _LATENCY


class SyncFlashDevice:
    """Zero-wait command execution with per-die busy-time bookkeeping.

    ``elapsed_us`` approximates wall-clock time of the replayed command
    stream under perfect die pipelining (max of per-die busy times);
    ``serial_us`` is the fully serialized time.  Real throughput lies in
    between; the DES front-end is authoritative when timing matters.
    """

    def __init__(self, array: FlashArray):
        self.array = array
        self.geometry = array.geometry
        self.telemetry = array.telemetry
        self.die_busy_us: List[float] = [0.0] * array.geometry.total_dies
        self.serial_us = 0.0

    def execute(self, command: FlashCommand) -> CommandResult:
        result = self.array.apply(command)
        self.serial_us += result.latency_us
        if result.die is not None:
            self.die_busy_us[result.die] += result.latency_us
        return result

    @property
    def elapsed_us(self) -> float:
        return max(self.die_busy_us) if self.die_busy_us else 0.0

    @property
    def counters(self):
        return self.array.counters


class SimFlashDevice:
    """DES command execution with die and channel contention.

    ``execute`` is a generator to be driven from inside a DES process
    (``result = yield from device.execute(cmd)``).

    Phase model per command (die held throughout; channel held only for
    the transfer leg, concurrently with the die):

    * READ:    die busy tR, then channel busy for the page transfer;
    * PROGRAM: channel busy for the transfer, then die busy tPROG;
    * ERASE / COPYBACK: die busy only (no user-data transfer — exactly why
      the paper's GC prefers copyback);
    * OOB read: die busy, negligible transfer folded in.
    """

    def __init__(self, sim: Simulator, array: FlashArray):
        self.sim = sim
        self.array = array
        self.geometry = array.geometry
        self.die_resources: List[Resource] = [
            Resource(sim, capacity=1) for __ in range(self.geometry.total_dies)
        ]
        self.channel_resources: List[Resource] = [
            Resource(sim, capacity=1) for __ in range(self.geometry.channels)
        ]
        self.latency = LatencyRecorder("flash-commands")
        self._die_busy_us: List[float] = [0.0] * self.geometry.total_dies
        # Cumulative die-held time split by who held it (host work vs
        # maintenance origins).  A waiter samples the maintenance column
        # before and after its queue wait: the delta is the part of its
        # wait spent behind GC/merges/wear-leveling — the paper's "blocked
        # behind garbage collection" effect, measured per command.
        self._die_busy_by_class: List[dict] = [
            {"host": 0.0, "maintenance": 0.0}
            for __ in range(self.geometry.total_dies)
        ]
        # Telemetry shares the array's registry; simulated time becomes the
        # clock for every span/histogram downstream of this device.
        self.telemetry = array.telemetry
        self.telemetry.set_clock(lambda: sim.now)
        self._tm_queue_wait = [
            self.telemetry.histogram("flash.queue_wait_us", layer="flash", die=die)
            for die in range(self.geometry.total_dies)
        ]
        self._tm_service = self.telemetry.histogram("flash.service_us", layer="flash")
        # TimingSpec is frozen, so the per-phase delays are constants of
        # this device; computing them per command showed up in profiles.
        timing = array.timing
        page_bytes = self.geometry.page_bytes
        self._read_sense_us = timing.cmd_overhead_us + timing.read_us
        self._page_transfer_us = timing.transfer_us(page_bytes)
        self._program_transfer_us = (timing.cmd_overhead_us + self._page_transfer_us)
        self._program_cell_us = timing.program_us

    @property
    def counters(self):
        return self.array.counters

    def die_utilization(self) -> List[float]:
        """Per-die busy fraction of elapsed simulated time."""
        now = self.sim.now
        if now <= 0:
            return [0.0] * len(self._die_busy_us)
        return [busy / now for busy in self._die_busy_us]

    def execute(self, command: FlashCommand):
        """DES generator executing one command with resource contention."""
        kind = _phase_of(command)
        if kind == _INSTANT:
            result = self.array.apply(command)
            yield self.sim.timeout(result.latency_us)
            return result

        die = self.array.die_of_command(command)
        start = self.sim.now
        die_resource = self.die_resources[die]
        busy_by_class = self._die_busy_by_class[die]
        maintenance_before = busy_by_class["maintenance"]
        ctx = command.ctx
        is_maintenance = ctx is not None and ctx.origin in MAINTENANCE_ORIGINS
        yield die_resource.request()
        acquired = self.sim.now
        wait = acquired - start
        self._tm_queue_wait[die].observe(wait)
        behind_gc = 0.0
        if wait > 0:
            behind_gc = min(wait, busy_by_class["maintenance"] - maintenance_before)
        try:
            # State transition happens when the die starts the command;
            # per-die FIFO queuing makes this consistent with issue order.
            result = self.array.apply(command)
            channel = self.channel_resources[self.geometry.channel_of_die(die)]
            if kind == _READ:
                yield self.sim.timeout(self._read_sense_us)
                yield channel.request()
                try:
                    yield self.sim.timeout(self._page_transfer_us)
                finally:
                    channel.release()
            elif kind == _PROGRAM:
                yield channel.request()
                try:
                    yield self.sim.timeout(self._program_transfer_us)
                finally:
                    channel.release()
                yield self.sim.timeout(self._program_cell_us)
            else:  # erase / copyback / OOB: die busy, no user-data transfer
                yield self.sim.timeout(result.latency_us)
            # Injected latency spikes: the array reports the extra service
            # time; the die stays busy for it in simulated time too.
            fault_extra = result.extra.get("fault_extra_us", 0.0)
            if fault_extra:
                yield self.sim.timeout(fault_extra)
        finally:
            die_resource.release()
            held = self.sim.now - acquired
            self._die_busy_us[die] += held
            busy_by_class["maintenance" if is_maintenance else "host"] += held
        total = self.sim.now - start
        self.latency.record(total)
        self._tm_service.observe(total)
        result.extra["observed_us"] = total
        if wait > 0:
            result.extra["queue_wait_us"] = wait
            if behind_gc > 0:
                result.extra["queue_gc_us"] = behind_gc
        return result
