"""Physical NAND geometry and address arithmetic.

The paper's native flash interface exposes *physical* addresses to the host
(``READ(PhysicalBlockNum)`` etc., Figure 1.c) and an identify command that
reports "channels, LUNs, Flash type" (Section 3).  :class:`Geometry` is the
value object returned by that identify command; all address mapping between
flat physical page numbers (PPN), flat physical block numbers (PBN) and the
(channel, chip, die, plane, block, page) tuple lives here.

Flat numbering is die-major: consecutive blocks first walk the planes of a
die, then the blocks within each plane, so integer division recovers each
coordinate cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Geometry", "FlashAddress"]


@dataclass(frozen=True)
class FlashAddress:
    """Decomposed physical address of a page (or a block when page == 0)."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    def __str__(self) -> str:
        return (
            f"ch{self.channel}/chip{self.chip}/die{self.die}"
            f"/pl{self.plane}/blk{self.block}/pg{self.page}"
        )


@dataclass(frozen=True)
class Geometry:
    """Shape of a NAND flash subsystem.

    ``die_index`` below always means the *global* die number in
    ``range(total_dies)``; the paper's die-wise striping and the region
    manager both work in terms of global dies.
    """

    channels: int = 2
    chips_per_channel: int = 2
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 128
    pages_per_block: int = 64
    page_bytes: int = 4096
    oob_bytes: int = 128

    def __post_init__(self):
        for field_name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.oob_bytes < 0:
            raise ValueError("oob_bytes must be >= 0")

    # -- derived sizes -------------------------------------------------------

    @property
    def total_dies(self) -> int:
        return self.channels * self.chips_per_channel * self.dies_per_chip

    @property
    def blocks_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def total_blocks(self) -> int:
        return self.total_dies * self.blocks_per_die

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_bytes

    # -- flat <-> structured addressing ---------------------------------------

    def ppn_of(self, pbn: int, page: int) -> int:
        """Flat physical page number from flat block number + page offset."""
        if not 0 <= page < self.pages_per_block:
            raise ValueError(f"page offset {page} out of range")
        return pbn * self.pages_per_block + page

    def block_of_ppn(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def page_offset_of_ppn(self, ppn: int) -> int:
        return ppn % self.pages_per_block

    def die_of_block(self, pbn: int) -> int:
        """Global die index that owns flat block ``pbn``."""
        self._check_block(pbn)
        return pbn // self.blocks_per_die

    def plane_of_block(self, pbn: int) -> int:
        """Plane index (within its die) of flat block ``pbn``."""
        self._check_block(pbn)
        return (pbn % self.blocks_per_die) // self.blocks_per_plane

    def die_of_ppn(self, ppn: int) -> int:
        return self.die_of_block(self.block_of_ppn(ppn))

    def plane_of_ppn(self, ppn: int) -> int:
        return self.plane_of_block(self.block_of_ppn(ppn))

    def channel_of_die(self, die_index: int) -> int:
        self._check_die(die_index)
        return die_index // (self.chips_per_channel * self.dies_per_chip)

    def decompose(self, ppn: int) -> FlashAddress:
        """Split a flat PPN into its full physical coordinates."""
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"ppn {ppn} out of range")
        page = ppn % self.pages_per_block
        pbn = ppn // self.pages_per_block
        die_index = pbn // self.blocks_per_die
        within_die = pbn % self.blocks_per_die
        plane = within_die // self.blocks_per_plane
        block = within_die % self.blocks_per_plane
        dies_per_channel = self.chips_per_channel * self.dies_per_chip
        channel = die_index // dies_per_channel
        within_channel = die_index % dies_per_channel
        chip = within_channel // self.dies_per_chip
        die = within_channel % self.dies_per_chip
        return FlashAddress(channel, chip, die, plane, block, page)

    def compose(self, address: FlashAddress) -> int:
        """Inverse of :meth:`decompose`."""
        die_index = (
            address.channel * self.chips_per_channel * self.dies_per_chip
            + address.chip * self.dies_per_chip
            + address.die
        )
        pbn = (
            die_index * self.blocks_per_die
            + address.plane * self.blocks_per_plane
            + address.block
        )
        return self.ppn_of(pbn, address.page)

    def blocks_of_die(self, die_index: int) -> range:
        """Flat block numbers belonging to a global die (contiguous)."""
        self._check_die(die_index)
        start = die_index * self.blocks_per_die
        return range(start, start + self.blocks_per_die)

    def blocks_of_plane(self, die_index: int, plane: int) -> range:
        """Flat block numbers of one plane of one die (contiguous)."""
        self._check_die(die_index)
        if not 0 <= plane < self.planes_per_die:
            raise ValueError(f"plane {plane} out of range")
        start = die_index * self.blocks_per_die + plane * self.blocks_per_plane
        return range(start, start + self.blocks_per_plane)

    def same_plane(self, ppn_a: int, ppn_b: int) -> bool:
        """True when two pages live in the same plane of the same die
        (the precondition for a COPYBACK transfer)."""
        block_a = self.block_of_ppn(ppn_a)
        block_b = self.block_of_ppn(ppn_b)
        return (
            self.die_of_block(block_a) == self.die_of_block(block_b)
            and self.plane_of_block(block_a) == self.plane_of_block(block_b)
        )

    def describe(self) -> dict:
        """Identify-command payload: the device self-description."""
        return {
            "channels": self.channels,
            "chips_per_channel": self.chips_per_channel,
            "dies_per_chip": self.dies_per_chip,
            "planes_per_die": self.planes_per_die,
            "blocks_per_plane": self.blocks_per_plane,
            "pages_per_block": self.pages_per_block,
            "page_bytes": self.page_bytes,
            "oob_bytes": self.oob_bytes,
            "total_dies": self.total_dies,
            "total_blocks": self.total_blocks,
            "total_pages": self.total_pages,
            "capacity_bytes": self.capacity_bytes,
        }

    # -- internal --------------------------------------------------------------

    def _check_block(self, pbn: int) -> None:
        if not 0 <= pbn < self.total_blocks:
            raise ValueError(f"pbn {pbn} out of range (0..{self.total_blocks - 1})")

    def _check_die(self, die_index: int) -> None:
        if not 0 <= die_index < self.total_dies:
            raise ValueError(f"die {die_index} out of range (0..{self.total_dies - 1})")
