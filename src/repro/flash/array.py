"""The NAND array state machine.

:class:`FlashArray` is *pure state + rules*, with no notion of simulated
time beyond computing each command's latency from the
:class:`~repro.flash.timing.TimingSpec`.  The two device front-ends
(:class:`~repro.flash.device.SyncFlashDevice` for trace replay and
:class:`~repro.flash.device.SimFlashDevice` for contention-aware DES runs)
share this one implementation, so command accounting — the paper's Figure 3
currency — is identical on both paths.

Enforced NAND rules:

* pages within a block are programmed strictly in ascending order;
* a programmed page cannot be reprogrammed before a block erase;
* COPYBACK moves a page only within one plane of one die;
* erases beyond the endurance limit grow a bad block
  (:class:`~repro.flash.errors.BlockWornOut`);
* factory-bad blocks reject program/erase.

State layout: per-page state is flat, indexed by ppn — ``bytearray``
bitmaps for programmed/poisoned flags and dense Python lists for the
payload/OOB slots.  Page payloads never mutate in host RAM, so a stored
checksum can only mismatch its recomputation when the page was explicitly
damaged (torn program, interrupted erase, failed program, injected
corruption); the ``_poisoned`` bitmap records exactly that bit and
replaces a per-page CRC dict — no pickling or CRC arithmetic on the hot
program/read path, with identical observable semantics.
"""

from __future__ import annotations

import pickle
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .commands import (
    CommandResult,
    Copyback,
    EraseBlock,
    FlashCommand,
    Identify,
    Pause,
    ProgramPage,
    ReadOob,
    ReadPage,
)
from .errors import (
    BadBlockError,
    BlockWornOut,
    CopybackPlaneError,
    EraseError,
    FlashError,
    OverwriteError,
    PowerCutError,
    ProgramError,
    ProgramSequenceError,
    ReadUnwrittenError,
    UncorrectableError,
)
from .faults import FaultInjector, FaultPlan
from .geometry import Geometry
from .timing import MLC_TIMING, TimingSpec
from ..telemetry import FLASH_OPS, EventTrace, MetricsRegistry

__all__ = ["FlashArray", "ArrayCounters", "page_checksum"]


def page_checksum(data: Any) -> Optional[int]:
    """Cheap CRC32 of an arbitrary page payload (None for empty pages).

    Used by the chaos rig's oracle to compare what was written with what
    came back; the array itself tracks page damage with the poisoned
    bitmap instead of recomputing checksums per command.
    """
    if data is None:
        return None
    if isinstance(data, (bytes, bytearray, memoryview)):
        payload = bytes(data)
    else:
        try:
            payload = pickle.dumps(data, protocol=4)
        except Exception:
            payload = repr(data).encode()
    return zlib.crc32(payload)


@dataclass
class ArrayCounters:
    """Command counters — the raw material of the paper's Figure 3 table."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    copybacks: int = 0
    oob_reads: int = 0
    per_die_ops: List[int] = field(default_factory=list)
    busy_us: float = 0.0  # sum of all command latencies (no overlap model)

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "programs": self.programs,
            "erases": self.erases,
            "copybacks": self.copybacks,
            "oob_reads": self.oob_reads,
            "busy_us": self.busy_us,
        }


class FlashArray:
    """State of every page and block of one flash device.

    Parameters
    ----------
    geometry, timing
        Shape and latency model.
    store_data
        When False, page payloads are discarded (pure command-counting
        runs such as trace replay); reads then return None.
    max_erase_cycles
        Endurance limit; ``None`` disables wear-out.
    initial_bad_block_rate
        Fraction of factory-bad blocks, drawn with ``rng``.
    read_error_rate
        Probability that any single page read raises
        :class:`UncorrectableError`.  Compatibility shim over the fault
        injector: it maps to one address-free ``transient_read`` spec and
        stays settable at runtime.
    fault_plan
        A :class:`~repro.flash.faults.FaultPlan` of scripted faults
        (transient/persistent uncorrectable reads, program and erase
        failures, die outage windows, latency spikes).  The injector is
        exposed as ``self.fault_injector``.
    checksum
        Track per-page damage (when ``store_data``) and verify it on
        every read, so torn/corrupted pages surface as
        :class:`UncorrectableError` instead of silently wrong data.
    telemetry
        Shared :class:`~repro.telemetry.MetricsRegistry`; a private one is
        created when omitted.  The array owns the per-die command counters
        (``flash.commands{op, die, origin}``) and busy-time sums
        (``flash.busy_us{die}``) — the authoritative source of the
        Figure 3 quantities.  The ``origin`` label comes from the causal
        context stamped on each command (``"host"`` when untagged);
        aggregations over ``{op, die}`` are unaffected, since
        :meth:`MetricsRegistry.value`/:meth:`~MetricsRegistry.series`
        match label supersets.
    trace
        Optional :class:`~repro.telemetry.EventTrace`; when present, every
        die-occupying command emits one ``flash.cmd`` event carrying op,
        die, model latency and its causal origin/path — the raw material
        of the attribution dashboards.
    """

    def __init__(
        self,
        geometry: Geometry,
        timing: TimingSpec = MLC_TIMING,
        store_data: bool = True,
        max_erase_cycles: Optional[int] = None,
        initial_bad_block_rate: float = 0.0,
        read_error_rate: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        checksum: bool = True,
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        if not 0.0 <= initial_bad_block_rate < 1.0:
            raise ValueError("initial_bad_block_rate must be in [0, 1)")
        if not 0.0 <= read_error_rate <= 1.0:
            raise ValueError("read_error_rate must be in [0, 1]")
        self.geometry = geometry
        self.timing = timing
        self.store_data = store_data
        self.max_erase_cycles = max_erase_cycles
        self.checksum = checksum
        self._rng = rng or random.Random(0)

        nblocks = geometry.total_blocks
        npages = geometry.total_pages
        self._npages = npages
        self.erase_counts: List[int] = [0] * nblocks
        self._next_page: List[int] = [0] * nblocks
        self._bad = bytearray(nblocks)
        # Flat per-page state (see module docstring).
        self._programmed = bytearray(npages)
        self._poisoned = bytearray(npages)
        self._data: List[Any] = [None] * npages
        self._oob: List[Any] = [None] * npages
        self.counters = ArrayCounters(per_die_ops=[0] * geometry.total_dies)

        # Hot-path constants: address divisors and the per-command-class
        # latencies, which are pure functions of geometry + timing.
        self._pages_per_block = geometry.pages_per_block
        self._blocks_per_die = geometry.blocks_per_die
        self._read_latency_us = timing.read_latency_us(geometry.page_bytes)
        self._program_latency_us = timing.program_latency_us(geometry.page_bytes)
        self._erase_latency_us = timing.erase_latency_us()
        self._copyback_latency_us = timing.copyback_latency_us()
        self._oob_latency_us = (
            timing.cmd_overhead_us
            + timing.read_us
            + timing.transfer_us(geometry.oob_bytes)
        )

        # Power state: after a scripted power cut every command raises
        # PowerCutError until power_cycle().  The hook fires synchronously
        # at the cut instant (before anything else in the rig can run), so
        # a crash harness can snapshot "what the outside world had seen"
        # at exactly the moment power died.
        self._powered_off = False
        self.power_cut_op: Optional[int] = None
        self.on_power_cut = None
        #: Opt-in health attachment point (see
        #: :class:`repro.telemetry.health.HealthMonitor`): when set, its
        #: ``record(op, die, latency_us, ctx, oob)`` is called for every
        #: accounted command.  Strictly passive — the golden-digest rigs
        #: leave it None and pay one attribute load + None check.
        self.health = None
        #: Additional cut-instant hooks (e.g. a device front end wiping
        #: its volatile write-back cache).  Called after ``on_power_cut``
        #: in registration order, still before PowerCutError propagates.
        self.power_cut_listeners: list = []

        # Telemetry: command counters carry an origin label from the causal
        # context; the vec handle keeps the hot path at one dict probe on
        # the (op, die, origin) value tuple.  The "host" column is
        # pre-materialized for every (op, die) so per-die aggregations
        # always see all dies, zeros included (further origins appear
        # lazily as they occur).
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = trace
        dies = geometry.total_dies
        self._tm_ops = self.telemetry.counter_vec(
            "flash.commands", ("op", "die", "origin"), layer="flash"
        )
        for op in FLASH_OPS:
            for die in range(dies):
                self._tm_ops.labels(op, die, "host")
        self._tm_busy = [
            self.telemetry.counter("flash.busy_us", layer="flash", die=die)
            for die in range(dies)
        ]
        self._tm_power_cuts = self.telemetry.counter("flash.power_cuts", layer="flash")

        self._dispatch = {
            ReadPage: self._read,
            ProgramPage: self._program,
            EraseBlock: self._erase,
            Copyback: self._copyback,
            ReadOob: self._read_oob,
            Identify: self._identify,
            Pause: self._pause,
        }

        self.fault_injector = FaultInjector(fault_plan, telemetry=self.telemetry)
        if read_error_rate:
            self.read_error_rate = read_error_rate

        if initial_bad_block_rate > 0:
            for pbn in range(nblocks):
                if self._rng.random() < initial_bad_block_rate:
                    self._bad[pbn] = True

    # -- fault-injection compatibility shim --------------------------------------

    @property
    def read_error_rate(self) -> float:
        return self.fault_injector.rate_of("transient_read")

    @read_error_rate.setter
    def read_error_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("read_error_rate must be in [0, 1]")
        self.fault_injector.set_rate_spec("transient_read", rate)

    # -- inspection ------------------------------------------------------------

    def is_bad(self, pbn: int) -> bool:
        return bool(self._bad[pbn])

    def factory_bad_blocks(self) -> List[int]:
        return [pbn for pbn, bad in enumerate(self._bad) if bad]

    def is_programmed(self, ppn: int) -> bool:
        return 0 <= ppn < self._npages and self._programmed[ppn] != 0

    def next_free_page(self, pbn: int) -> int:
        """Lowest page offset still programmable in ascending order
        (== pages_per_block when the block's high-water mark is full).
        NAND allows *skipping* pages but never going back, so this is the
        high-water mark, not a count."""
        return self._next_page[pbn]

    def erase_count(self, pbn: int) -> int:
        return self.erase_counts[pbn]

    def wear_summary(self) -> dict:
        alive = [count for count, bad in zip(self.erase_counts, self._bad) if not bad]
        if not alive:
            return {"min": 0, "max": 0, "mean": 0.0, "total": 0}
        return {
            "min": min(alive),
            "max": max(alive),
            "mean": sum(alive) / len(alive),
            "total": sum(self.erase_counts),
        }

    def peek_data(self, ppn: int) -> Any:
        """Direct state access for tests (bypasses commands and counters)."""
        return self._data[ppn]

    def peek_oob(self, ppn: int) -> Any:
        return self._oob[ppn]

    @property
    def powered_off(self) -> bool:
        return self._powered_off

    def power_cycle(self) -> None:
        """Bring the device back after a power cut.

        Only the power state resets — every bit of wreckage the cut left
        (torn pages, half-erased blocks, command counters) persists, which
        is precisely what a cold-start mount has to cope with.
        """
        self._powered_off = False

    # -- accounting ----------------------------------------------------------------

    def _account(
        self,
        command: FlashCommand,
        op: str,
        die: int,
        latency: float,
        oob: Any = None,
    ) -> None:
        """Per-command telemetry: origin-labelled counter, busy time, and
        (when tracing) one ``flash.cmd`` event.  Called before failure
        checks raise, so attempted-but-failed commands are counted exactly
        as the raw :class:`ArrayCounters` count them.  ``oob`` is the
        *effective* OOB of a program/copyback (after the copyback source
        fallback), handed to the health hook so the WA ledger can resolve
        the lpn being written."""
        ctx = command.ctx
        origin = ctx.origin if ctx is not None else "host"
        self._tm_ops.labels(op, die, origin).inc()
        self._tm_busy[die].inc(latency)
        health = self.health
        if health is not None:
            health.record(op, die, latency, ctx, oob)
        trace = self.trace
        if trace is not None and trace.enabled:
            if ctx is not None:
                trace.emit("flash.cmd", op=op, die=die, latency_us=latency,
                           origin=origin, path=ctx.path(), ctx=ctx.ctx_id)
            else:
                trace.emit("flash.cmd", op=op, die=die, latency_us=latency, origin=origin)

    # -- command execution -------------------------------------------------------

    def apply(self, command: FlashCommand) -> CommandResult:
        """Validate + execute one command, returning data and latency.

        Every command — including Pause — advances the fault injector's
        operation counter, so outage/latency windows expire even while a
        lone operation is backing off with Pauses.  Dispatch is an
        exact-type table probe (with an isinstance walk as the fallback
        for command subclasses).
        """
        if self._powered_off:
            raise PowerCutError(self.power_cut_op or self.fault_injector.ops)
        self.fault_injector.tick()
        if self.fault_injector.check_power_cut(command):
            self._apply_power_cut(command)
        handler = self._dispatch.get(type(command))
        if handler is None:
            for cls, candidate in self._dispatch.items():
                if isinstance(command, cls):
                    handler = candidate
                    break
            else:
                raise TypeError(f"unknown flash command: {command!r}")
        result = handler(command)
        if result.die is not None:
            factor = self.fault_injector.latency_factor(result.die)
            if factor != 1.0:
                extra = result.latency_us * (factor - 1.0)
                result.latency_us += extra
                result.extra["fault_extra_us"] = extra
                self.counters.busy_us += extra
                self._tm_busy[result.die].inc(extra)
        return result

    def die_of_command(self, command: FlashCommand) -> Optional[int]:
        """Global die a command will occupy (None for Identify)."""
        if isinstance(command, (ReadPage, ReadOob)):
            return self.geometry.die_of_ppn(command.ppn)
        if isinstance(command, ProgramPage):
            return self.geometry.die_of_ppn(command.ppn)
        if isinstance(command, EraseBlock):
            return self.geometry.die_of_block(command.pbn)
        if isinstance(command, Copyback):
            return self.geometry.die_of_ppn(command.src_ppn)
        return None

    # -- individual commands ------------------------------------------------------

    def _read(self, command: ReadPage) -> CommandResult:
        ppn = command.ppn
        if not self.is_programmed(ppn):
            raise ReadUnwrittenError(f"read of unwritten page ppn={ppn}")
        pbn = ppn // self._pages_per_block
        die = pbn // self._blocks_per_die
        self.fault_injector.check_read(ppn, pbn, die)
        self._verify_checksum(ppn)
        self.counters.reads += 1
        self.counters.per_die_ops[die] += 1
        latency = self._read_latency_us
        self.counters.busy_us += latency
        self._account(command, "read", die, latency)
        return CommandResult(
            command,
            latency_us=latency,
            die=die,
            data=self._data[ppn],
            oob=self._oob[ppn],
        )

    def _program(self, command: ProgramPage) -> CommandResult:
        ppn = command.ppn
        pbn = ppn // self._pages_per_block
        offset = ppn - pbn * self._pages_per_block
        die = pbn // self._blocks_per_die
        # Outage check first: the die never saw the command, nothing is
        # consumed, the caller may retry the identical program.
        failed = self.fault_injector.check_program(ppn, pbn, die)
        self._check_programmable(ppn, pbn, offset)
        self._next_page[pbn] = offset + 1
        self._programmed[ppn] = 1
        if self.store_data:
            self._data[ppn] = command.data
            # A failed program leaves indeterminate bits behind: keep the
            # payload but poison the page so any later read of the
            # consumed slot surfaces as an uncorrectable (torn) page.
            if failed and self.checksum and command.data is not None:
                self._poisoned[ppn] = 1
        self._oob[ppn] = command.oob
        self.counters.programs += 1
        self.counters.per_die_ops[die] += 1
        latency = self._program_latency_us
        self.counters.busy_us += latency
        self._account(command, "program", die, latency, oob=command.oob)
        if failed:
            raise ProgramError(ppn, pbn)
        return CommandResult(command, latency_us=latency, die=die)

    def _erase(self, command: EraseBlock) -> CommandResult:
        pbn = command.pbn
        self.geometry._check_block(pbn)
        if self._bad[pbn]:
            raise BadBlockError(f"erase of bad block pbn={pbn}")
        failed = self.fault_injector.check_erase(pbn, self.geometry.die_of_block(pbn))
        if failed:
            # The erase pulse failed; the block is retired on the spot
            # (same contract as BlockWornOut: marked bad before raising).
            self._bad[pbn] = True
            raise EraseError(pbn, self.erase_counts[pbn])
        self.erase_counts[pbn] += 1
        self._wipe_block(pbn)
        self.counters.erases += 1
        die = self.geometry.die_of_block(pbn)
        self.counters.per_die_ops[die] += 1
        latency = self._erase_latency_us
        self.counters.busy_us += latency
        self._account(command, "erase", die, latency)
        if (self.max_erase_cycles is not None and self.erase_counts[pbn] > self.max_erase_cycles):
            self._bad[pbn] = True
            raise BlockWornOut(pbn, self.erase_counts[pbn])
        return CommandResult(command, latency_us=latency, die=die)

    def _copyback(self, command: Copyback) -> CommandResult:
        src, dst = command.src_ppn, command.dst_ppn
        if not self.geometry.same_plane(src, dst):
            raise CopybackPlaneError(
                f"copyback crosses planes: {self.geometry.decompose(src)} -> "
                f"{self.geometry.decompose(dst)}"
            )
        if not self.is_programmed(src):
            raise ReadUnwrittenError(f"copyback from unwritten page ppn={src}")
        die = self.geometry.die_of_ppn(src)
        # Copyback internally reads the source page: read faults and
        # checksum damage surface here, *before* the destination slot is
        # consumed, so the caller can fall back to read-retry + program
        # against the very same destination page.
        self.fault_injector.check_read(src, self.geometry.block_of_ppn(src), die, op="copyback")
        self._verify_checksum(src)
        dst_pbn = dst // self._pages_per_block
        dst_offset = dst - dst_pbn * self._pages_per_block
        failed = self.fault_injector.check_program(dst, dst_pbn, die)
        self._check_programmable(dst, dst_pbn, dst_offset)
        self._next_page[dst_pbn] = dst_offset + 1
        self._programmed[dst] = 1
        if self.store_data:
            self._data[dst] = self._data[src]
            # The source passed verification above, so its poison bit is
            # clear; only a failed program of real payload taints the copy.
            if failed and self.checksum and self._data[src] is not None:
                self._poisoned[dst] = 1
        oob = command.oob if command.oob is not None else self._oob[src]
        self._oob[dst] = oob
        self.counters.copybacks += 1
        self.counters.per_die_ops[die] += 1
        latency = self._copyback_latency_us
        self.counters.busy_us += latency
        self._account(command, "copyback", die, latency, oob=oob)
        if failed:
            raise ProgramError(dst, dst_pbn)
        return CommandResult(command, latency_us=latency, die=die)

    def _identify(self, command: Identify) -> CommandResult:
        return CommandResult(command, latency_us=self.timing.cmd_overhead_us,
                             data=self.geometry.describe())

    def _pause(self, command: Pause) -> CommandResult:
        self.counters.busy_us += command.duration_us
        return CommandResult(command, latency_us=command.duration_us)

    def _read_oob(self, command: ReadOob) -> CommandResult:
        ppn = command.ppn
        if not self.is_programmed(ppn):
            raise ReadUnwrittenError(f"OOB read of unwritten page ppn={ppn}")
        pbn = ppn // self._pages_per_block
        die = pbn // self._blocks_per_die
        self.fault_injector.check_read(ppn, pbn, die, op="oob_read")
        # OOB is covered by the page's ECC: a torn/corrupted page must
        # fail its OOB read too, or a cold-start scan would happily adopt
        # the mapping of a page whose payload is garbage.
        self._verify_checksum(ppn)
        self.counters.oob_reads += 1
        self.counters.per_die_ops[die] += 1
        latency = self._oob_latency_us
        self.counters.busy_us += latency
        self._account(command, "oob_read", die, latency)
        return CommandResult(command, latency_us=latency, die=die, oob=self._oob[ppn])

    # -- power loss -----------------------------------------------------------------

    def _apply_power_cut(self, command: FlashCommand) -> None:
        """Power dies at this command boundary: leave realistic wreckage
        for the in-flight command, switch the device off, and unwind.

        * in-flight PROGRAM / COPYBACK — the destination page is consumed
          (high-water mark advanced, payload partially latched) but it is
          poisoned: a torn page that fails checksum on both data and OOB
          reads;
        * in-flight ERASE — a half-erased block: every still-programmed
          page's charge is disturbed (poisoned), the erase count is *not*
          advanced and the block is not wiped;
        * read-class commands and Pause/Identify — no device state to
          tear; the command simply never completes.
        """
        if isinstance(command, ProgramPage):
            self._tear_program(command.ppn, command.data, command.oob)
        elif isinstance(command, Copyback):
            src, dst = command.src_ppn, command.dst_ppn
            if self.geometry.same_plane(src, dst) and self.is_programmed(src):
                oob = command.oob if command.oob is not None else self._oob[src]
                self._tear_program(dst, self._data[src], oob)
        elif isinstance(command, EraseBlock):
            self._tear_erase(command.pbn)
        self._powered_off = True
        self.power_cut_op = self.fault_injector.ops
        self._tm_power_cuts.inc()
        if self.on_power_cut is not None:
            self.on_power_cut(command)
        for listener in self.power_cut_listeners:
            listener(command)
        raise PowerCutError(self.power_cut_op)

    def _tear_program(self, ppn: int, data: Any, oob: Any) -> None:
        """Consume ``ppn`` as a torn page (only when the program would
        have been legal — an illegal command leaves no wreckage)."""
        pbn = ppn // self._pages_per_block
        offset = ppn - pbn * self._pages_per_block
        try:
            self._check_programmable(ppn, pbn, offset)
        except FlashError:
            return
        self._next_page[pbn] = offset + 1
        self._programmed[ppn] = 1
        if self.store_data:
            self._data[ppn] = data
            if self.checksum:
                self._poisoned[ppn] = 1
        self._oob[ppn] = oob

    def _tear_erase(self, pbn: int) -> None:
        """Interrupted erase pulse: pages keep their programmed status but
        every one of them now fails its checksum (half-erased charge)."""
        if self._bad[pbn] or not (self.checksum and self.store_data):
            return
        base = pbn * self._pages_per_block
        programmed = self._programmed
        poisoned = self._poisoned
        for ppn in range(base, base + self._next_page[pbn]):
            if programmed[ppn]:
                poisoned[ppn] = 1

    # -- helpers --------------------------------------------------------------------

    def mark_bad(self, pbn: int) -> None:
        """Administratively mark a block bad (used by bad-block managers)."""
        self.geometry._check_block(pbn)
        self._bad[pbn] = True

    def corrupt_page(self, ppn: int) -> None:
        """Test/chaos hook: poison a programmed page so the next read
        fails its checksum (a silent-corruption event)."""
        if not self.is_programmed(ppn):
            raise ReadUnwrittenError(f"cannot corrupt unwritten page ppn={ppn}")
        self._poisoned[ppn] = 1

    def _verify_checksum(self, ppn: int) -> None:
        if self._poisoned[ppn] and self.checksum and self.store_data:
            raise UncorrectableError(f"checksum mismatch at ppn={ppn} (torn/corrupted page)")

    def _check_programmable(self, ppn: int, pbn: int, offset: int) -> None:
        if self._bad[pbn]:
            raise BadBlockError(f"program into bad block pbn={pbn}")
        if self._programmed[ppn]:
            raise OverwriteError(f"page {offset} of block {pbn} already programmed")
        if offset < self._next_page[pbn]:
            raise ProgramSequenceError(
                f"block {pbn}: programming page {offset} after page "
                f"{self._next_page[pbn] - 1} (NAND requires ascending order)"
            )

    def _wipe_block(self, pbn: int) -> None:
        base = pbn * self._pages_per_block
        top = base + self._next_page[pbn]
        if top > base:
            count = top - base
            self._data[base:top] = [None] * count
            self._oob[base:top] = [None] * count
            self._programmed[base:top] = bytes(count)
            self._poisoned[base:top] = bytes(count)
        self._next_page[pbn] = 0
