"""NAND timing models.

Latencies in microseconds, in line with published datasheet figures for the
NAND generations of the paper's era (2013-2015).  The values matter only in
ratio: what the evaluation measures is *relative* throughput and latency
between storage architectures driven by identical timing parameters.

``OPENSSD_JASMINE`` approximates the Samsung K9 MLC parts on the OpenSSD
Jasmine board that the paper ported NoFTL to; the emulator-validation bench
(E7) configures the DES flash model with these values and compares it to an
analytic reference, mirroring the paper's Demo Scenario 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "TimingSpec",
    "SLC_TIMING",
    "MLC_TIMING",
    "TLC_TIMING",
    "OPENSSD_JASMINE",
    "TIMING_PRESETS",
]


@dataclass(frozen=True)
class TimingSpec:
    """Latency parameters of one NAND type plus its interface bus.

    ``bus_mb_per_s`` models the per-channel ONFI-style data bus; transfer
    time scales with the payload.  Copyback skips the bus entirely (the
    page moves through the on-die register), which is why the paper counts
    it separately from reads+programs.
    """

    name: str
    read_us: float      # tR: cell array -> page register
    program_us: float   # tPROG: page register -> cell array
    erase_us: float     # tBERS: whole-block erase
    bus_mb_per_s: float  # channel transfer rate
    cmd_overhead_us: float = 1.0  # command/address cycles, chip enable, etc.

    def __post_init__(self):
        for field_name in ("read_us", "program_us", "erase_us", "bus_mb_per_s"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.cmd_overhead_us < 0:
            raise ValueError("cmd_overhead_us must be >= 0")

    def transfer_us(self, nbytes: int) -> float:
        """Bus time to move ``nbytes`` over the channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.bus_mb_per_s  # MB/s == bytes/us

    def read_latency_us(self, nbytes: int) -> float:
        """Full page read: array sense plus bus transfer to the host."""
        return self.cmd_overhead_us + self.read_us + self.transfer_us(nbytes)

    def program_latency_us(self, nbytes: int) -> float:
        """Full page program: bus transfer from host plus cell programming."""
        return self.cmd_overhead_us + self.transfer_us(nbytes) + self.program_us

    def erase_latency_us(self) -> float:
        return self.cmd_overhead_us + self.erase_us

    def copyback_latency_us(self) -> float:
        """On-die page move: read into register + program, no bus transfer."""
        return self.cmd_overhead_us + self.read_us + self.program_us

    def scaled(self, factor: float, name: str | None = None) -> "TimingSpec":
        """A spec with all latencies scaled by ``factor`` (validation aid)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            read_us=self.read_us * factor,
            program_us=self.program_us * factor,
            erase_us=self.erase_us * factor,
            cmd_overhead_us=self.cmd_overhead_us * factor,
        )


# Datasheet-class presets.  bus at 100 MB/s ~ asynchronous/ONFI-1 era parts,
# matching the paper's commodity-SSD framing.
SLC_TIMING = TimingSpec("SLC", read_us=25.0, program_us=200.0, erase_us=1500.0, bus_mb_per_s=100.0)
MLC_TIMING = TimingSpec("MLC", read_us=50.0, program_us=600.0, erase_us=3000.0, bus_mb_per_s=100.0)
TLC_TIMING = TimingSpec("TLC", read_us=75.0, program_us=900.0, erase_us=4500.0, bus_mb_per_s=100.0)
OPENSSD_JASMINE = TimingSpec("OpenSSD-Jasmine", read_us=60.0, program_us=800.0,
                             erase_us=3500.0, bus_mb_per_s=133.0)

TIMING_PRESETS = {spec.name: spec for spec in (SLC_TIMING, MLC_TIMING, TLC_TIMING, OPENSSD_JASMINE)}
