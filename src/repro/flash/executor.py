"""Executors: drive command-yielding operations against a device.

FTLs and the NoFTL storage manager are written as *generators of flash
commands*: host-side work (map lookups in host RAM) is plain code, every
flash touch is a ``yield <FlashCommand>`` whose value is the
:class:`~repro.flash.commands.CommandResult`.  The same operation code then
runs

* synchronously for trace replay / unit tests (:class:`SyncExecutor`), or
* inside the DES with die/channel contention (:class:`SimExecutor`).

Flash errors raised by the array are thrown *into* the operation generator
so FTL-level recovery (bad-block remapping) happens at the right place in
either mode.
"""

from __future__ import annotations

from typing import Any, Generator

from .commands import FlashCommand
from .device import SimFlashDevice, SyncFlashDevice
from .errors import FlashError

__all__ = ["SyncExecutor", "SimExecutor", "FlashOp"]

#: Type alias for documentation: a generator yielding FlashCommand and
#: returning the operation's result.
FlashOp = Generator


def _check_command(command: Any) -> FlashCommand:
    if not isinstance(command, FlashCommand):
        raise TypeError(
            f"flash operation yielded {command!r}, expected FlashCommand"
        )
    return command


class SyncExecutor:
    """Runs a flash operation to completion immediately."""

    def __init__(self, device: SyncFlashDevice):
        self.device = device

    def run(self, operation: FlashOp) -> Any:
        """Drive ``operation``; returns its ``return`` value."""
        try:
            command = _check_command(operation.send(None))
            while True:
                try:
                    result = self.device.execute(command)
                except FlashError as exc:
                    # Let the operation handle (or re-raise) the failure;
                    # throw() resumes it and returns its next command.
                    command = _check_command(operation.throw(exc))
                else:
                    command = _check_command(operation.send(result))
        except StopIteration as stop:
            return stop.value


class SimExecutor:
    """Runs a flash operation inside the DES.

    ``run`` is itself a generator: use it from a DES process as
    ``value = yield from executor.run(op)``.
    """

    def __init__(self, device: SimFlashDevice):
        self.device = device
        self.sim = device.sim

    def run(self, operation: FlashOp):
        try:
            command = _check_command(operation.send(None))
            while True:
                try:
                    result = yield from self.device.execute(command)
                except FlashError as exc:
                    command = _check_command(operation.throw(exc))
                else:
                    command = _check_command(operation.send(result))
        except StopIteration as stop:
            return stop.value
