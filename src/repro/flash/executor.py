"""Executors: drive command-yielding operations against a device.

FTLs and the NoFTL storage manager are written as *generators of flash
commands*: host-side work (map lookups in host RAM) is plain code, every
flash touch is a ``yield <FlashCommand>`` whose value is the
:class:`~repro.flash.commands.CommandResult`.  The same operation code then
runs

* synchronously for trace replay / unit tests (:class:`SyncExecutor`), or
* inside the DES with die/channel contention (:class:`SimExecutor`).

Flash errors raised by the array are thrown *into* the operation generator
so FTL-level recovery (bad-block remapping) happens at the right place in
either mode.

When given an :class:`~repro.telemetry.OpContext`, an executor also does
the **blame accounting**: it stamps the context onto untagged commands,
adopts orphan maintenance chains (contexts created deep inside an FTL)
under the request's context, and charges each command's observed time into
the context's cost buckets — media time for the request's own commands,
``gc_us`` for inline maintenance, ``queue_gc_us``/``queue_other_us`` for
die-queue waits (classified by the device), ``retry_us`` for recovery
backoff pauses.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..telemetry import MAINTENANCE_ORIGINS, OpContext
from .commands import FlashCommand, Pause, stamp_context
from .device import SimFlashDevice, SyncFlashDevice
from .errors import FlashError

__all__ = ["SyncExecutor", "SimExecutor", "FlashOp"]

#: Type alias for documentation: a generator yielding FlashCommand and
#: returning the operation's result.
FlashOp = Generator


def _check_command(command: Any) -> FlashCommand:
    if not isinstance(command, FlashCommand):
        raise TypeError(f"flash operation yielded {command!r}, expected FlashCommand")
    return command


def _prepare(command: FlashCommand, ctx: Optional[OpContext]):
    """Stamp / adopt the command's context; returns its effective origin."""
    cmd_ctx = command.ctx
    if cmd_ctx is None:
        if ctx is not None:
            stamp_context(command, ctx)
            cmd_ctx = ctx
    elif ctx is not None:
        cmd_ctx.adopt(ctx)
    return cmd_ctx.origin if cmd_ctx is not None else "host"


def _charge(ctx: OpContext, command: FlashCommand, origin: str, result):
    observed = result.extra.get("observed_us", result.latency_us)
    if isinstance(command, Pause):
        # Backpressure / backoff time: blamed on GC when the pause exists
        # to let maintenance catch up, on retry/recovery otherwise.
        bucket = "gc_us" if origin in MAINTENANCE_ORIGINS else "retry_us"
        ctx.charge(bucket, observed)
        return
    if origin in MAINTENANCE_ORIGINS:
        # Inline maintenance (GC, merges, scrubs...) executed within this
        # request, queue waits included — it is all foreign work.
        ctx.charge("gc_us", observed)
        return
    wait = result.extra.get("queue_wait_us", 0.0)
    behind_gc = result.extra.get("queue_gc_us", 0.0)
    ctx.charge("media_us", observed - wait)
    ctx.charge("queue_gc_us", behind_gc)
    ctx.charge("queue_other_us", max(0.0, wait - behind_gc))


class SyncExecutor:
    """Runs a flash operation to completion immediately."""

    def __init__(self, device: SyncFlashDevice):
        self.device = device

    def run(self, operation: FlashOp, ctx: Optional[OpContext] = None) -> Any:
        """Drive ``operation``; returns its ``return`` value."""
        # Bound-method hoists: this loop runs once per flash command and
        # dominates trace replay, so the dispatch overhead matters.
        send = operation.send
        throw = operation.throw
        execute = self.device.execute
        try:
            command = _check_command(send(None))
            while True:
                origin = _prepare(command, ctx)
                try:
                    result = execute(command)
                except FlashError as exc:
                    # Let the operation handle (or re-raise) the failure;
                    # throw() resumes it and returns its next command.
                    command = _check_command(throw(exc))
                else:
                    if ctx is not None:
                        _charge(ctx, command, origin, result)
                    command = _check_command(send(result))
        except StopIteration as stop:
            return stop.value


class SimExecutor:
    """Runs a flash operation inside the DES.

    ``run`` is itself a generator: use it from a DES process as
    ``value = yield from executor.run(op)``.
    """

    def __init__(self, device: SimFlashDevice):
        self.device = device
        self.sim = device.sim

    def run(self, operation: FlashOp, ctx: Optional[OpContext] = None):
        send = operation.send
        throw = operation.throw
        execute = self.device.execute
        try:
            command = _check_command(send(None))
            while True:
                origin = _prepare(command, ctx)
                try:
                    result = yield from execute(command)
                except FlashError as exc:
                    command = _check_command(throw(exc))
                else:
                    if ctx is not None:
                        _charge(ctx, command, origin, result)
                    command = _check_command(send(result))
        except StopIteration as stop:
            return stop.value
