"""NAND flash substrate: geometry, timing, command set, array state machine
and the two device front-ends (synchronous and DES).

This package plays the role of the paper's OpenSSD board *and* its
real-time flash emulator: a native flash device exposing READ PAGE /
PROGRAM PAGE / COPYBACK / ERASE BLOCK / IDENTIFY with realistic per-command
latency and die/channel parallelism.
"""

from .array import ArrayCounters, FlashArray, page_checksum
from .commands import (
    CommandResult,
    Copyback,
    EraseBlock,
    FlashCommand,
    Identify,
    Pause,
    ProgramPage,
    ReadOob,
    ReadPage,
)
from .device import SimFlashDevice, SyncFlashDevice
from .errors import (
    BadBlockError,
    BlockWornOut,
    CopybackPlaneError,
    DieOutageError,
    EraseError,
    FlashError,
    OverwriteError,
    PowerCutError,
    ProgramError,
    ProgramSequenceError,
    ReadUnwrittenError,
    UncorrectableError,
)
from .executor import FlashOp, SimExecutor, SyncExecutor
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from .geometry import FlashAddress, Geometry
from .timing import (
    MLC_TIMING,
    OPENSSD_JASMINE,
    SLC_TIMING,
    TIMING_PRESETS,
    TLC_TIMING,
    TimingSpec,
)

__all__ = [
    "ArrayCounters",
    "FlashArray",
    "page_checksum",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "DieOutageError",
    "EraseError",
    "ProgramError",
    "CommandResult",
    "Copyback",
    "EraseBlock",
    "FlashCommand",
    "Identify",
    "Pause",
    "ProgramPage",
    "ReadOob",
    "ReadPage",
    "SimFlashDevice",
    "SyncFlashDevice",
    "BadBlockError",
    "BlockWornOut",
    "CopybackPlaneError",
    "FlashError",
    "OverwriteError",
    "PowerCutError",
    "ProgramSequenceError",
    "ReadUnwrittenError",
    "UncorrectableError",
    "FlashOp",
    "SimExecutor",
    "SyncExecutor",
    "FlashAddress",
    "Geometry",
    "MLC_TIMING",
    "OPENSSD_JASMINE",
    "SLC_TIMING",
    "TIMING_PRESETS",
    "TLC_TIMING",
    "TimingSpec",
]
