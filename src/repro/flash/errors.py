"""Flash-level error types.

Real NAND fails in specific, well-defined ways; the layers above (FTL bad
block managers, the NoFTL bad-block manager) are tested against exactly
these failures.
"""

from __future__ import annotations

__all__ = [
    "FlashError",
    "ProgramSequenceError",
    "OverwriteError",
    "BadBlockError",
    "BlockWornOut",
    "CopybackPlaneError",
    "UncorrectableError",
    "ReadUnwrittenError",
]


class FlashError(Exception):
    """Base class for all NAND-level failures."""


class ProgramSequenceError(FlashError):
    """Pages inside a block must be programmed in ascending order."""


class OverwriteError(FlashError):
    """A programmed page cannot be reprogrammed before the block is erased."""


class BadBlockError(FlashError):
    """Program/erase attempted on a block marked bad."""


class BlockWornOut(FlashError):
    """The block exceeded its rated program/erase cycles and just failed.

    The array marks the block bad before raising, so the caller only has to
    remap (what a bad-block manager does on a grown bad block).
    """

    def __init__(self, pbn: int, erase_count: int):
        super().__init__(f"block {pbn} worn out after {erase_count} erases")
        self.pbn = pbn
        self.erase_count = erase_count


class CopybackPlaneError(FlashError):
    """COPYBACK source and destination must share a plane."""


class UncorrectableError(FlashError):
    """Injected bit errors exceeded ECC capability on a read."""


class ReadUnwrittenError(FlashError):
    """Read of a page that was never programmed since the last erase."""
