"""Flash-level error types.

Real NAND fails in specific, well-defined ways; the layers above (FTL bad
block managers, the NoFTL bad-block manager) are tested against exactly
these failures.
"""

from __future__ import annotations

__all__ = [
    "FlashError",
    "ProgramSequenceError",
    "OverwriteError",
    "BadBlockError",
    "BlockWornOut",
    "CopybackPlaneError",
    "UncorrectableError",
    "ReadUnwrittenError",
    "ProgramError",
    "EraseError",
    "DieOutageError",
    "PowerCutError",
]


class FlashError(Exception):
    """Base class for all NAND-level failures."""


class ProgramSequenceError(FlashError):
    """Pages inside a block must be programmed in ascending order."""


class OverwriteError(FlashError):
    """A programmed page cannot be reprogrammed before the block is erased."""


class BadBlockError(FlashError):
    """Program/erase attempted on a block marked bad."""


class BlockWornOut(FlashError):
    """The block exceeded its rated program/erase cycles and just failed.

    The array marks the block bad before raising, so the caller only has to
    remap (what a bad-block manager does on a grown bad block).
    """

    def __init__(self, pbn: int, erase_count: int):
        super().__init__(f"block {pbn} worn out after {erase_count} erases")
        self.pbn = pbn
        self.erase_count = erase_count


class CopybackPlaneError(FlashError):
    """COPYBACK source and destination must share a plane."""


class UncorrectableError(FlashError):
    """Injected bit errors exceeded ECC capability on a read."""


class ReadUnwrittenError(FlashError):
    """Read of a page that was never programmed since the last erase."""


class ProgramError(FlashError):
    """A PAGE PROGRAM failed mid-operation (status register error).

    The target page is consumed — NAND cannot re-program a partially
    programmed page — and whatever landed there must be treated as
    corrupt.  The layer above remaps the in-flight write to a fresh block
    and retires the failing one (grown bad block).
    """

    def __init__(self, ppn: int, pbn: int):
        super().__init__(f"program failed at ppn={ppn} (block {pbn})")
        self.ppn = ppn
        self.pbn = pbn


class EraseError(BlockWornOut):
    """A BLOCK ERASE failed (status register error).

    Subclasses :class:`BlockWornOut` deliberately: the array marks the
    block bad before raising, and every existing grown-bad-block handler
    (``except BlockWornOut``) already does exactly the right thing —
    report the block and stop using it.
    """

    def __init__(self, pbn: int, erase_count: int = 0):
        super().__init__(pbn, erase_count)
        self.args = (f"erase failed at pbn={pbn} (grown bad block)",)


class PowerCutError(FlashError):
    """The whole device lost power at a flash-command boundary.

    Raised by the array for the command in flight when a scripted
    ``power_cut`` fault fires, and for every command thereafter until
    :meth:`~repro.flash.array.FlashArray.power_cycle` simulates power
    coming back.  Unlike every other flash error this one is not
    recoverable in-line: it is meant to unwind the entire rig (the crash
    harness catches it at the top), leaving whatever wreckage the cut
    produced for a cold-start mount to deal with.
    """

    def __init__(self, op: int):
        super().__init__(f"power cut at flash op #{op}")
        self.op = op


class DieOutageError(FlashError):
    """The target die is temporarily unreachable (power/channel fault).

    Raised *before* any state change: the command was rejected, not
    executed, so the caller may retry the identical command once the
    outage window passes (bounded backoff with Pause).
    """

    def __init__(self, die: int):
        super().__init__(f"die {die} is in an outage window")
        self.die = die
