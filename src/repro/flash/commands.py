"""The native flash command set.

Section 3 of the paper defines the minimal native interface: PAGE READ and
PAGE PROGRAM with data transfer, COPYBACK PROGRAM and BLOCK ERASE without
user-data transfer, plus an identify command and page-metadata (OOB)
handling.  These dataclasses are that wire protocol; FTLs and the NoFTL
storage manager *yield* them, and an executor (sync or DES) carries them
out against a :class:`~repro.flash.array.FlashArray`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "FlashCommand",
    "ReadPage",
    "ProgramPage",
    "EraseBlock",
    "Copyback",
    "ReadOob",
    "Identify",
    "Pause",
    "CommandResult",
    "stamp_context",
    "tag_commands",
]


@dataclass(frozen=True)
class FlashCommand:
    """Base marker for all native flash commands."""

    # Causal context (an OpContext), stamped per instance by the executors
    # / tag_commands via object.__setattr__ and initialised to None by
    # __post_init__.  Deliberately a slot, not a dataclass field:
    # frozen-dataclass inheritance would force every subclass field after
    # it to take a default, and keeping it out of the fields keeps command
    # equality/hashing purely physical (subclasses use slots=True, which
    # only covers their declared fields, so the slot must live here).
    __slots__ = ("ctx",)

    def __post_init__(self):
        object.__setattr__(self, "ctx", None)


@dataclass(frozen=True, slots=True)
class ReadPage(FlashCommand):
    """PAGE READ: sense page ``ppn`` and transfer it over the channel."""

    ppn: int


@dataclass(frozen=True, slots=True)
class ProgramPage(FlashCommand):
    """PAGE PROGRAM: transfer ``data`` and program page ``ppn``.

    ``oob`` carries out-of-band page metadata (the paper's "handle Page
    Metadata"); by convention the layers above store the logical page
    number and a write timestamp there so a cold scan can rebuild mappings.
    """

    ppn: int
    data: Any = None
    oob: Any = None


@dataclass(frozen=True, slots=True)
class EraseBlock(FlashCommand):
    """BLOCK ERASE of flat physical block ``pbn`` (no data transfer)."""

    pbn: int


@dataclass(frozen=True, slots=True)
class Copyback(FlashCommand):
    """COPYBACK PROGRAM: on-die move ``src_ppn`` -> ``dst_ppn``.

    Valid only within one plane of one die; the array enforces this the
    way real NAND does.  ``oob`` optionally rewrites the destination's
    metadata (real copyback preserves OOB; NoFTL updates the mapping in
    host RAM instead, so either convention works — we keep OOB unless
    overridden).
    """

    src_ppn: int
    dst_ppn: int
    oob: Any = None


@dataclass(frozen=True, slots=True)
class ReadOob(FlashCommand):
    """Read only the OOB metadata of ``ppn`` (spare-area read).

    Much cheaper than a full page read; used by recovery scans.
    """

    ppn: int


@dataclass(frozen=True, slots=True)
class Identify(FlashCommand):
    """Device identification (the HDIO_GETGEO analogue of Section 3):
    returns the :class:`~repro.flash.geometry.Geometry` description."""


@dataclass(frozen=True, slots=True)
class Pause(FlashCommand):
    """Controller-side busy-wait: occupies no die, just time.

    FTL firmware yields this when it must let background maintenance
    catch up (e.g. FASTer's log area is saturated while a reclaim is in
    flight) — the backpressure real devices express as command latency.
    """

    duration_us: float = 100.0


def stamp_context(command: FlashCommand, ctx) -> FlashCommand:
    """Set a command's causal context in place (frozen-safe) and return it."""
    object.__setattr__(command, "ctx", ctx)
    return command


def tag_commands(operation, ctx):
    """Wrap a flash-command generator so every yielded command carries
    ``ctx`` (commands already tagged by a nested wrapper keep their more
    specific context).  Transparent to the executor protocol: results are
    sent back in and flash errors thrown through.

    This is how maintenance work deep inside an FTL gets its origin —
    e.g. ``tag_commands(self._collect_body(...), OpContext("gc"))`` —
    without any global "current context" state, which the interleaved DES
    processes could not share safely.
    """
    try:
        item = operation.send(None)
    except StopIteration as stop:
        return stop.value
    while True:
        if isinstance(item, FlashCommand) and item.ctx is None:
            stamp_context(item, ctx)
        try:
            result = yield item
        except BaseException as exc:  # noqa: BLE001 - executor protocol
            try:
                item = operation.throw(exc)
            except StopIteration as stop:
                return stop.value
        else:
            try:
                item = operation.send(result)
            except StopIteration as stop:
                return stop.value


@dataclass(slots=True)
class CommandResult:
    """Outcome of one executed command."""

    command: FlashCommand
    latency_us: float
    die: Optional[int] = None  # global die index the command occupied
    data: Any = None           # page payload (reads) / geometry (identify)
    oob: Any = None            # page metadata (reads)
    extra: dict = field(default_factory=dict)
