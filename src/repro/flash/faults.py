"""Deterministic fault injection for the NAND array.

The paper's safety argument — "the database system is the single owner of
the flash device" — only holds if the storage manager absorbs the ways
real NAND misbehaves.  This module is the adversary: a seeded, scriptable
fault model wired into :class:`~repro.flash.array.FlashArray`, replacing
the old single ``read_error_rate`` knob (kept as a compatibility shim).

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a seed.
Each spec describes one fault source:

* ``transient_read`` — a read raises
  :class:`~repro.flash.errors.UncorrectableError`; a retry re-rolls (rate
  based) or succeeds once the firing budget (``count``) is exhausted;
* ``persistent_read`` — every matching read fails (grown media defect);
* ``program_fail`` — a PAGE PROGRAM consumes its page but leaves it
  corrupt and raises :class:`~repro.flash.errors.ProgramError`;
* ``erase_fail`` — a BLOCK ERASE fails; the block is marked bad and
  :class:`~repro.flash.errors.EraseError` is raised;
* ``die_outage`` — during an operation-count window, every command to the
  die is rejected with :class:`~repro.flash.errors.DieOutageError`
  (no state change, retryable);
* ``latency_spike`` — commands on the die take ``factor`` times longer
  during the window (no error raised);
* ``power_cut`` — at a deterministically chosen flash-command boundary
  (``at_op`` operation count, or an arbitrary ``predicate`` over
  ``(op, command)``) the whole device loses power: the in-flight command
  leaves realistic wreckage (torn page / half-erased block) and the
  array raises :class:`~repro.flash.errors.PowerCutError` for it and
  every command after it until ``power_cycle()``.  Host-side volatile
  state dies with the device: every callable in the array's
  ``power_cut_listeners`` list runs at the instant of the cut, *before*
  the PowerCutError propagates — the device front end
  (:class:`~repro.device.frontend.DeviceFrontend`) registers there so
  its un-barriered write-back cache contents vanish exactly like DRAM
  behind a capacitor-less controller.  Listeners must be synchronous,
  idempotent, and must not raise.

Faults are addressable by ``ppn``, ``pbn`` and/or ``die`` (AND-ed; all
``None`` matches everything), and can be gated by an operation-count
``window`` — the injector counts every command the array executes
(including Pause), so windows are deterministic in both sync and DES
mode.  Probability draws come from one ``random.Random(plan.seed)``:
the same plan against the same command sequence injects the identical
fault sequence, which the determinism tests assert.

Every firing is recorded in ``FaultInjector.events`` and counted in the
telemetry family ``flash.faults.injected{kind, die}``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .errors import DieOutageError, UncorrectableError

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = (
    "transient_read",
    "persistent_read",
    "program_fail",
    "erase_fail",
    "die_outage",
    "latency_spike",
    "power_cut",
)

_READ_KINDS = ("transient_read", "persistent_read")


@dataclass
class FaultSpec:
    """One fault source.

    Attributes
    ----------
    kind
        One of :data:`FAULT_KINDS`.
    ppn, pbn, die
        Address filters (AND-ed); ``None`` matches any.
    rate
        Firing probability per matching operation; ``None`` (default)
        means the spec fires deterministically on every match (subject to
        ``count``), ``0.0`` means it never fires.
    count
        Maximum number of firings; ``None`` is unlimited.  A
        ``transient_read`` with ``count=2`` fails twice, then reads
        cleanly — the "succeeds after retries" case the scrub path needs.
    window
        ``(start_op, end_op)`` half-open operation-count window outside
        which the spec is dormant.  Required for ``die_outage`` and
        ``latency_spike``.
    factor
        Latency multiplier for ``latency_spike``.
    at_op
        ``power_cut`` only: the exact operation count at which the cut
        fires (the injector's counter as advanced by :meth:`tick`, i.e.
        1 for the first command the array ever executes).
    predicate
        ``power_cut`` only: alternative trigger — a callable
        ``(op, command) -> bool`` evaluated at every command boundary.
        The cut fires on the first command for which it returns True.
    """

    kind: str
    ppn: Optional[int] = None
    pbn: Optional[int] = None
    die: Optional[int] = None
    rate: Optional[float] = None
    count: Optional[int] = None
    window: Optional[Tuple[int, int]] = None
    factor: float = 1.0
    at_op: Optional[int] = None
    predicate: Optional[Callable[[int, object], bool]] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.kind in ("die_outage", "latency_spike") and self.window is None:
            raise ValueError(f"{self.kind} requires a window=(start, end)")
        if self.kind == "latency_spike" and self.factor <= 0:
            raise ValueError("latency_spike factor must be > 0")
        if self.kind == "power_cut":
            if self.at_op is None and self.predicate is None:
                raise ValueError("power_cut requires at_op or predicate")
            if self.count is None:
                self.count = 1  # a device loses power once per run
        elif self.at_op is not None or self.predicate is not None:
            raise ValueError("at_op/predicate are power_cut-only triggers")


@dataclass
class FaultPlan:
    """A seeded script of fault sources for one device."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    @classmethod
    def transient_reads(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """The old ``read_error_rate`` behaviour as a plan."""
        return cls([FaultSpec(kind="transient_read", rate=rate)], seed=seed)

    @classmethod
    def power_cut_at(cls, at_op: int, seed: int = 0) -> "FaultPlan":
        """A plan whose only fault is a power cut at flash op ``at_op``."""
        return cls([FaultSpec(kind="power_cut", at_op=at_op)], seed=seed)


class _LiveSpec:
    """Runtime state of one spec (remaining firing budget)."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.remaining = spec.count

    def matches(self, op: int, ppn: Optional[int], pbn: Optional[int], die: Optional[int]) -> bool:
        spec = self.spec
        if self.remaining is not None and self.remaining <= 0:
            return False
        if spec.window is not None and not (spec.window[0] <= op < spec.window[1]):
            return False
        if spec.ppn is not None and spec.ppn != ppn:
            return False
        if spec.pbn is not None and spec.pbn != pbn:
            return False
        if spec.die is not None and spec.die != die:
            return False
        return True


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the array's command stream.

    The array calls :meth:`tick` once per command, then the per-command
    check hooks.  All decisions are functions of (plan, seed, command
    sequence) only — no wall clock, no global state — so a run is exactly
    reproducible from its seed.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, telemetry=None):
        self.plan = plan or FaultPlan()
        self._live = [_LiveSpec(spec) for spec in self.plan.specs]
        self._rng = random.Random(self.plan.seed)
        self.telemetry = telemetry
        self.ops = 0
        #: (op_index, kind, detail) per firing — the determinism witness.
        self.events: List[Tuple[int, str, tuple]] = []
        self._tm_fired = (
            telemetry.counter_vec(
                "flash.faults.injected", ("kind", "die"), layer="flash"
            )
            if telemetry is not None else None
        )

    # -- plan maintenance -------------------------------------------------------

    def add_spec(self, spec: FaultSpec) -> None:
        self.plan.specs.append(spec)
        self._live.append(_LiveSpec(spec))

    def set_rate_spec(self, kind: str, rate: float) -> None:
        """Compatibility hook: keep exactly one address-free rate spec of
        ``kind`` at ``rate`` (the old ``read_error_rate`` knob)."""
        for live in self._live:
            spec = live.spec
            if (spec.kind == kind and spec.ppn is None and spec.pbn is None
                    and spec.die is None and spec.window is None
                    and spec.count is None):
                spec.rate = rate
                return
        if rate > 0:
            self.add_spec(FaultSpec(kind=kind, rate=rate))

    def rate_of(self, kind: str) -> float:
        for live in self._live:
            spec = live.spec
            if (spec.kind == kind and spec.ppn is None and spec.pbn is None
                    and spec.die is None and spec.window is None
                    and spec.count is None):
                return spec.rate
        return 0.0

    # -- command hooks ----------------------------------------------------------

    def tick(self) -> int:
        """Advance the operation counter (one call per array command)."""
        self.ops += 1
        return self.ops

    def _fire(self, live: _LiveSpec, detail: tuple) -> None:
        if live.remaining is not None:
            live.remaining -= 1
        kind = live.spec.kind
        die = detail[0] if detail else None
        self.events.append((self.ops, kind, detail))
        if self._tm_fired is not None:
            self._tm_fired.labels(kind, die).inc()

    def _roll(self, live: _LiveSpec) -> bool:
        if live.spec.rate is None:
            return True  # deterministic spec: fires on every match
        return self._rng.random() < live.spec.rate

    def _check_outage(self, die: Optional[int]) -> None:
        for live in self._live:
            if live.spec.kind != "die_outage":
                continue
            if live.matches(self.ops, None, None, die) and self._roll(live):
                self._fire(live, (die,))
                raise DieOutageError(die)

    def check_read(self, ppn: int, pbn: int, die: int, op: str = "read") -> None:
        """Raise for a read-class access (READ PAGE, OOB read, the read
        leg of COPYBACK).  Outage first — the die never saw the command —
        then media faults."""
        if not self._live:
            return
        self._check_outage(die)
        for live in self._live:
            if live.spec.kind not in _READ_KINDS:
                continue
            if live.matches(self.ops, ppn, pbn, die) and self._roll(live):
                self._fire(live, (die, op, ppn))
                raise UncorrectableError(f"injected {live.spec.kind} at ppn={ppn} ({op})")

    def check_program(self, ppn: int, pbn: int, die: int) -> bool:
        """True when this PAGE PROGRAM must fail (page consumed, corrupt).
        Raises :class:`DieOutageError` first when the die is out."""
        if not self._live:
            return False
        self._check_outage(die)
        for live in self._live:
            if live.spec.kind != "program_fail":
                continue
            if live.matches(self.ops, ppn, pbn, die) and self._roll(live):
                self._fire(live, (die, "program", ppn))
                return True
        return False

    def check_erase(self, pbn: int, die: int) -> bool:
        """True when this BLOCK ERASE must fail (block goes bad)."""
        if not self._live:
            return False
        self._check_outage(die)
        for live in self._live:
            if live.spec.kind != "erase_fail":
                continue
            if live.matches(self.ops, None, pbn, die) and self._roll(live):
                self._fire(live, (die, "erase", pbn))
                return True
        return False

    def check_power_cut(self, command) -> bool:
        """True when power is lost at this command boundary.

        Called once per command right after :meth:`tick`; the array then
        applies the in-flight command's wreckage and powers itself off.
        The trigger is purely deterministic — an exact operation count
        (``at_op``) or a caller-supplied predicate — never a rate roll,
        so a sweep of cut points is exactly reproducible.
        """
        if not self._live:
            return False
        for live in self._live:
            spec = live.spec
            if spec.kind != "power_cut":
                continue
            if live.remaining is not None and live.remaining <= 0:
                continue
            if spec.at_op is not None and self.ops != spec.at_op:
                continue
            if spec.predicate is not None and not spec.predicate(self.ops, command):
                continue
            self._fire(live, (None, "power_cut", self.ops))
            return True
        return False

    def latency_factor(self, die: Optional[int]) -> float:
        """Combined latency multiplier for a command on ``die`` now.

        Each slowed command is recorded as a ``latency_spike`` firing so
        the event log and telemetry show the window actually hit."""
        if not self._live:
            return 1.0
        factor = 1.0
        for live in self._live:
            if live.spec.kind != "latency_spike":
                continue
            if live.matches(self.ops, None, None, die):
                factor *= live.spec.factor
                self._fire(live, (die, "latency", live.spec.factor))
        return factor

    # -- introspection ----------------------------------------------------------

    def injected_counts(self) -> dict:
        """Firings per kind (from the event log; registry-independent)."""
        out: dict = {}
        for __, kind, __detail in self.events:
            out[kind] = out.get(kind, 0) + 1
        return out
