"""I/O trace recording and off-line replay — the Figure 3 methodology.

The paper: *"Off-line trace-driven testing.  Traces were recorded on
in-memory database running the benchmarks for 60 minutes."*  Here:

1. run any workload on a :class:`TraceRecordingAdapter` wrapped around a
   RAM volume (the in-memory database);
2. the adapter captures the page-granular I/O stream the buffer manager
   and db-writers emitted;
3. :func:`replay_trace` feeds that identical stream into each candidate
   (FASTer, DFTL, page-map FTL, or the NoFTL storage manager) through a
   synchronous executor and reads back the command counters that the
   Figure 3 table reports (copybacks, erases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.storage import SyncNoFTLStorage
from ..db.storage import StorageAdapter
from ..device.blockdev import SyncBlockDevice
from ..telemetry import sum_per_die
from .base import Workload  # noqa: F401  (re-exported context)

__all__ = ["TraceOp", "IOTrace", "TraceRecordingAdapter", "replay_trace",
           "ReplayReport"]

READ, WRITE, TRIM = "r", "w", "t"


@dataclass(frozen=True)
class TraceOp:
    kind: str       # 'r' | 'w' | 't'
    page_id: int
    hint: str = "hot"


@dataclass
class IOTrace:
    """An ordered page-granular I/O stream."""

    ops: List[TraceOp] = field(default_factory=list)

    def append(self, kind: str, page_id: int, hint: str = "hot") -> None:
        self.ops.append(TraceOp(kind, page_id, hint))

    def __len__(self) -> int:
        return len(self.ops)

    def counts(self) -> dict:
        result = {READ: 0, WRITE: 0, TRIM: 0}
        for op in self.ops:
            result[op.kind] += 1
        return {"reads": result[READ], "writes": result[WRITE],
                "trims": result[TRIM]}

    def max_page(self) -> int:
        return max((op.page_id for op in self.ops), default=-1)


class TraceRecordingAdapter(StorageAdapter):
    """Wraps any storage adapter, recording every page I/O it carries."""

    def __init__(self, inner: StorageAdapter):
        self.inner = inner
        self.trace = IOTrace()
        self.logical_pages = inner.logical_pages
        self.num_regions = inner.num_regions

    def read(self, page_id: int, ctx=None):
        self.trace.append(READ, page_id)
        data = yield from self.inner.read(page_id, ctx=ctx)
        return data

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        self.trace.append(WRITE, page_id, hint)
        yield from self.inner.write(page_id, data, hint, ctx=ctx)

    def trim(self, page_id: int, ctx=None):
        self.trace.append(TRIM, page_id)
        yield from self.inner.trim(page_id, ctx=ctx)

    def region_of_page(self, page_id: int) -> int:
        return self.inner.region_of_page(page_id)


@dataclass
class ReplayReport:
    """Command-level outcome of replaying one trace against one target —
    a row of the Figure 3 table."""

    target: str
    host_reads: int
    host_writes: int
    host_trims: int
    copybacks: int
    relocations: int
    erases: int
    flash_reads: int
    flash_programs: int
    write_amplification: float
    #: ``{"erase": {die: n}, "copyback": {die: n}, "program": {die: n}}``
    #: — per-die breakdown from the telemetry registry.
    per_die: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return self.__dict__.copy()


def replay_trace(trace: IOTrace, target, honor_trims: bool = True,
                 label: Optional[str] = None) -> ReplayReport:
    """Feed a recorded trace into a storage target and report GC traffic.

    ``target`` is a :class:`~repro.device.blockdev.SyncBlockDevice`
    (FTL behind the legacy interface — trims dropped, as on the paper's
    black-box devices) or a
    :class:`~repro.core.storage.SyncNoFTLStorage` (full integration).
    """
    if isinstance(target, SyncBlockDevice):
        array = target.executor.device.array
        stats = target.ftl.stats
        ftl_registry = target.ftl.telemetry
        name = label or type(target.ftl).__name__
        for op in trace.ops:
            if op.kind == WRITE:
                target.write(op.page_id, data=None)
            elif op.kind == READ:
                target.read(op.page_id)
            elif honor_trims:
                target.trim(op.page_id)
    elif isinstance(target, SyncNoFTLStorage):
        array = target.executor.device.array
        stats = target.manager.stats
        ftl_registry = target.manager.telemetry
        name = label or "NoFTL"
        for op in trace.ops:
            if op.kind == WRITE:
                target.write(op.page_id, data=None, hint=op.hint)
            elif op.kind == READ:
                target.read(op.page_id)
            elif honor_trims:
                target.trim(op.page_id)
    else:
        raise TypeError(f"unsupported replay target: {target!r}")
    # Flash command totals come from the telemetry registry (the array's
    # legacy ``counters`` attribute agrees — see test_telemetry.py).
    registry = array.telemetry
    return ReplayReport(
        target=name,
        host_reads=stats.host_reads,
        host_writes=stats.host_writes,
        host_trims=stats.host_trims,
        copybacks=int(registry.value("flash.commands", op="copyback")),
        relocations=int(ftl_registry.value("ftl.relocations")),
        erases=int(registry.value("flash.commands", op="erase")),
        flash_reads=int(registry.value("flash.commands", op="read")),
        flash_programs=int(registry.value("flash.commands", op="program")),
        write_amplification=stats.write_amplification,
        per_die={
            op: sum_per_die(registry, op)
            for op in ("erase", "copyback", "program")
        },
    )
