"""TPC-C: order-entry OLTP with the standard five-transaction mix.

Structurally faithful to the spec — warehouses, 10 districts each,
customers, items, per-warehouse stock, orders / new-order / order-line /
history tables, the 45/43/4/4/4 NewOrder / Payment / OrderStatus /
Delivery / StockLevel mix, 1% of NewOrders rolling back by spec — but
dimensionally scaled (customers per district, item count) so runs fit a
simulated laptop.  The properties the paper's evaluation leans on are
preserved: high update skew on warehouse/district rows, secondary-index
traffic, inserts that grow tables, and Delivery's deletes that *shrink*
them (feeding NoFTL's trim path).

Composite keys pack into single ints for the unique B+-tree indexes.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Tuple

from ..db.database import Database
from ..db.heap import pack_rid, unpack_rid
from ..db.locks import LockMode
from .base import VoluntaryRollback, Workload

__all__ = ["TPCC"]

DISTRICTS_PER_WAREHOUSE = 10

_WAREHOUSE = struct.Struct("<qq40x")       # w_id, ytd
_DISTRICT = struct.Struct("<qqqq24x")      # (w,d), ytd, next_o_id, pad
_CUSTOMER = struct.Struct("<qqqqq24x")     # key, balance, ytd, payments, deliveries
_ITEM = struct.Struct("<qq32x")            # i_id, price
_STOCK = struct.Struct("<qqq24x")          # key, quantity, ytd
_ORDER = struct.Struct("<qqqq16x")         # key, c_id, ol_cnt, delivered
_ORDER_LINE = struct.Struct("<qqqq16x")    # key, i_id, qty, amount
_HISTORY = struct.Struct("<qqq24x")        # c_key, amount, pad
_NEW_ORDER = struct.Struct("<q40x")        # okey


def _dkey(w: int, d: int) -> int:
    return w * DISTRICTS_PER_WAREHOUSE + d


def _ckey(w: int, d: int, c: int) -> int:
    return (_dkey(w, d) << 20) | c


def _skey(w: int, i: int) -> int:
    return (w << 24) | i


def _okey(w: int, d: int, o: int) -> int:
    return (_dkey(w, d) << 28) | o


def _olkey(w: int, d: int, o: int, line: int) -> int:
    return (_okey(w, d, o) << 4) | line


class TPCC(Workload):
    name = "tpcc"

    MIX = (
        ("new-order", 45),
        ("payment", 43),
        ("order-status", 4),
        ("delivery", 4),
        ("stock-level", 4),
    )

    def __init__(self, warehouses: int = 1, customers_per_district: int = 60,
                 items: int = 200, initial_orders_per_district: int = 10):
        if warehouses < 1:
            raise ValueError("warehouses must be >= 1")
        if items < 20:
            raise ValueError("items must be >= 20")
        self.warehouses = warehouses
        self.customers_per_district = customers_per_district
        self.items = items
        self.initial_orders = initial_orders_per_district

    # -- loading -----------------------------------------------------------------------

    def declare_schema(self, db: Database):
        """Generator: the catalog alone (heaps + indexes, no rows) — what
        crash recovery re-declares before replaying the WAL."""
        db.create_heap("tpcc_warehouse", hint="hot")
        db.create_heap("tpcc_district", hint="hot")
        db.create_heap("tpcc_customer", hint="hot")
        db.create_heap("tpcc_item", hint="cold")
        db.create_heap("tpcc_stock", hint="hot")
        db.create_heap("tpcc_order", hint="hot")
        db.create_heap("tpcc_new_order", hint="hot")
        db.create_heap("tpcc_order_line", hint="hot")
        db.create_heap("tpcc_history", hint="cold")
        for name in ("tpcc_w_idx", "tpcc_d_idx", "tpcc_c_idx", "tpcc_i_idx",
                     "tpcc_s_idx", "tpcc_o_idx", "tpcc_no_idx",
                     "tpcc_ol_idx"):
            yield from db.create_index(name)

    def load(self, db: Database):
        yield from self.declare_schema(db)
        warehouses = db.heaps["tpcc_warehouse"]
        districts = db.heaps["tpcc_district"]
        customers = db.heaps["tpcc_customer"]
        items = db.heaps["tpcc_item"]
        stock = db.heaps["tpcc_stock"]
        w_idx = db.indexes["tpcc_w_idx"]
        d_idx = db.indexes["tpcc_d_idx"]
        c_idx = db.indexes["tpcc_c_idx"]
        i_idx = db.indexes["tpcc_i_idx"]
        s_idx = db.indexes["tpcc_s_idx"]

        txn = db.begin()
        for i_id in range(self.items):
            rid = yield from items.insert(
                txn, _ITEM.pack(i_id, 100 + (i_id % 900))
            )
            yield from i_idx.insert(txn, i_id, pack_rid(rid))
        yield from db.commit(txn)

        for w_id in range(self.warehouses):
            txn = db.begin()
            rid = yield from warehouses.insert(txn, _WAREHOUSE.pack(w_id, 0))
            yield from w_idx.insert(txn, w_id, pack_rid(rid))
            for i_id in range(self.items):
                rid = yield from stock.insert(
                    txn, _STOCK.pack(_skey(w_id, i_id), 100, 0)
                )
                yield from s_idx.insert(txn, _skey(w_id, i_id), pack_rid(rid))
            for d_id in range(DISTRICTS_PER_WAREHOUSE):
                rid = yield from districts.insert(
                    txn, _DISTRICT.pack(_dkey(w_id, d_id), 0,
                                        self.initial_orders, 0)
                )
                yield from d_idx.insert(txn, _dkey(w_id, d_id), pack_rid(rid))
                for c_id in range(self.customers_per_district):
                    rid = yield from customers.insert(
                        txn, _CUSTOMER.pack(_ckey(w_id, d_id, c_id),
                                            0, 0, 0, 0)
                    )
                    yield from c_idx.insert(txn, _ckey(w_id, d_id, c_id),
                                            pack_rid(rid))
            yield from db.commit(txn)

        # a few pre-existing undelivered orders per district
        txn = db.begin()
        for w_id in range(self.warehouses):
            for d_id in range(DISTRICTS_PER_WAREHOUSE):
                for o_id in range(self.initial_orders):
                    yield from self._insert_order(
                        db, txn, w_id, d_id, o_id,
                        c_id=o_id % self.customers_per_district,
                        lines=((o_id * 7) % 5) + 5,
                        rng=random.Random(o_id),
                    )
        yield from db.commit(txn)
        yield from db.checkpoint()

    def _insert_order(self, db, txn, w_id, d_id, o_id, c_id, lines, rng):
        orders = db.heaps["tpcc_order"]
        order_lines = db.heaps["tpcc_order_line"]
        o_idx = db.indexes["tpcc_o_idx"]
        no_idx = db.indexes["tpcc_no_idx"]
        ol_idx = db.indexes["tpcc_ol_idx"]
        new_orders = db.heaps["tpcc_new_order"]
        okey = _okey(w_id, d_id, o_id)
        rid = yield from orders.insert(
            txn, _ORDER.pack(okey, c_id, lines, 0)
        )
        yield from o_idx.insert(txn, okey, pack_rid(rid))
        no_rid = yield from new_orders.insert(txn, _NEW_ORDER.pack(okey))
        yield from no_idx.insert(txn, okey, pack_rid(no_rid))
        total = 0
        for line in range(lines):
            i_id = rng.randrange(self.items)
            qty = rng.randint(1, 10)
            amount = qty * (100 + (i_id % 900))
            total += amount
            rid = yield from order_lines.insert(
                txn, _ORDER_LINE.pack(_olkey(w_id, d_id, o_id, line),
                                      i_id, qty, amount)
            )
            yield from ol_idx.insert(txn, _olkey(w_id, d_id, o_id, line),
                                     pack_rid(rid))
        return total

    # -- mix -----------------------------------------------------------------------------

    def next_transaction(
        self, db: Database, rng: random.Random
    ) -> Tuple[str, Callable]:
        pick = rng.randrange(100)
        acc = 0
        for txn_name, weight in self.MIX:
            acc += weight
            if pick < acc:
                break
        w_id = rng.randrange(self.warehouses)
        d_id = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        if txn_name == "new-order":
            body = self._new_order(db, rng, w_id, d_id)
        elif txn_name == "payment":
            body = self._payment(db, rng, w_id, d_id)
        elif txn_name == "order-status":
            body = self._order_status(db, rng, w_id, d_id)
        elif txn_name == "delivery":
            body = self._delivery(db, rng, w_id)
        else:
            body = self._stock_level(db, rng, w_id, d_id)
        return txn_name, body

    # -- transactions -----------------------------------------------------------------------

    def _new_order(self, db, rng, w_id, d_id):
        c_id = rng.randrange(self.customers_per_district)
        n_lines = rng.randint(5, 15)
        # Sorted item order gives a global lock hierarchy on stock rows —
        # the standard deadlock-avoidance trick in TPC-C kits.
        item_ids = sorted(rng.sample(range(self.items),
                                     min(n_lines, self.items)))
        rollback = rng.randrange(100) == 0  # spec: 1% invalid item
        line_rng = random.Random(rng.randrange(2 ** 62))

        def body(txn):
            districts = db.heaps["tpcc_district"]
            d_idx = db.indexes["tpcc_d_idx"]
            s_idx = db.indexes["tpcc_s_idx"]
            stock = db.heaps["tpcc_stock"]

            packed = yield from d_idx.lookup(txn, _dkey(w_id, d_id))
            d_rid = unpack_rid(packed)
            raw = yield from districts.read(txn, d_rid, LockMode.EXCLUSIVE)
            dk, ytd, next_o_id, pad = _DISTRICT.unpack(raw)
            yield from districts.update(
                txn, d_rid, _DISTRICT.pack(dk, ytd, next_o_id + 1, pad)
            )
            for i_id in item_ids:
                packed = yield from s_idx.lookup(txn, _skey(w_id, i_id))
                s_rid = unpack_rid(packed)
                raw = yield from stock.read(txn, s_rid, LockMode.EXCLUSIVE)
                sk, quantity, s_ytd = _STOCK.unpack(raw)
                quantity = quantity - 1 if quantity > 10 else quantity + 91
                yield from stock.update(
                    txn, s_rid, _STOCK.pack(sk, quantity, s_ytd + 1)
                )
            yield from self._insert_order(
                db, txn, w_id, d_id, next_o_id, c_id,
                lines=len(item_ids), rng=line_rng,
            )
            if rollback:
                raise VoluntaryRollback()

        return body

    def _payment(self, db, rng, w_id, d_id):
        c_id = rng.randrange(self.customers_per_district)
        amount = rng.randint(100, 500_000)
        remote = self.warehouses > 1 and rng.randrange(100) < 15
        c_w = rng.randrange(self.warehouses) if remote else w_id

        def body(txn):
            warehouses = db.heaps["tpcc_warehouse"]
            districts = db.heaps["tpcc_district"]
            customers = db.heaps["tpcc_customer"]
            history = db.heaps["tpcc_history"]
            w_idx = db.indexes["tpcc_w_idx"]
            d_idx = db.indexes["tpcc_d_idx"]
            c_idx = db.indexes["tpcc_c_idx"]

            packed = yield from w_idx.lookup(txn, w_id)
            w_rid = unpack_rid(packed)
            raw = yield from warehouses.read(txn, w_rid, LockMode.EXCLUSIVE)
            wid, ytd = _WAREHOUSE.unpack(raw)
            yield from warehouses.update(
                txn, w_rid, _WAREHOUSE.pack(wid, ytd + amount)
            )

            packed = yield from d_idx.lookup(txn, _dkey(w_id, d_id))
            d_rid = unpack_rid(packed)
            raw = yield from districts.read(txn, d_rid, LockMode.EXCLUSIVE)
            dk, d_ytd, next_o_id, pad = _DISTRICT.unpack(raw)
            yield from districts.update(
                txn, d_rid, _DISTRICT.pack(dk, d_ytd + amount, next_o_id, pad)
            )

            ckey = _ckey(c_w, d_id, c_id)
            packed = yield from c_idx.lookup(txn, ckey)
            c_rid = unpack_rid(packed)
            raw = yield from customers.read(txn, c_rid, LockMode.EXCLUSIVE)
            ck, balance, c_ytd, payments, deliveries = _CUSTOMER.unpack(raw)
            yield from customers.update(
                txn, c_rid,
                _CUSTOMER.pack(ck, balance - amount, c_ytd + amount,
                               payments + 1, deliveries)
            )
            yield from history.insert(txn, _HISTORY.pack(ckey, amount, 0))

        return body

    def _order_status(self, db, rng, w_id, d_id):
        c_id = rng.randrange(self.customers_per_district)

        def body(txn):
            customers = db.heaps["tpcc_customer"]
            orders = db.heaps["tpcc_order"]
            order_lines = db.heaps["tpcc_order_line"]
            c_idx = db.indexes["tpcc_c_idx"]
            o_idx = db.indexes["tpcc_o_idx"]
            ol_idx = db.indexes["tpcc_ol_idx"]

            packed = yield from c_idx.lookup(txn, _ckey(w_id, d_id, c_id))
            yield from customers.read(txn, unpack_rid(packed),
                                      acquire_lock=False)
            # Last order of the district via the district's next_o_id —
            # O(1) instead of scanning the district's whole order range.
            d_idx = db.indexes["tpcc_d_idx"]
            districts = db.heaps["tpcc_district"]
            packed = yield from d_idx.lookup(txn, _dkey(w_id, d_id))
            raw = yield from districts.read(txn, unpack_rid(packed),
                                            acquire_lock=False)
            __, __, next_o_id, __ = _DISTRICT.unpack(raw)
            if next_o_id == 0:
                return
            okey = _okey(w_id, d_id, next_o_id - 1)
            packed = yield from o_idx.lookup(txn, okey)
            if packed is None:
                return
            raw = yield from orders.read(txn, unpack_rid(packed),
                                         acquire_lock=False)
            __, __, ol_cnt, __ = _ORDER.unpack(raw)
            lines = yield from ol_idx.range(txn, okey << 4, (okey << 4) | 0xF)
            for __, packed_line in lines:
                try:
                    yield from order_lines.read(txn, unpack_rid(packed_line),
                                                acquire_lock=False)
                except KeyError:
                    continue  # READ UNCOMMITTED: tolerate vanished rows

        return body

    def _delivery(self, db, rng, w_id):
        def body(txn):
            orders = db.heaps["tpcc_order"]
            order_lines = db.heaps["tpcc_order_line"]
            customers = db.heaps["tpcc_customer"]
            no_idx = db.indexes["tpcc_no_idx"]
            o_idx = db.indexes["tpcc_o_idx"]
            ol_idx = db.indexes["tpcc_ol_idx"]
            c_idx = db.indexes["tpcc_c_idx"]

            new_orders = db.heaps["tpcc_new_order"]
            for d_id in range(DISTRICTS_PER_WAREHOUSE):
                low = _okey(w_id, d_id, 0)
                high = _okey(w_id, d_id, (1 << 28) - 1)
                undelivered = yield from no_idx.range(txn, low, high,
                                                      limit=1)
                if not undelivered:
                    continue
                okey, packed_no = undelivered[0]
                # consume the NEW_ORDER row (heap delete -> page may empty
                # -> free-space manager trims the flash).  A concurrent
                # Delivery may have grabbed the same row: the loser skips.
                try:
                    yield from new_orders.delete(txn, unpack_rid(packed_no))
                except KeyError:
                    continue
                try:
                    yield from no_idx.delete(txn, okey)
                except KeyError:
                    continue
                packed = yield from o_idx.lookup(txn, okey)
                o_rid = unpack_rid(packed)
                raw = yield from orders.read(txn, o_rid, LockMode.EXCLUSIVE)
                ok, c_id, ol_cnt, __ = _ORDER.unpack(raw)
                yield from orders.update(
                    txn, o_rid, _ORDER.pack(ok, c_id, ol_cnt, 1)
                )
                total = 0
                lines = yield from ol_idx.range(txn, okey << 4,
                                                (okey << 4) | 0xF)
                for line_key, packed_line in lines:
                    ol_rid = unpack_rid(packed_line)
                    try:
                        raw = yield from order_lines.read(txn, ol_rid)
                    except KeyError:
                        continue  # stale entry from an aborted NewOrder
                    total += _ORDER_LINE.unpack(raw)[3]
                ckey = _ckey(w_id, d_id, c_id)
                packed = yield from c_idx.lookup(txn, ckey)
                c_rid = unpack_rid(packed)
                raw = yield from customers.read(txn, c_rid,
                                                LockMode.EXCLUSIVE)
                ck, balance, ytd, payments, deliveries = _CUSTOMER.unpack(raw)
                yield from customers.update(
                    txn, c_rid,
                    _CUSTOMER.pack(ck, balance + total, ytd, payments,
                                   deliveries + 1)
                )

        return body

    # -- consistency audit ---------------------------------------------------

    def verify_consistency(self, db: Database):
        """Generator: the spec's core consistency conditions, scaled.

        * every district's ``next_o_id`` equals the number of orders that
          exist for it (orders are never deleted);
        * warehouse YTD equals the sum of its districts' YTD;
        * undelivered (NEW_ORDER) rows are a subset of the orders.
        Returns True iff all hold.
        """
        txn = db.begin()
        district_rows = yield from db.heaps["tpcc_district"].scan(txn)
        warehouse_rows = yield from db.heaps["tpcc_warehouse"].scan(txn)
        order_rows = yield from db.heaps["tpcc_order"].scan(txn)
        new_order_rows = yield from db.heaps["tpcc_new_order"].scan(txn)
        yield from db.commit(txn)

        next_o_total = 0
        district_ytd = {}
        for __, raw in district_rows:
            dk, ytd, next_o_id, __pad = _DISTRICT.unpack(raw)
            next_o_total += next_o_id
            w_id = dk // DISTRICTS_PER_WAREHOUSE
            district_ytd[w_id] = district_ytd.get(w_id, 0) + ytd
        if next_o_total != len(order_rows):
            return False

        for __, raw in warehouse_rows:
            w_id, ytd = _WAREHOUSE.unpack(raw)
            if ytd != district_ytd.get(w_id, 0):
                return False

        order_keys = {_ORDER.unpack(raw)[0] for __, raw in order_rows}
        undelivered = {_NEW_ORDER.unpack(raw)[0]
                       for __, raw in new_order_rows}
        return undelivered <= order_keys

    def _stock_level(self, db, rng, w_id, d_id):
        threshold = rng.randint(10, 20)

        def body(txn):
            districts = db.heaps["tpcc_district"]
            stock = db.heaps["tpcc_stock"]
            d_idx = db.indexes["tpcc_d_idx"]
            s_idx = db.indexes["tpcc_s_idx"]
            ol_idx = db.indexes["tpcc_ol_idx"]
            order_lines = db.heaps["tpcc_order_line"]

            packed = yield from d_idx.lookup(txn, _dkey(w_id, d_id))
            raw = yield from districts.read(txn, unpack_rid(packed),
                                            acquire_lock=False)
            __, __, next_o_id, __ = _DISTRICT.unpack(raw)
            low_o = max(0, next_o_id - 5)
            low = _olkey(w_id, d_id, low_o, 0)
            high = _olkey(w_id, d_id, max(0, next_o_id - 1), 0xF)
            lines = yield from ol_idx.range(txn, low, high)
            seen = set()
            low_stock = 0
            for __, packed_line in lines[:40]:
                try:
                    raw = yield from order_lines.read(
                        txn, unpack_rid(packed_line), acquire_lock=False)
                except KeyError:
                    continue  # READ UNCOMMITTED: tolerate vanished rows
                i_id = _ORDER_LINE.unpack(raw)[1]
                if i_id in seen:
                    continue
                seen.add(i_id)
                packed_stock = yield from s_idx.lookup(txn, _skey(w_id, i_id))
                raw = yield from stock.read(txn, unpack_rid(packed_stock),
                                            acquire_lock=False)
                if _STOCK.unpack(raw)[1] < threshold:
                    low_stock += 1

        return body
