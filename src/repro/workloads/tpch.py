"""TPC-H (scaled): decision-support scans over orders/lineitem.

The demo lets the audience pick TPC-H as the read-mostly counterpoint to
the OLTP kits.  The schema keeps the two big tables (orders, lineitem)
plus customer; the "transactions" are three spec-shaped queries:

* Q1-like: full lineitem scan with grouped aggregation;
* Q6-like: filtered lineitem scan computing a revenue sum;
* Q3-like: customer-filtered join of orders and lineitem via index.

Scans stream pages through the buffer pool, so on flash they turn into
long sequential read bursts — the access pattern whose latency NoFTL
keeps flat while FTL devices interleave it with GC.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Tuple

from ..db.database import Database
from ..db.heap import pack_rid
from .base import Workload

__all__ = ["TPCH"]

_CUSTOMER = struct.Struct("<qq36x")      # c_id, segment
_ORDER = struct.Struct("<qqqq16x")       # o_id, c_id, date, lines
_LINEITEM = struct.Struct("<qqqq16x")    # (o_id, line), qty, price, discount%

LINES_PER_ORDER = 4


class TPCH(Workload):
    name = "tpch"

    MIX = (("q1-aggregate", 34), ("q6-revenue", 33), ("q3-join", 33))

    def __init__(self, customers: int = 100, orders: int = 500):
        if customers < 1 or orders < 1:
            raise ValueError("customers and orders must be >= 1")
        self.customers = customers
        self.orders = orders

    def load(self, db: Database):
        customers = db.create_heap("tpch_customer", hint="cold")
        orders = db.create_heap("tpch_orders", hint="cold")
        lineitems = db.create_heap("tpch_lineitem", hint="cold")
        o_idx = yield from db.create_index("tpch_o_idx")
        rng = random.Random(42)

        txn = db.begin()
        for c_id in range(self.customers):
            yield from customers.insert(txn, _CUSTOMER.pack(c_id, c_id % 5))
        for o_id in range(self.orders):
            c_id = rng.randrange(self.customers)
            date = rng.randrange(2400)
            rid = yield from orders.insert(
                txn, _ORDER.pack(o_id, c_id, date, LINES_PER_ORDER)
            )
            yield from o_idx.insert(txn, o_id, pack_rid(rid))
            for line in range(LINES_PER_ORDER):
                yield from lineitems.insert(
                    txn,
                    _LINEITEM.pack(o_id * LINES_PER_ORDER + line,
                                   rng.randint(1, 50),
                                   rng.randint(100, 10_000),
                                   rng.randint(0, 10)),
                )
            if (o_id + 1) % 200 == 0:
                yield from db.commit(txn)
                txn = db.begin()
        yield from db.commit(txn)
        yield from db.checkpoint()

    def next_transaction(
        self, db: Database, rng: random.Random
    ) -> Tuple[str, Callable]:
        pick = rng.randrange(100)
        acc = 0
        for txn_name, weight in self.MIX:
            acc += weight
            if pick < acc:
                break
        builder = {
            "q1-aggregate": self._q1,
            "q6-revenue": self._q6,
            "q3-join": self._q3,
        }[txn_name]
        return txn_name, builder(db, rng)

    def _q1(self, db, rng):
        def body(txn):
            lineitems = db.heaps["tpch_lineitem"]
            rows = yield from lineitems.scan(txn)
            groups = {}
            for __, raw in rows:
                key, qty, price, discount = _LINEITEM.unpack(raw)[:4]
                bucket = discount % 3
                total_qty, total_rev = groups.get(bucket, (0, 0))
                groups[bucket] = (total_qty + qty,
                                  total_rev + qty * price)
            yield from db.cpu(len(rows) // 10)
            return groups

        return body

    def _q6(self, db, rng):
        low_disc = rng.randint(0, 5)

        def body(txn):
            lineitems = db.heaps["tpch_lineitem"]
            rows = yield from lineitems.scan(txn)
            revenue = 0
            for __, raw in rows:
                __, qty, price, discount = _LINEITEM.unpack(raw)[:4]
                if discount >= low_disc and qty < 25:
                    revenue += qty * price * discount // 100
            yield from db.cpu(len(rows) // 10)
            return revenue

        return body

    def _q3(self, db, rng):
        segment = rng.randrange(5)

        def body(txn):
            customers = db.heaps["tpch_customer"]
            orders = db.heaps["tpch_orders"]
            rows = yield from customers.scan(txn)
            wanted = {
                _CUSTOMER.unpack(raw)[0]
                for __, raw in rows
                if _CUSTOMER.unpack(raw)[1] == segment
            }
            order_rows = yield from orders.scan(txn)
            matched = [
                _ORDER.unpack(raw)[0]
                for __, raw in order_rows
                if _ORDER.unpack(raw)[1] in wanted
            ]
            yield from db.cpu(len(matched))
            return len(matched)

        return body
