"""TPC-B: the classic bank-transfer OLTP stress test.

Structurally faithful, dimensionally scaled: ``sf`` branches, 10 tellers
per branch, ``accounts_per_branch`` accounts per branch (the official
100 000 per branch shrinks to a laptop-sized default — access *skew* and
the read/modify/write pattern are what the paper's experiments depend
on, not the absolute footprint).

The transaction (100% of the mix) is the spec's: update one account, its
teller and its branch balance by a random delta and append a history
row.  85% of transactions touch an account of the teller's home branch,
15% a remote one, as in the spec.

``verify_consistency`` checks the invariant auditors would:
sum(accounts) == sum(tellers) == sum(branches) == sum(history deltas).
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Tuple

from ..db.database import Database
from ..db.heap import pack_rid, unpack_rid
from ..db.locks import LockMode
from .base import Workload

__all__ = ["TPCB"]

_ACCOUNT = struct.Struct("<qqq28x")   # aid, bid, balance (+pad -> 52 bytes)
_TELLER = struct.Struct("<qqq28x")
_BRANCH = struct.Struct("<qq36x")     # bid, balance
_HISTORY = struct.Struct("<qqqq20x")  # aid, tid, bid, delta

TELLERS_PER_BRANCH = 10


class TPCB(Workload):
    name = "tpcb"

    def __init__(self, sf: int = 1, accounts_per_branch: int = 1000,
                 remote_fraction: float = 0.15):
        if sf < 1:
            raise ValueError("sf must be >= 1")
        if accounts_per_branch < TELLERS_PER_BRANCH:
            raise ValueError("accounts_per_branch too small")
        self.sf = sf
        self.accounts_per_branch = accounts_per_branch
        self.remote_fraction = remote_fraction
        self.num_branches = sf
        self.num_tellers = sf * TELLERS_PER_BRANCH
        self.num_accounts = sf * accounts_per_branch

    # -- loading -------------------------------------------------------------------

    def declare_schema(self, db: Database):
        """Generator: the catalog alone (heaps + indexes, no rows) — what
        crash recovery re-declares before replaying the WAL."""
        db.create_heap("tpcb_accounts", hint="hot")
        db.create_heap("tpcb_tellers", hint="hot")
        db.create_heap("tpcb_branches", hint="hot")
        db.create_heap("tpcb_history", hint="cold")
        yield from db.create_index("tpcb_account_idx")
        yield from db.create_index("tpcb_teller_idx")
        yield from db.create_index("tpcb_branch_idx")

    def load(self, db: Database):
        yield from self.declare_schema(db)
        accounts = db.heaps["tpcb_accounts"]
        tellers = db.heaps["tpcb_tellers"]
        branches = db.heaps["tpcb_branches"]
        account_idx = db.indexes["tpcb_account_idx"]
        teller_idx = db.indexes["tpcb_teller_idx"]
        branch_idx = db.indexes["tpcb_branch_idx"]

        txn = db.begin()
        for bid in range(self.num_branches):
            rid = yield from branches.insert(txn, _BRANCH.pack(bid, 0))
            yield from branch_idx.insert(txn, bid, pack_rid(rid))
        for tid in range(self.num_tellers):
            bid = tid // TELLERS_PER_BRANCH
            rid = yield from tellers.insert(txn, _TELLER.pack(tid, bid, 0))
            yield from teller_idx.insert(txn, tid, pack_rid(rid))
        for aid in range(self.num_accounts):
            bid = aid // self.accounts_per_branch
            rid = yield from accounts.insert(txn, _ACCOUNT.pack(aid, bid, 0))
            yield from account_idx.insert(txn, aid, pack_rid(rid))
        yield from db.commit(txn)
        yield from db.checkpoint()

    # -- the transaction ---------------------------------------------------------------

    def next_transaction(
        self, db: Database, rng: random.Random
    ) -> Tuple[str, Callable]:
        tid = rng.randrange(self.num_tellers)
        home_bid = tid // TELLERS_PER_BRANCH
        if self.num_branches > 1 and rng.random() < self.remote_fraction:
            bid = rng.randrange(self.num_branches - 1)
            if bid >= home_bid:
                bid += 1
        else:
            bid = home_bid
        aid = bid * self.accounts_per_branch \
            + rng.randrange(self.accounts_per_branch)
        delta = rng.randint(-99_999, 99_999)

        def body(txn):
            yield from self._transfer(db, txn, aid, tid, home_bid, delta)

        return "account-update", body

    def _transfer(self, db: Database, txn, aid: int, tid: int, bid: int,
                  delta: int):
        accounts = db.heaps["tpcb_accounts"]
        tellers = db.heaps["tpcb_tellers"]
        branches = db.heaps["tpcb_branches"]
        history = db.heaps["tpcb_history"]
        account_idx = db.indexes["tpcb_account_idx"]
        teller_idx = db.indexes["tpcb_teller_idx"]
        branch_idx = db.indexes["tpcb_branch_idx"]

        packed = yield from account_idx.lookup(txn, aid)
        account_rid = unpack_rid(packed)
        raw = yield from accounts.read(txn, account_rid, LockMode.EXCLUSIVE)
        a_aid, a_bid, balance = _ACCOUNT.unpack(raw)
        yield from accounts.update(
            txn, account_rid, _ACCOUNT.pack(a_aid, a_bid, balance + delta)
        )

        packed = yield from teller_idx.lookup(txn, tid)
        teller_rid = unpack_rid(packed)
        raw = yield from tellers.read(txn, teller_rid, LockMode.EXCLUSIVE)
        t_tid, t_bid, t_balance = _TELLER.unpack(raw)
        yield from tellers.update(
            txn, teller_rid, _TELLER.pack(t_tid, t_bid, t_balance + delta)
        )

        packed = yield from branch_idx.lookup(txn, t_bid)
        branch_rid = unpack_rid(packed)
        raw = yield from branches.read(txn, branch_rid, LockMode.EXCLUSIVE)
        b_bid, b_balance = _BRANCH.unpack(raw)
        yield from branches.update(
            txn, branch_rid, _BRANCH.pack(b_bid, b_balance + delta)
        )

        yield from history.insert(
            txn, _HISTORY.pack(aid, tid, t_bid, delta)
        )

    # -- consistency audit ------------------------------------------------------------------

    def verify_consistency(self, db: Database):
        """Generator: returns True iff the bank balances reconcile."""
        txn = db.begin()
        accounts = yield from db.heaps["tpcb_accounts"].scan(txn)
        tellers = yield from db.heaps["tpcb_tellers"].scan(txn)
        branches = yield from db.heaps["tpcb_branches"].scan(txn)
        history = yield from db.heaps["tpcb_history"].scan(txn)
        yield from db.commit(txn)
        account_total = sum(_ACCOUNT.unpack(raw)[2] for __, raw in accounts)
        teller_total = sum(_TELLER.unpack(raw)[2] for __, raw in tellers)
        branch_total = sum(_BRANCH.unpack(raw)[1] for __, raw in branches)
        history_total = sum(_HISTORY.unpack(raw)[3] for __, raw in history)
        return (account_total == teller_total == branch_total
                == history_total)
