"""Workload framework: transaction mixes, terminals and throughput metering.

A workload declares how to *load* a database and how to produce one
random transaction body according to its mix.  :func:`run_workload`
spawns the paper's testbed around it: N terminal processes (the "16 read
processes" of Figure 4) submitting transactions back-to-back for a fixed
span of simulated time, with abort-and-retry on lock timeouts, metering
TPS and per-transaction latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..db.database import Database
from ..db.locks import TxnAborted
from ..sim import LatencyRecorder, Simulator

__all__ = ["WorkloadStats", "Workload", "run_workload"]


@dataclass
class WorkloadStats:
    """Outcome of one timed run."""

    duration_us: float = 0.0
    commits: int = 0
    aborts: int = 0
    retries: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)
    latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("txn")
    )

    @property
    def tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.duration_us <= 0:
            return 0.0
        return self.commits / (self.duration_us / 1_000_000.0)

    def summary(self) -> dict:
        return {
            "tps": self.tps,
            "commits": self.commits,
            "aborts": self.aborts,
            "retries": self.retries,
            "per_type": dict(self.per_type),
            "latency": self.latency.summary(),
        }


class Workload:
    """Base class: subclasses define ``name``, :meth:`load` and
    :meth:`next_transaction`."""

    name = "workload"

    def load(self, db: Database):  # pragma: no cover - interface
        """Generator: create schema and populate the database."""
        raise NotImplementedError

    def declare_schema(self, db: Database):  # pragma: no cover - interface
        """Generator: create the catalog only (no rows).

        Crash recovery re-declares the schema on a fresh database before
        replaying the WAL; workloads that support the crash harness
        override this (and build :meth:`load` on top of it)."""
        raise NotImplementedError

    def next_transaction(
        self, db: Database, rng: random.Random
    ) -> Tuple[str, Callable]:  # pragma: no cover - interface
        """Pick one transaction from the mix.

        Returns ``(type_name, body)`` where ``body(txn)`` is a generator
        executing the transaction's logic (the framework handles begin /
        commit / abort / retry).
        """
        raise NotImplementedError


def run_workload(
    sim: Simulator,
    db: Database,
    workload: Workload,
    duration_us: float,
    num_terminals: int = 16,
    rng: Optional[random.Random] = None,
    max_retries: int = 5,
    warmup_us: float = 0.0,
    preloaded: bool = False,
) -> WorkloadStats:
    """Load the database, run terminals for ``duration_us`` of simulated
    time, return the metered stats.

    ``preloaded=True`` skips the load phase — for callers (like the perf
    harness) that ran ``workload.load(db)`` themselves, e.g. to keep it
    out of a wall-clock measurement window.

    The caller is responsible for having started db-writers (or not) —
    that choice is the subject of Figure 4.
    """
    if duration_us <= 0:
        raise ValueError("duration_us must be positive")
    if num_terminals < 1:
        raise ValueError("num_terminals must be >= 1")
    rng = rng or random.Random(0)
    stats = WorkloadStats()

    if not preloaded:
        sim.run_process(workload.load(db))

    start_at = sim.now + warmup_us
    end_at = start_at + duration_us

    def terminal(term_rng: random.Random):
        while sim.now < end_at:
            txn_name, body = workload.next_transaction(db, term_rng)
            began = sim.now
            committed = False
            for attempt in range(max_retries + 1):
                txn = db.begin()
                try:
                    yield from body(txn)
                except TxnAborted:
                    if txn.is_active:
                        yield from db.abort(txn)
                    stats.retries += 1
                    continue
                except _VoluntaryRollback:
                    yield from db.abort(txn)
                    if sim.now >= start_at:
                        stats.aborts += 1
                    committed = True  # rolled back by design: not retried
                    break
                yield from db.commit(txn)
                committed = True
                if sim.now >= start_at and began >= start_at:
                    stats.commits += 1
                    stats.per_type[txn_name] = \
                        stats.per_type.get(txn_name, 0) + 1
                    stats.latency.record(sim.now - began)
                break
            if not committed:
                stats.aborts += 1

    terminals = [
        sim.process(terminal(random.Random(rng.randrange(2 ** 62))))
        for __ in range(num_terminals)
    ]

    if db.writers is not None:
        def supervisor():
            # Writers poll forever; retire them once the terminals finish
            # (after a short drain window) so the event queue empties.
            yield sim.all_of(terminals)
            yield sim.timeout(5_000)
            db.writers.stop()

        sim.process(supervisor())
    sim.run()
    stats.duration_us = duration_us
    return stats


class _VoluntaryRollback(Exception):
    """Raised by transaction bodies that roll back by specification
    (e.g. 1% of TPC-C NewOrder)."""


# Exposed for workload implementations.
VoluntaryRollback = _VoluntaryRollback
__all__.append("VoluntaryRollback")
