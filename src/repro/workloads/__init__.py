"""Workloads: the TPC kits the paper evaluates with (-B, -C, -E, -H),
FIO-style synthetic jobs, trace recording/replay, and the terminal-pool
runner that meters transactions per second."""

from .base import Workload, WorkloadStats, VoluntaryRollback, run_workload
from .synth import SyntheticResult, SyntheticSpec, run_synthetic
from .tpcb import TPCB
from .tpcc import TPCC
from .tpce import TPCE
from .tpch import TPCH
from .trace import (
    IOTrace,
    ReplayReport,
    TraceOp,
    TraceRecordingAdapter,
    replay_trace,
)

__all__ = [
    "Workload",
    "WorkloadStats",
    "VoluntaryRollback",
    "run_workload",
    "SyntheticResult",
    "SyntheticSpec",
    "run_synthetic",
    "TPCB",
    "TPCC",
    "TPCE",
    "TPCH",
    "IOTrace",
    "ReplayReport",
    "TraceOp",
    "TraceRecordingAdapter",
    "replay_trace",
]
