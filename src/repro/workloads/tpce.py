"""TPC-E (scaled): brokerage OLTP.

TPC-E is far larger than TPC-C in schema; this implementation keeps the
tables and transactions that generate its characteristic I/O — a
read-heavier mix than TPC-B/C (the spec is ~77% read) with bursts of
trade inserts and status updates:

* customers, accounts (balance), securities (price), trades;
* TradeOrder (insert trade + account update), TradeResult (trade status
  update + account settle), MarketFeed (security price updates),
  TradeLookup / CustomerPosition (reads).

The paper runs "TPC-E 1K Customers" for its Figure 3 trace; the same
scaling knob exists here.
"""

from __future__ import annotations

import random
import struct
from collections import deque
from typing import Callable, Tuple

from ..db.database import Database
from ..db.heap import pack_rid, unpack_rid
from ..db.locks import LockMode
from .base import Workload

__all__ = ["TPCE"]

_CUSTOMER = struct.Struct("<qq36x")    # c_id, tier
_ACCOUNT = struct.Struct("<qqq28x")    # a_id, c_id, balance
_SECURITY = struct.Struct("<qq36x")    # s_id, price
_TRADE = struct.Struct("<qqqqqq4x")    # t_id, a_id, s_id, qty, price, status

_PENDING, _COMPLETED = 0, 1

ACCOUNTS_PER_CUSTOMER = 2


class TPCE(Workload):
    name = "tpce"

    MIX = (
        ("trade-order", 20),
        ("trade-result", 16),
        ("market-feed", 4),
        ("trade-lookup", 30),
        ("customer-position", 30),
    )

    def __init__(self, customers: int = 1000, securities: int = 100):
        if customers < 1 or securities < 1:
            raise ValueError("customers and securities must be >= 1")
        self.customers = customers
        self.securities = securities
        self.num_accounts = customers * ACCOUNTS_PER_CUSTOMER
        self._next_trade_id = 0
        self._pending: deque = deque()

    def load(self, db: Database):
        customers = db.create_heap("tpce_customer", hint="cold")
        accounts = db.create_heap("tpce_account", hint="hot")
        securities = db.create_heap("tpce_security", hint="hot")
        db.create_heap("tpce_trade", hint="hot")
        c_idx = yield from db.create_index("tpce_c_idx")
        a_idx = yield from db.create_index("tpce_a_idx")
        s_idx = yield from db.create_index("tpce_s_idx")
        yield from db.create_index("tpce_t_idx")

        txn = db.begin()
        for c_id in range(self.customers):
            rid = yield from customers.insert(
                txn, _CUSTOMER.pack(c_id, c_id % 3)
            )
            yield from c_idx.insert(txn, c_id, pack_rid(rid))
            if (c_id + 1) % 500 == 0:
                yield from db.commit(txn)
                txn = db.begin()
        for a_id in range(self.num_accounts):
            rid = yield from accounts.insert(
                txn, _ACCOUNT.pack(a_id, a_id // ACCOUNTS_PER_CUSTOMER,
                                   1_000_000)
            )
            yield from a_idx.insert(txn, a_id, pack_rid(rid))
            if (a_id + 1) % 500 == 0:
                yield from db.commit(txn)
                txn = db.begin()
        for s_id in range(self.securities):
            rid = yield from securities.insert(
                txn, _SECURITY.pack(s_id, 1000 + s_id)
            )
            yield from s_idx.insert(txn, s_id, pack_rid(rid))
        yield from db.commit(txn)
        yield from db.checkpoint()

    def next_transaction(
        self, db: Database, rng: random.Random
    ) -> Tuple[str, Callable]:
        pick = rng.randrange(100)
        acc = 0
        for txn_name, weight in self.MIX:
            acc += weight
            if pick < acc:
                break
        if txn_name == "trade-result" and not self._pending:
            txn_name = "trade-order"
        builder = {
            "trade-order": self._trade_order,
            "trade-result": self._trade_result,
            "market-feed": self._market_feed,
            "trade-lookup": self._trade_lookup,
            "customer-position": self._customer_position,
        }[txn_name]
        return txn_name, builder(db, rng)

    # -- transactions -------------------------------------------------------------

    def _trade_order(self, db, rng):
        a_id = rng.randrange(self.num_accounts)
        s_id = rng.randrange(self.securities)
        qty = rng.randint(1, 100)
        t_id = self._next_trade_id
        self._next_trade_id += 1

        def body(txn):
            trades = db.heaps["tpce_trade"]
            accounts = db.heaps["tpce_account"]
            securities = db.heaps["tpce_security"]
            a_idx = db.indexes["tpce_a_idx"]
            s_idx = db.indexes["tpce_s_idx"]
            t_idx = db.indexes["tpce_t_idx"]

            packed = yield from s_idx.lookup(txn, s_id)
            raw = yield from securities.read(txn, unpack_rid(packed))
            __, price = _SECURITY.unpack(raw)

            packed = yield from a_idx.lookup(txn, a_id)
            a_rid = unpack_rid(packed)
            raw = yield from accounts.read(txn, a_rid, LockMode.EXCLUSIVE)
            aid, c_id, balance = _ACCOUNT.unpack(raw)
            yield from accounts.update(
                txn, a_rid,
                _ACCOUNT.pack(aid, c_id, balance - qty * price)
            )
            rid = yield from trades.insert(
                txn, _TRADE.pack(t_id, a_id, s_id, qty, price, _PENDING)
            )
            yield from t_idx.insert(txn, t_id, pack_rid(rid))
            self._pending.append(t_id)

        return body

    def _trade_result(self, db, rng):
        t_id = self._pending.popleft() if self._pending else None

        def body(txn):
            if t_id is None:
                return
            trades = db.heaps["tpce_trade"]
            t_idx = db.indexes["tpce_t_idx"]
            packed = yield from t_idx.lookup(txn, t_id)
            if packed is None:
                return
            t_rid = unpack_rid(packed)
            raw = yield from trades.read(txn, t_rid, LockMode.EXCLUSIVE)
            tid, a_id, s_id, qty, price, __ = _TRADE.unpack(raw)
            yield from trades.update(
                txn, t_rid,
                _TRADE.pack(tid, a_id, s_id, qty, price, _COMPLETED)
            )

        return body

    def _market_feed(self, db, rng):
        picks = [rng.randrange(self.securities) for __ in range(5)]

        def body(txn):
            securities = db.heaps["tpce_security"]
            s_idx = db.indexes["tpce_s_idx"]
            for s_id in sorted(set(picks)):
                packed = yield from s_idx.lookup(txn, s_id)
                s_rid = unpack_rid(packed)
                raw = yield from securities.read(txn, s_rid,
                                                 LockMode.EXCLUSIVE)
                sid, price = _SECURITY.unpack(raw)
                delta = rng.randint(-5, 5)
                yield from securities.update(
                    txn, s_rid, _SECURITY.pack(sid, max(1, price + delta))
                )

        return body

    def _trade_lookup(self, db, rng):
        low = rng.randrange(max(1, self._next_trade_id or 1))
        count = 10

        def body(txn):
            trades = db.heaps["tpce_trade"]
            t_idx = db.indexes["tpce_t_idx"]
            found = yield from t_idx.range(txn, low, low + 100, limit=count)
            for __, packed in found:
                yield from trades.read(txn, unpack_rid(packed),
                                       acquire_lock=False)

        return body

    def _customer_position(self, db, rng):
        c_id = rng.randrange(self.customers)

        def body(txn):
            customers = db.heaps["tpce_customer"]
            accounts = db.heaps["tpce_account"]
            c_idx = db.indexes["tpce_c_idx"]
            a_idx = db.indexes["tpce_a_idx"]
            packed = yield from c_idx.lookup(txn, c_id)
            yield from customers.read(txn, unpack_rid(packed),
                                      acquire_lock=False)
            for offset in range(ACCOUNTS_PER_CUSTOMER):
                a_id = c_id * ACCOUNTS_PER_CUSTOMER + offset
                packed = yield from a_idx.lookup(txn, a_id)
                yield from accounts.read(txn, unpack_rid(packed),
                                         acquire_lock=False)

        return body
