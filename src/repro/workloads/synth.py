"""Synthetic storage-level workloads (the FIO of Demo Scenario 1).

These bypass the DBMS and drive a storage front-end directly — random or
sequential reads/writes at a configurable queue depth — for the
experiments that characterise devices rather than databases: emulator
validation (E7), latency distributions (E6) and the SATA-vs-native
concurrency comparison (E8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..sim import LatencyRecorder, Simulator

__all__ = ["SyntheticSpec", "SyntheticResult", "run_synthetic"]


@dataclass(frozen=True)
class SyntheticSpec:
    """One FIO-style job description.

    ``pattern`` is ``"random"`` or ``"sequential"``; ``read_fraction`` in
    [0, 1]; ``queue_depth`` concurrent submitters; ``span`` the logical
    page range touched (defaults to the whole device); ``ops`` total
    operations across all submitters.
    """

    pattern: str = "random"
    read_fraction: float = 0.0
    queue_depth: int = 1
    ops: int = 1000
    span: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.pattern not in ("random", "sequential"):
            raise ValueError("pattern must be 'random' or 'sequential'")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.queue_depth < 1 or self.ops < 1:
            raise ValueError("queue_depth and ops must be >= 1")


@dataclass
class SyntheticResult:
    """Measured outcome of one job."""

    spec: SyntheticSpec
    duration_us: float
    read_latency: LatencyRecorder
    write_latency: LatencyRecorder

    @property
    def iops(self) -> float:
        total = self.read_latency.count + self.write_latency.count
        if self.duration_us <= 0:
            return 0.0
        return total / (self.duration_us / 1_000_000.0)

    def summary(self) -> dict:
        return {
            "pattern": self.spec.pattern,
            "queue_depth": self.spec.queue_depth,
            "iops": self.iops,
            "reads": self.read_latency.summary(),
            "writes": self.write_latency.summary(),
        }


def run_synthetic(sim: Simulator, storage, spec: SyntheticSpec,
                  prefill: bool = True,
                  frontend_config=None) -> SyntheticResult:
    """Run one synthetic job against a storage front-end.

    ``storage`` needs generator methods ``read(lpn)`` / ``write(lpn,
    data)`` and a ``logical_pages`` attribute (block device, NoFTL
    storage, or an adapter).  When ``prefill`` is set, the touched span
    is written once first so reads always hit programmed pages.

    ``frontend_config`` (opt-in) interposes a
    :class:`~repro.device.frontend.DeviceFrontend` between the
    submitters and the storage: writes ack against the write-back cache
    and the job ends with a ``flush_barrier`` so the measured duration
    covers real media work, not a cache full of volatile acks.
    """
    if frontend_config is not None:
        from ..device import DeviceFrontend, wrap_storage

        storage = DeviceFrontend(sim, wrap_storage(storage),
                                 frontend_config)
    span = spec.span or storage.logical_pages
    if span > storage.logical_pages:
        raise ValueError("span exceeds device capacity")
    rng = random.Random(spec.seed)
    read_latency = LatencyRecorder("synthetic-read")
    write_latency = LatencyRecorder("synthetic-write")

    if prefill:
        def fill():
            for lpn in range(span):
                yield from storage.write(lpn, data=("prefill", lpn))

        sim.run_process(fill())

    started = sim.now
    remaining = [spec.ops]
    cursor = [0]

    def submitter(job_rng: random.Random):
        while remaining[0] > 0:
            remaining[0] -= 1
            if spec.pattern == "random":
                lpn = job_rng.randrange(span)
            else:
                lpn = cursor[0] % span
                cursor[0] += 1
            is_read = job_rng.random() < spec.read_fraction
            begin = sim.now
            if is_read:
                yield from storage.read(lpn)
                read_latency.record(sim.now - begin)
            else:
                yield from storage.write(lpn, data=("op", lpn))
                write_latency.record(sim.now - begin)

    for index in range(spec.queue_depth):
        sim.process(submitter(random.Random(rng.randrange(2 ** 62))))
    sim.run()
    if frontend_config is not None:
        # Drain the write-back cache inside the measurement window: an
        # IOPS figure that leaves acked pages volatile is a lie.
        sim.run_process(storage.flush_barrier())
    return SyntheticResult(
        spec=spec,
        duration_us=sim.now - started,
        read_latency=read_latency,
        write_latency=write_latency,
    )
