"""The native flash device: what NoFTL talks to.

Figure 1.c of the paper: no FTL, no block layer — the host issues native
commands (READ PAGE / PROGRAM PAGE / COPYBACK / ERASE BLOCK / IDENTIFY)
straight at the NAND, subject only to die/channel availability.  On the
paper's OpenSSD port this is the ATA-pass-through protocol; here it is a
thin veneer over the flash device front-ends that

* exposes :meth:`identify` (the geometry-discovery command the paper's
  protocol requires, cf. HDIO_GETGEO), and
* records per-command host-observed latency.

There is deliberately **no** queue-depth limit: native flash accepts as
many concurrent commands as there are dies to serve them (the 160 vs 32
comparison of Section 3.2 — bench E8).
"""

from __future__ import annotations

from ..flash.commands import Copyback, EraseBlock, Identify, ProgramPage, ReadOob, ReadPage
from ..flash.device import SimFlashDevice, SyncFlashDevice
from ..flash.geometry import Geometry
from ..sim import LatencyRecorder

__all__ = ["NativeFlashDevice", "SyncNativeFlashDevice"]


class NativeFlashDevice:
    """DES-mode native flash front-end (generator methods)."""

    def __init__(self, device: SimFlashDevice):
        self.device = device
        self.sim = device.sim
        self.latency = LatencyRecorder("native-flash")

    @property
    def geometry(self) -> Geometry:
        return self.device.geometry

    def identify(self):
        result = yield from self.device.execute(Identify())
        return result.data

    def read_page(self, ppn: int):
        result = yield from self._timed(ReadPage(ppn=ppn))
        return result.data, result.oob

    def program_page(self, ppn: int, data=None, oob=None):
        yield from self._timed(ProgramPage(ppn=ppn, data=data, oob=oob))

    def erase_block(self, pbn: int):
        yield from self._timed(EraseBlock(pbn=pbn))

    def copyback(self, src_ppn: int, dst_ppn: int, oob=None):
        yield from self._timed(Copyback(src_ppn=src_ppn, dst_ppn=dst_ppn,
                                        oob=oob))

    def read_oob(self, ppn: int):
        result = yield from self._timed(ReadOob(ppn=ppn))
        return result.oob

    def _timed(self, command):
        start = self.sim.now
        result = yield from self.device.execute(command)
        self.latency.record(self.sim.now - start)
        return result


class SyncNativeFlashDevice:
    """Synchronous flavour of the native interface."""

    def __init__(self, device: SyncFlashDevice):
        self.device = device

    @property
    def geometry(self) -> Geometry:
        return self.device.geometry

    def identify(self) -> dict:
        return self.device.execute(Identify()).data

    def read_page(self, ppn: int):
        result = self.device.execute(ReadPage(ppn=ppn))
        return result.data, result.oob

    def program_page(self, ppn: int, data=None, oob=None) -> None:
        self.device.execute(ProgramPage(ppn=ppn, data=data, oob=oob))

    def erase_block(self, pbn: int) -> None:
        self.device.execute(EraseBlock(pbn=pbn))

    def copyback(self, src_ppn: int, dst_ppn: int, oob=None) -> None:
        self.device.execute(Copyback(src_ppn=src_ppn, dst_ppn=dst_ppn, oob=oob))

    def read_oob(self, ppn: int):
        return self.device.execute(ReadOob(ppn=ppn)).oob
