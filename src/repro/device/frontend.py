"""Hazard-safe device front end: admission control + write-back cache.

The paper's NoFTL path issues native flash commands with no admission
control at all, and the block-device path models NCQ depth but nothing
*schedules* it.  :class:`DeviceFrontend` is the missing host-side layer
(ROADMAP item 5, in the spirit of FTL-SIM's ``frontend_scheduler``): it
sits between the DBMS storage adapters and either device path and
provides three things the raw paths cannot:

**Hazard tracking.**  Per logical page, at most one backing write *or*
trim is in flight at a time, reads order behind it (RAW), a destage
orders behind both any prior in-flight write/trim (WAW) and any in-flight
backing reads of the page (WAR), and a trim waits out an in-flight
destage so a late-landing write can never resurrect deallocated data.
Time spent stalled on a hazard is charged to the ``queue_hazard_us``
blame bucket.

**A write-back cache with an explicit durability contract.**  Writes are
acknowledged on cache insert — *volatile* — as long as the dirty set
sits below a configurable watermark; repeated writes to one page
coalesce in place.  :meth:`flush_barrier` is the durability point: when
it returns, every write acknowledged before it was called is on media
(*durable*).  On a power cut **only un-barriered cache contents may
vanish** — the listener registered with the flash array drops the cache
the instant the cut fires, exactly like real DRAM behind a capacitor-less
controller.  The chaos oracle (:class:`repro.bench.chaos.ChecksumOracle`)
distinguishes acked-volatile from acked-durable versions to prove the
contract under fire (``python -m repro.bench.siege``).

**Priority admission with backpressure.**  A bounded slot pool admits
reads ahead of barrier destages ahead of trims ahead of background
destages; background destage concurrency is throttled to a trickle while
the attribution engine's live GC-blame signal (:class:`LiveBlame`) says
the media is busy with maintenance.  Every queue is bounded and every
host-facing wait carries a deadline — an op that cannot be admitted in
time is *shed* with :class:`DegradedModeError` instead of waiting
unboundedly, and the shed is counted, never silent.

The front end is strictly opt-in (``frontend_config=None`` everywhere):
legacy rigs bypass it and their golden digests are bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.badblock import DegradedModeError
from ..core.storage import emit_host_op
from ..flash.errors import PowerCutError
from ..sim import LatencyRecorder, Simulator
from ..telemetry import LiveBlame, OpContext

__all__ = [
    "FrontendConfig",
    "DeviceFrontend",
    "FrontendShedError",
    "wrap_storage",
]


class FrontendShedError(DegradedModeError):
    """An op the front end refused to admit in time (queue full or
    deadline passed).  Subclasses :class:`DegradedModeError` so every
    existing degraded-mode handler treats a shed exactly like a device
    refusal: surfaced to the caller, never silently dropped."""

    def __init__(self, cls: str, reason: str):
        # Bypass DegradedModeError.__init__ (its signature is about spare
        # blocks); RuntimeError carries the message.
        RuntimeError.__init__(
            self, f"front end shed a {cls} op ({reason})"
        )
        self.cls = cls
        self.reason = reason

#: Admission classes in strict priority order (index = priority).
ADMISSION_CLASSES = ("read", "barrier", "trim", "destage")


@dataclass(frozen=True)
class FrontendConfig:
    """Tunables for :class:`DeviceFrontend` (all times in microseconds)."""

    #: Backing operations admitted concurrently (reads/trims/destages).
    max_inflight: int = 8
    #: Background destages in flight when maintenance is quiet.
    destage_workers: int = 4
    #: Write-back cache capacity (dirty logical pages).
    cache_pages: int = 256
    #: Writes are acknowledged volatile only while the dirty set is below
    #: ``dirty_high_watermark * cache_pages``; above it they wait for
    #: destage headroom (backpressure) up to ``write_deadline_us``.
    dirty_high_watermark: float = 0.75
    #: Bound on each admission queue; arrivals beyond it shed at once.
    queue_limit: int = 64
    #: Interface cost of a cache-hit acknowledgement (the "SATA packet").
    ack_latency_us: float = 0.5
    #: Deadlines after which a host op sheds with DegradedModeError.
    read_deadline_us: float = 20_000.0
    write_deadline_us: float = 50_000.0
    trim_deadline_us: float = 50_000.0
    #: Throttle background destage to one in flight while the trailing
    #: GC-blame share exceeds this (or the backend reports maintenance).
    gc_blame_threshold: float = 0.5
    #: Trailing window for the live GC-blame signal.
    blame_window_us: float = 20_000.0

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 1 <= self.destage_workers:
            raise ValueError("destage_workers must be >= 1")
        if self.cache_pages < 1:
            raise ValueError("cache_pages must be >= 1")
        if not 0.0 < self.dirty_high_watermark <= 1.0:
            raise ValueError("dirty_high_watermark must be in (0, 1]")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")

    @property
    def dirty_limit(self) -> int:
        return max(1, int(self.cache_pages * self.dirty_high_watermark))


class _CacheEntry:
    """One dirty logical page absorbed by the write-back cache."""

    __slots__ = ("data", "hint", "seq", "destaging", "stuck", "waiters")

    def __init__(self, data, hint: str, seq: int):
        self.data = data
        self.hint = hint
        self.seq = seq
        self.destaging = False  # a backing write for this entry is in flight
        self.stuck = False      # last destage refused (device degraded)
        self.waiters = None     # events to fire when the destage settles


class _Waiter:
    """One admission-queue entry; ``alive=False`` marks a shed waiter."""

    __slots__ = ("event", "cls", "alive")

    def __init__(self, event, cls: str):
        self.event = event
        self.cls = cls
        self.alive = True


class DeviceFrontend:
    """Hazard-safe admission + write-back cache over a storage adapter.

    ``backing`` is anything shaped like
    :class:`repro.db.storage.StorageAdapter` (duck-typed to keep the
    device layer import-free of the DBMS).  Pass the rig's
    :class:`~repro.flash.array.FlashArray` as ``array`` so a scripted
    power cut wipes the volatile cache at the instant it fires.
    """

    def __init__(
        self,
        sim: Simulator,
        backing,
        config: Optional[FrontendConfig] = None,
        *,
        array=None,
        telemetry=None,
        trace=None,
    ):
        self.sim = sim
        self.backing = backing
        self.config = config or FrontendConfig()
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(backing, "telemetry", None)
        )
        self.trace = trace
        self.array = array

        # -- adapter facade ----------------------------------------------
        self.logical_pages = backing.logical_pages
        self.num_regions = getattr(backing, "num_regions", 1)

        # -- write-back cache (holds only dirty pages) -------------------
        self._cache: Dict[int, _CacheEntry] = {}
        self._dirty_fifo: deque = deque()
        self._write_seq = 0
        #: Highest write seq destaged to media per lpn (barrier bookkeeping).
        self._last_destaged: Dict[int, int] = {}
        self._drain_waiters: List = []

        # -- hazard registry ---------------------------------------------
        #: lpn -> Event fired when the in-flight backing write/trim lands.
        self._mutators: Dict[int, object] = {}
        #: lpn -> count of in-flight backing reads (WAR fence for destage).
        self._readers: Dict[int, int] = {}
        self._reader_drain: Dict[int, object] = {}

        # -- admission ----------------------------------------------------
        self._slots_free = self.config.max_inflight
        self._queues: Dict[str, deque] = {
            cls: deque() for cls in ADMISSION_CLASSES
        }
        self._qdepth: Dict[str, int] = {cls: 0 for cls in ADMISSION_CLASSES}
        self._inflight_destage = 0
        self._blame = LiveBlame(self.config.blame_window_us)

        # -- power --------------------------------------------------------
        self._powered_off = False
        self._cut_op = 0
        if array is not None:
            listeners = getattr(array, "power_cut_listeners", None)
            if listeners is None:
                raise TypeError(
                    "array lacks power_cut_listeners; rebuild it first"
                )
            listeners.append(self._on_power_cut)

        # -- destage workers ----------------------------------------------
        self._parked_workers: List = []
        for wid in range(self.config.destage_workers):
            sim.process(self._destage_worker(wid))

        # -- latency + telemetry ------------------------------------------
        self.ack_latency = LatencyRecorder("frontend-ack")
        self.read_latency = LatencyRecorder("frontend-read")
        tm = self.telemetry
        if tm is not None:
            self._tm_acks = tm.counter("frontend.acks", layer="device")
            self._tm_coalesced = tm.counter(
                "frontend.coalesced", layer="device"
            )
            self._tm_cache_hits = tm.counter(
                "frontend.cache_hits", layer="device"
            )
            self._tm_destages = tm.counter(
                "frontend.destages", layer="device"
            )
            self._tm_barriers = tm.counter(
                "frontend.barriers", layer="device"
            )
            self._tm_hazard_stalls = tm.counter(
                "frontend.hazard_stalls", layer="device"
            )
            self._tm_sheds = tm.counter_vec(
                "frontend.sheds", ("cls",), layer="device"
            )
            self._tm_destage_degraded = tm.counter(
                "frontend.destage_degraded", layer="device"
            )
            self._tm_volatile_lost = tm.counter(
                "frontend.volatile_lost", layer="device"
            )
            self._tm_throttled = tm.counter(
                "frontend.destage_throttled", layer="device"
            )
            self._tm_dirty = tm.gauge("frontend.dirty_pages", layer="device")
            self._tm_barrier_us = tm.histogram(
                "frontend.barrier_us", layer="device"
            )
            tm.register_collector("frontend.state", self._collect_state)
        else:  # bare rigs (unit tests) keep working without a registry
            class _Null:
                def inc(self, n=1):
                    pass

                def set(self, v):
                    pass

                def observe(self, v):
                    pass

                def labels(self, *a, **kw):
                    return self

            null = _Null()
            self._tm_acks = self._tm_coalesced = null
            self._tm_cache_hits = self._tm_destages = null
            self._tm_barriers = self._tm_hazard_stalls = null
            self._tm_sheds = self._tm_destage_degraded = null
            self._tm_volatile_lost = self._tm_throttled = null
            self._tm_dirty = self._tm_barrier_us = null

        #: Opt-in :class:`repro.telemetry.health.LoadWindowEngine`; set by
        #: ``HealthMonitor.attach_frontend``.  Entirely passive — the
        #: engine schedules nothing, so attaching it never perturbs event
        #: order (digests of rigs without it are untouched by design).
        self.load_monitor = None

        # shed tallies kept locally too, so the siege report can compare
        # "sheds raised" against "sheds observed by callers" without a
        # registry in the loop.
        self.shed_counts: Dict[str, int] = {
            cls: 0 for cls in ADMISSION_CLASSES
        }
        self.shed_counts["write"] = 0
        self.volatile_lost = 0
        self.hazard_stalls = 0
        self.destage_count = 0
        self.barrier_count = 0
        self.ack_count = 0
        self.coalesced_count = 0
        self.degraded_destages = 0

    # -- adapter facade --------------------------------------------------

    def region_of_page(self, page_id: int) -> int:
        fn = getattr(self.backing, "region_of_page", None)
        return fn(page_id) if fn is not None else 0

    @property
    def maintenance_active(self) -> bool:
        return bool(getattr(self.backing, "maintenance_active", False))

    @property
    def dirty_pages(self) -> int:
        return len(self._cache)

    def gc_share(self) -> float:
        return self._blame.gc_share(self.sim.now)

    def _collect_state(self) -> dict:
        return {
            "dirty_pages": len(self._cache),
            "slots_free": self._slots_free,
            "inflight_destage": self._inflight_destage,
            "queued": dict(self._qdepth),
            "gc_share": round(self.gc_share(), 4),
        }

    # -- admission scheduler ----------------------------------------------

    def _destage_limit(self) -> int:
        """Background destage concurrency allowed *right now*.

        Throttled to a trickle — never zero, so destage cannot starve —
        while the backend runs maintenance or the trailing GC-blame share
        is high.  Sampled at every grant; no events, no hysteresis.
        """
        if (
            self.maintenance_active
            or self._blame.gc_share(self.sim.now)
            >= self.config.gc_blame_threshold
        ):
            return 1
        return self.config.destage_workers

    def _pump(self) -> None:
        """Grant free slots to the highest-priority live waiters."""
        while self._slots_free > 0:
            waiter = None
            for cls in ADMISSION_CLASSES:
                queue = self._queues[cls]
                while queue and not queue[0].alive:
                    queue.popleft()
                if not queue:
                    continue
                if cls == "destage":
                    limit = self._destage_limit()
                    if self._inflight_destage >= limit:
                        if limit == 1:
                            self._tm_throttled.inc()
                        continue
                waiter = queue.popleft()
                break
            if waiter is None:
                return
            self._qdepth[waiter.cls] -= 1
            self._slots_free -= 1
            if waiter.cls == "destage":
                self._inflight_destage += 1
            waiter.event.succeed()

    def _acquire(self, cls: str, deadline_us: Optional[float], ctx):
        """Generator: wait for an admission slot of class ``cls``.

        Sheds with :class:`DegradedModeError` if the bounded queue is
        full on arrival or the deadline passes first.  On return the
        caller owns one slot and must :meth:`_release` it.
        """
        if self._qdepth[cls] >= self.config.queue_limit:
            self._shed(cls, "queue full")
        waiter = _Waiter(self.sim.event(), cls)
        self._queues[cls].append(waiter)
        self._qdepth[cls] += 1
        self._pump()
        start = self.sim.now
        if deadline_us is None:
            yield waiter.event
        else:
            deadline = self.sim.timeout(deadline_us)
            yield self.sim.any_of([waiter.event, deadline])
            if not waiter.event.triggered:
                # Deadline first.  Mark the waiter dead *before* anything
                # else runs so a later _pump cannot grant a shed op.
                waiter.alive = False
                self._qdepth[cls] -= 1
                self._shed(cls)
        wait = self.sim.now - start
        if wait > 0 and ctx is not None:
            behind_maintenance = self.maintenance_active
            ctx.charge(
                "queue_gc_us" if behind_maintenance else "queue_other_us",
                wait,
            )

    def _release(self, cls: str) -> None:
        self._slots_free += 1
        if cls == "destage":
            self._inflight_destage -= 1
        self._pump()

    def _shed(self, cls: str, reason: str = "deadline passed"):
        self.shed_counts[cls] = self.shed_counts.get(cls, 0) + 1
        self._tm_sheds.labels(cls).inc()
        monitor = self.load_monitor
        if monitor is not None:
            monitor.note_shed(self.sim.now, cls)
        raise FrontendShedError(cls, reason)

    # -- hazard helpers ----------------------------------------------------

    def _wait_mutator(self, lpn: int, ctx):
        """Generator: wait until no backing write/trim is in flight for
        ``lpn``; charges the stall to ``queue_hazard_us``."""
        event = self._mutators.get(lpn)
        while event is not None:
            self.hazard_stalls += 1
            self._tm_hazard_stalls.inc()
            start = self.sim.now
            yield event
            if ctx is not None:
                ctx.charge("queue_hazard_us", self.sim.now - start)
            event = self._mutators.get(lpn)

    def _wait_readers(self, lpn: int, ctx):
        """Generator: WAR fence — wait for in-flight backing reads of
        ``lpn`` to drain before mutating it on media."""
        while self._readers.get(lpn, 0) > 0:
            drain = self._reader_drain.get(lpn)
            if drain is None:
                drain = self.sim.event()
                self._reader_drain[lpn] = drain
            self.hazard_stalls += 1
            self._tm_hazard_stalls.inc()
            start = self.sim.now
            yield drain
            if ctx is not None:
                ctx.charge("queue_hazard_us", self.sim.now - start)

    def _begin_mutation(self, lpn: int):
        done = self.sim.event()
        self._mutators[lpn] = done
        return done

    def _end_mutation(self, lpn: int, done) -> None:
        if self._mutators.get(lpn) is done:
            del self._mutators[lpn]
        if not done.triggered:
            done.succeed()

    # -- power -------------------------------------------------------------

    def _check_power(self) -> None:
        if self._powered_off:
            raise PowerCutError(self._cut_op)

    def _on_power_cut(self, command=None) -> None:
        """Array listener: the cut wipes all volatile state *now*.

        Only un-barriered cache contents vanish — everything destaged
        (and everything a completed :meth:`flush_barrier` covered) is on
        media already.  Waiters are woken so they observe the cut instead
        of blocking a post-mortem drain of the event queue.
        """
        if self._powered_off:
            return
        self._powered_off = True
        injector = getattr(self.array, "fault_injector", None)
        if injector is not None:
            self._cut_op = getattr(injector, "ops", 0)
        lost = len(self._cache)
        self.volatile_lost += lost
        self._tm_volatile_lost.inc(lost)
        self._cache.clear()
        self._dirty_fifo.clear()
        self._tm_dirty.set(0)
        self._broadcast_drain()
        for event in self._parked_workers:
            if not event.triggered:
                event.succeed()
        del self._parked_workers[:]

    def power_cycle(self) -> None:
        """Forget the power-cut latch after the array powers back up."""
        self._powered_off = False

    # -- host interface (all DES generators) -------------------------------

    def read(self, lpn: int, ctx: Optional[OpContext] = None):
        self._check_power()
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        trace = self.trace
        tracing = trace is not None and trace.enabled
        before = dict(ctx.costs) if tracing else None

        entry = self._cache.get(lpn)
        data = None
        if entry is not None:
            # The cache holds the newest acknowledged version: RAW
            # satisfied without touching the backing store at all.
            data = entry.data
            self._tm_cache_hits.inc()
            if self.config.ack_latency_us:
                yield self.sim.timeout(self.config.ack_latency_us)
        else:
            yield from self._acquire(
                "read", self.config.read_deadline_us, ctx
            )
            try:
                # RAW fence: order behind any in-flight write/trim.  No
                # yield between the final check and reader registration,
                # so a mutator can never sneak in concurrently.
                yield from self._wait_mutator(lpn, ctx)
                entry = self._cache.get(lpn)
                if entry is not None:
                    # Re-dirtied while we waited: newest version is here.
                    data = entry.data
                    self._tm_cache_hits.inc()
                else:
                    self._readers[lpn] = self._readers.get(lpn, 0) + 1
                    cost0 = self._blame_snapshot(ctx)
                    t0 = self.sim.now
                    try:
                        data = yield from self.backing.read(lpn, ctx=ctx)
                    finally:
                        remaining = self._readers[lpn] - 1
                        if remaining:
                            self._readers[lpn] = remaining
                        else:
                            del self._readers[lpn]
                            drain = self._reader_drain.pop(lpn, None)
                            if drain is not None and not drain.triggered:
                                drain.succeed()
                    self._blame_note(ctx, cost0, self.sim.now - t0)
            finally:
                self._release("read")
        elapsed = self.sim.now - start
        self.read_latency.record(elapsed)
        monitor = self.load_monitor
        if monitor is not None:
            monitor.note_op(self.sim.now, "read", elapsed)
        if tracing:
            emit_host_op(trace, "read", ctx, before, elapsed)
        return data

    def write(self, lpn: int, data=None, hint: str = "hot",
              ctx: Optional[OpContext] = None):
        self._check_power()
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        trace = self.trace
        tracing = trace is not None and trace.enabled
        before = dict(ctx.costs) if tracing else None
        cfg = self.config
        deadline_at = start + cfg.write_deadline_us

        # Backpressure: volatile acks only below the dirty watermark.
        while len(self._cache) >= cfg.dirty_limit and lpn not in self._cache:
            remaining = deadline_at - self.sim.now
            if remaining <= 0:
                self._shed("write", "dirty watermark held past deadline")
            drained = self.sim.event()
            self._drain_waiters.append(drained)
            t0 = self.sim.now
            yield self.sim.any_of([drained, self.sim.timeout(remaining)])
            ctx.charge("cache_flush_us", self.sim.now - t0)
            self._check_power()
        self._check_power()

        self._write_seq += 1
        entry = self._cache.get(lpn)
        if entry is None:
            self._cache[lpn] = _CacheEntry(data, hint, self._write_seq)
            self._dirty_fifo.append(lpn)
        else:
            entry.data = data
            entry.hint = hint
            entry.seq = self._write_seq
            if entry.stuck:
                # A degraded-refused entry left the dirty FIFO; the fresh
                # write re-arms it for background destage.
                entry.stuck = False
                if not entry.destaging:
                    self._dirty_fifo.append(lpn)
            self.coalesced_count += 1
            self._tm_coalesced.inc()
        self.ack_count += 1
        self._tm_acks.inc()
        self._tm_dirty.set(len(self._cache))
        self._wake_worker()
        if cfg.ack_latency_us:
            yield self.sim.timeout(cfg.ack_latency_us)
        elapsed = self.sim.now - start
        self.ack_latency.record(elapsed)
        monitor = self.load_monitor
        if monitor is not None:
            monitor.note_op(
                self.sim.now, "write", elapsed,
                queued=sum(self._qdepth.values()),
                dirty_ratio=len(self._cache) / cfg.cache_pages,
            )
        if tracing:
            emit_host_op(trace, "write", ctx, before, elapsed)

    def trim(self, lpn: int, ctx: Optional[OpContext] = None):
        self._check_power()
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        trace = self.trace
        tracing = trace is not None and trace.enabled
        before = dict(ctx.costs) if tracing else None

        # Versions acknowledged before this point are superseded by the
        # trim; later writes must survive it.  The cache entry is NOT
        # dropped yet — until the trim is admitted it may still shed, and
        # a concurrent read must keep seeing the newest acked version,
        # not whatever stale state the media holds.
        trim_seq = self._write_seq

        yield from self._acquire("trim", self.config.trim_deadline_us, ctx)
        try:
            # Fence: order behind any in-flight write/trim for this page
            # (a destage landing *after* the trim would resurrect
            # deallocated data).  _wait_mutator exits with no yield after
            # its final check, so registering ours right away is
            # race-free.
            yield from self._wait_mutator(lpn, ctx)
            entry = self._cache.get(lpn)
            if entry is not None and entry.seq <= trim_seq:
                # The trim supersedes the cached version — committed now.
                del self._cache[lpn]
                self._tm_dirty.set(len(self._cache))
                self._broadcast_drain()
            done = self._begin_mutation(lpn)
            try:
                yield from self._wait_readers(lpn, ctx)
                cost0 = self._blame_snapshot(ctx)
                t0 = self.sim.now
                yield from self.backing.trim(lpn, ctx=ctx)
                self._blame_note(ctx, cost0, self.sim.now - t0)
            finally:
                self._end_mutation(lpn, done)
        finally:
            self._release("trim")
        self._last_destaged.pop(lpn, None)
        monitor = self.load_monitor
        if monitor is not None:
            monitor.note_op(self.sim.now, "trim", self.sim.now - start)
        if tracing:
            emit_host_op(trace, "trim", ctx, before, self.sim.now - start)

    def flush_barrier(self, ctx: Optional[OpContext] = None):
        """Generator: the durability point.

        When this returns, every write acknowledged *before* the call is
        destaged to media.  Writes acknowledged during the barrier may or
        may not be covered.  Failures are honest: a degraded device or a
        power cut propagates — the barrier never returns success without
        the guarantee holding.
        """
        self._check_power()
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        # Snapshot the contract: these versions must be durable on return.
        pending = [
            (lpn, entry.seq) for lpn, entry in self._cache.items()
        ]
        for lpn, snap_seq in pending:
            while True:
                self._check_power()
                if self._last_destaged.get(lpn, -1) >= snap_seq:
                    break
                entry = self._cache.get(lpn)
                if entry is None:
                    # Destaged clean, or trimmed (the trim supersedes).
                    break
                if entry.destaging:
                    # A background destage owns the entry; wait for it to
                    # settle (its finally fires entry.waiters) and
                    # re-evaluate — it may have landed a new-enough seq.
                    if entry.waiters is None:
                        entry.waiters = []
                    settled = self.sim.event()
                    entry.waiters.append(settled)
                    yield settled
                    continue
                entry.stuck = False
                yield from self._destage_entry(
                    lpn, entry, "barrier", ctx.child("frontend")
                )
        elapsed = self.sim.now - start
        ctx.charge("cache_flush_us", elapsed)
        self.barrier_count += 1
        self._tm_barriers.inc()
        self._tm_barrier_us.observe(elapsed)
        monitor = self.load_monitor
        if monitor is not None:
            monitor.note_op(self.sim.now, "barrier", elapsed)

    # -- destage machinery -------------------------------------------------

    def _wake_worker(self) -> None:
        while self._parked_workers:
            event = self._parked_workers.pop()
            if not event.triggered:
                event.succeed()
                return

    def _broadcast_drain(self) -> None:
        waiters, self._drain_waiters = self._drain_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _pick_dirty(self) -> Optional[int]:
        fifo = self._dirty_fifo
        while fifo:
            lpn = fifo[0]
            entry = self._cache.get(lpn)
            if entry is None or entry.destaging or entry.stuck:
                fifo.popleft()
                continue
            fifo.popleft()
            return lpn
        return None

    def _destage_worker(self, wid: int):
        """Background process: drain the dirty FIFO through admission."""
        while True:
            if self._powered_off:
                return
            lpn = self._pick_dirty()
            if lpn is None:
                event = self.sim.event()
                self._parked_workers.append(event)
                yield event
                continue
            entry = self._cache[lpn]
            ctx = OpContext("frontend", writer_id=wid)
            try:
                yield from self._destage_entry(lpn, entry, "destage", ctx)
            except PowerCutError:
                return
            except DegradedModeError:
                # Device refuses writes (spare capacity exhausted).  The
                # entry stays dirty + stuck; a later flush_barrier retries
                # and propagates the failure to whoever needs durability.
                entry.stuck = True
                self.degraded_destages += 1
                self._tm_destage_degraded.inc()

    def _destage_entry(self, lpn: int, entry: _CacheEntry, cls: str, ctx):
        """Generator: write one cache entry to the backing store.

        Hazard order: wait out any in-flight mutator (an admitted trim),
        take an admission slot, fence in-flight readers (WAR), write,
        then drop the entry iff it was not re-dirtied mid-flight.
        """
        entry.destaging = True
        try:
            yield from self._acquire(cls, None, ctx)
            try:
                # Re-fence after admission: wait out any in-flight
                # write/trim for this page (WAW), then check the entry is
                # still ours — a trim may have superseded it.
                yield from self._wait_mutator(lpn, ctx)
                if self._cache.get(lpn) is not entry:
                    return
                # Snapshot *now*: a coalescing write during the backing
                # call re-dirties the entry, detected via seq below.
                snap_seq = entry.seq
                data = entry.data
                hint = entry.hint
                done = self._begin_mutation(lpn)
                try:
                    yield from self._wait_readers(lpn, ctx)
                    cost0 = self._blame_snapshot(ctx)
                    t0 = self.sim.now
                    yield from self.backing.write(lpn, data, hint, ctx=ctx)
                    self._blame_note(ctx, cost0, self.sim.now - t0)
                finally:
                    self._end_mutation(lpn, done)
            finally:
                self._release(cls)
            if snap_seq > self._last_destaged.get(lpn, -1):
                self._last_destaged[lpn] = snap_seq
            self.destage_count += 1
            self._tm_destages.inc()
            current = self._cache.get(lpn)
            if current is entry and entry.seq == snap_seq:
                del self._cache[lpn]
                self._tm_dirty.set(len(self._cache))
                self._broadcast_drain()
            elif current is entry:
                # Re-dirtied mid-destage: back onto the FIFO it goes.
                self._dirty_fifo.append(lpn)
                self._wake_worker()
        finally:
            if self._cache.get(lpn) is entry:
                entry.destaging = False
            waiters, entry.waiters = entry.waiters, None
            if waiters:
                for event in waiters:
                    if not event.triggered:
                        event.succeed()

    # -- blame ------------------------------------------------------------

    @staticmethod
    def _blame_snapshot(ctx) -> float:
        costs = ctx.costs
        return costs.get("gc_us", 0.0) + costs.get("queue_gc_us", 0.0)

    def _blame_note(self, ctx, before: float, elapsed: float) -> None:
        if elapsed <= 0:
            return
        gc_blamed = (
            ctx.costs.get("gc_us", 0.0)
            + ctx.costs.get("queue_gc_us", 0.0)
            - before
        )
        self._blame.note(self.sim.now, elapsed, max(0.0, gc_blamed))

    # -- reporting ---------------------------------------------------------

    @property
    def sheds_total(self) -> int:
        return sum(self.shed_counts.values())

    def snapshot(self) -> dict:
        """Self-contained state/counter dump for bench reports."""
        return {
            "acks": self.ack_count,
            "coalesced": self.coalesced_count,
            "destages": self.destage_count,
            "barriers": self.barrier_count,
            "hazard_stalls": self.hazard_stalls,
            "sheds": dict(self.shed_counts),
            "sheds_total": self.sheds_total,
            "degraded_destages": self.degraded_destages,
            "volatile_lost": self.volatile_lost,
            "dirty_pages": len(self._cache),
            "gc_share": round(self.gc_share(), 4),
        }


def wrap_storage(storage):
    """Adapt a raw device/storage object to the adapter interface.

    Accepts an object that already quacks like a StorageAdapter (has
    ``region_of_page``), a :class:`~repro.core.storage.NoFTLStorage`, or
    a :class:`~repro.device.blockdev.BlockDevice`.  Imports lazily to
    keep the device layer free of DBMS imports at module scope.
    """
    if hasattr(storage, "region_of_page"):
        return storage
    from ..core.storage import NoFTLStorage
    from ..db.storage import BlockDeviceAdapter, NoFTLStorageAdapter
    from .blockdev import BlockDevice

    if isinstance(storage, NoFTLStorage):
        return NoFTLStorageAdapter(storage)
    if isinstance(storage, BlockDevice):
        return BlockDeviceAdapter(storage)
    raise TypeError(
        f"cannot adapt {type(storage).__name__} for the device front end"
    )
