"""The legacy block device: a black-box Flash SSD.

Figure 1.a/1.b of the paper: the DBMS sees only ``READ(lba)`` /
``WRITE(lba)``; an on-device FTL translates, garbage-collects and
wear-levels behind the interface.  Two bottlenecks of the real article are
modelled explicitly:

* **NCQ depth** — SATA2 admits at most 32 outstanding commands
  (Section 3.2 contrasts this with ~160 concurrent native flash
  commands);
* **controller concurrency** — FTL work runs on "a single ASIC
  controller" (Section 3) that can keep only a handful of NAND
  operations in flight (``controller_slots``, default 4 — typical of
  the era's firmware command interleaving).  Operations that mutate FTL
  state (all writes, and reads that miss the mapping cache) occupy a
  slot for their full duration, so a burst of merges/GC starves
  foreground writes.  Reads whose translation is a pure lookup bypass
  the controller entirely.

Host-observed latency per operation (queueing included) feeds the
latency-predictability experiment (E6).
"""

from __future__ import annotations

from typing import Optional

from ..core.storage import emit_host_op
from ..flash.executor import SimExecutor, SyncExecutor
from ..ftl.base import BaseFTL
from ..sim import LatencyRecorder, Resource, Simulator
from ..telemetry import OpContext

__all__ = ["BlockDevice", "SyncBlockDevice"]


class BlockDevice:
    """DES-mode black-box SSD: an FTL behind a queue-limited interface.

    All I/O entry points are DES generators::

        data = yield from device.read(lba)
        yield from device.write(lba, data)
    """

    def __init__(
        self,
        sim: Simulator,
        ftl: BaseFTL,
        executor: SimExecutor,
        ncq_depth: int = 32,
        controller_slots: int = 4,
        interface_overhead_us: float = 20.0,
    ):
        if ncq_depth < 1:
            raise ValueError("ncq_depth must be >= 1")
        if controller_slots < 1:
            raise ValueError("controller_slots must be >= 1")
        self.sim = sim
        self.ftl = ftl
        self.executor = executor
        self.ncq = Resource(sim, capacity=ncq_depth)
        self.controller = Resource(sim, capacity=controller_slots)
        self.interface_overhead_us = interface_overhead_us
        self.read_latency = LatencyRecorder("blockdev-read")
        self.write_latency = LatencyRecorder("blockdev-write")
        self.trim_latency = LatencyRecorder("blockdev-trim")
        self.trace = ftl.trace

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def _acquire(self, resource: Resource, ctx: OpContext):
        """Acquire one queue slot, charging the wait to the context.

        Waits while the FTL is mid-GC/merge are maintenance-blamed: the
        controller slots are busy with relocations, which is exactly the
        black-box starvation the paper's latency experiment exposes.  The
        probe is sampled on arrival *and* after the wait so a merge that
        starts mid-wait still gets the blame.
        """
        behind = self.ftl.maintenance_active
        start = self.sim.now
        yield resource.request()
        wait = self.sim.now - start
        if wait > 0:
            behind = behind or self.ftl.maintenance_active
            ctx.charge("queue_gc_us" if behind else "queue_other_us", wait)

    def read(self, lba: int, ctx: Optional[OpContext] = None):
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        before = dict(ctx.costs)
        yield from self._acquire(self.ncq, ctx)
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            if self._is_fast_read(lba):
                data = yield from self.executor.run(
                    self.ftl.read(lba), ctx=ctx
                )
            else:
                yield from self._acquire(self.controller, ctx)
                try:
                    data = yield from self.executor.run(
                        self.ftl.read(lba), ctx=ctx
                    )
                finally:
                    self.controller.release()
        finally:
            self.ncq.release()
        elapsed = self.sim.now - start
        self.read_latency.record(elapsed)
        emit_host_op(self.trace, "read", ctx, before, elapsed)
        return data

    def write(self, lba: int, data=None, ctx: Optional[OpContext] = None):
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        before = dict(ctx.costs)
        yield from self._acquire(self.ncq, ctx)
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            yield from self._acquire(self.controller, ctx)
            try:
                yield from self.executor.run(
                    self.ftl.write(lba, data), ctx=ctx
                )
            finally:
                self.controller.release()
        finally:
            self.ncq.release()
        elapsed = self.sim.now - start
        self.write_latency.record(elapsed)
        emit_host_op(self.trace, "write", ctx, before, elapsed)

    def trim(self, lba: int, ctx: Optional[OpContext] = None):
        """DATASET MANAGEMENT travels the same host path as read/write:
        one NCQ slot, the SATA packet overhead, then a controller slot
        (trim always mutates FTL mapping state)."""
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        before = dict(ctx.costs)
        yield from self._acquire(self.ncq, ctx)
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            yield from self._acquire(self.controller, ctx)
            try:
                yield from self.executor.run(self.ftl.trim(lba), ctx=ctx)
            finally:
                self.controller.release()
        finally:
            self.ncq.release()
        elapsed = self.sim.now - start
        self.trim_latency.record(elapsed)
        emit_host_op(self.trace, "trim", ctx, before, elapsed)

    def _is_fast_read(self, lba: int) -> bool:
        probe = getattr(self.ftl, "is_fast_read", None)
        return bool(probe(lba)) if probe is not None else False


class SyncBlockDevice:
    """Synchronous flavour for trace replay and tests (no queueing)."""

    def __init__(self, ftl: BaseFTL, executor: SyncExecutor):
        self.ftl = ftl
        self.executor = executor

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def read(self, lba: int, ctx: Optional[OpContext] = None):
        return self.executor.run(self.ftl.read(lba), ctx=ctx)

    def write(self, lba: int, data=None,
              ctx: Optional[OpContext] = None) -> None:
        self.executor.run(self.ftl.write(lba, data), ctx=ctx)

    def trim(self, lba: int, ctx: Optional[OpContext] = None) -> None:
        self.executor.run(self.ftl.trim(lba), ctx=ctx)
