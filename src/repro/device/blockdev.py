"""The legacy block device: a black-box Flash SSD.

Figure 1.a/1.b of the paper: the DBMS sees only ``READ(lba)`` /
``WRITE(lba)``; an on-device FTL translates, garbage-collects and
wear-levels behind the interface.  Two bottlenecks of the real article are
modelled explicitly:

* **NCQ depth** — SATA2 admits at most 32 outstanding commands
  (Section 3.2 contrasts this with ~160 concurrent native flash
  commands);
* **controller concurrency** — FTL work runs on "a single ASIC
  controller" (Section 3) that can keep only a handful of NAND
  operations in flight (``controller_slots``, default 4 — typical of
  the era's firmware command interleaving).  Operations that mutate FTL
  state (all writes, and reads that miss the mapping cache) occupy a
  slot for their full duration, so a burst of merges/GC starves
  foreground writes.  Reads whose translation is a pure lookup bypass
  the controller entirely.

Host-observed latency per operation (queueing included) feeds the
latency-predictability experiment (E6).
"""

from __future__ import annotations


from ..flash.executor import SimExecutor, SyncExecutor
from ..ftl.base import BaseFTL
from ..sim import LatencyRecorder, Resource, Simulator

__all__ = ["BlockDevice", "SyncBlockDevice"]


class BlockDevice:
    """DES-mode black-box SSD: an FTL behind a queue-limited interface.

    All I/O entry points are DES generators::

        data = yield from device.read(lba)
        yield from device.write(lba, data)
    """

    def __init__(
        self,
        sim: Simulator,
        ftl: BaseFTL,
        executor: SimExecutor,
        ncq_depth: int = 32,
        controller_slots: int = 4,
        interface_overhead_us: float = 20.0,
    ):
        if ncq_depth < 1:
            raise ValueError("ncq_depth must be >= 1")
        if controller_slots < 1:
            raise ValueError("controller_slots must be >= 1")
        self.sim = sim
        self.ftl = ftl
        self.executor = executor
        self.ncq = Resource(sim, capacity=ncq_depth)
        self.controller = Resource(sim, capacity=controller_slots)
        self.interface_overhead_us = interface_overhead_us
        self.read_latency = LatencyRecorder("blockdev-read")
        self.write_latency = LatencyRecorder("blockdev-write")

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def read(self, lba: int):
        start = self.sim.now
        yield self.ncq.request()
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            if self._is_fast_read(lba):
                data = yield from self.executor.run(self.ftl.read(lba))
            else:
                yield self.controller.request()
                try:
                    data = yield from self.executor.run(self.ftl.read(lba))
                finally:
                    self.controller.release()
        finally:
            self.ncq.release()
        self.read_latency.record(self.sim.now - start)
        return data

    def write(self, lba: int, data=None):
        start = self.sim.now
        yield self.ncq.request()
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            yield self.controller.request()
            try:
                yield from self.executor.run(self.ftl.write(lba, data))
            finally:
                self.controller.release()
        finally:
            self.ncq.release()
        self.write_latency.record(self.sim.now - start)

    def trim(self, lba: int):
        yield self.ncq.request()
        try:
            yield self.controller.request()
            try:
                yield from self.executor.run(self.ftl.trim(lba))
            finally:
                self.controller.release()
        finally:
            self.ncq.release()

    def _is_fast_read(self, lba: int) -> bool:
        probe = getattr(self.ftl, "is_fast_read", None)
        return bool(probe(lba)) if probe is not None else False


class SyncBlockDevice:
    """Synchronous flavour for trace replay and tests (no queueing)."""

    def __init__(self, ftl: BaseFTL, executor: SyncExecutor):
        self.ftl = ftl
        self.executor = executor

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def read(self, lba: int):
        return self.executor.run(self.ftl.read(lba))

    def write(self, lba: int, data=None) -> None:
        self.executor.run(self.ftl.write(lba, data))

    def trim(self, lba: int) -> None:
        self.executor.run(self.ftl.trim(lba))
