"""Storage device front-ends: the legacy block device (black-box SSD with
on-device FTL, NCQ-limited) and the native flash device (NoFTL's direct
command interface)."""

from .blockdev import BlockDevice, SyncBlockDevice
from .nativedev import NativeFlashDevice, SyncNativeFlashDevice

__all__ = [
    "BlockDevice",
    "SyncBlockDevice",
    "NativeFlashDevice",
    "SyncNativeFlashDevice",
]
