"""Storage device front-ends: the legacy block device (black-box SSD with
on-device FTL, NCQ-limited), the native flash device (NoFTL's direct
command interface), and the hazard-safe host-side front end (admission
control + write-back cache with an explicit durability contract)."""

from .blockdev import BlockDevice, SyncBlockDevice
from .frontend import (
    DeviceFrontend,
    FrontendConfig,
    FrontendShedError,
    wrap_storage,
)
from .nativedev import NativeFlashDevice, SyncNativeFlashDevice

__all__ = [
    "BlockDevice",
    "SyncBlockDevice",
    "NativeFlashDevice",
    "SyncNativeFlashDevice",
    "DeviceFrontend",
    "FrontendConfig",
    "FrontendShedError",
    "wrap_storage",
]
