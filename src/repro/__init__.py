"""NoFTL reproduction: databases on native flash storage.

A full-system Python reproduction of *"NoFTL for Real: Databases on Real
Native Flash Storage"* (Hardock, Petrov, Gottstein, Buchmann — EDBT
2015): the NAND flash substrate, the on-device FTL baselines (page-map,
DFTL, FASTer), the legacy block device, the NoFTL storage manager (the
paper's contribution), a Shore-MT-shaped transactional storage engine,
the TPC workload kits and the benchmark harness that regenerates every
figure and table of the evaluation.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (virtual microsecond clock).
``repro.flash``
    NAND model: geometry, timing, native command set, contention, wear.
``repro.ftl``
    On-device FTLs: PageMapFTL, DFTL, FASTer, BlockMapFTL.
``repro.device``
    Block device (legacy interface) and native flash device.
``repro.core``
    NoFTL: host-side flash management integrated with the DBMS.
``repro.db``
    The mini storage engine: pages, heaps, B+-trees, buffer pool, WAL,
    locks, transactions, db-writers.
``repro.workloads``
    TPC-B/-C/-E/-H, synthetic jobs, trace record/replay.
``repro.bench``
    One experiment module per table/figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
