"""Page-based B+-tree index.

Nodes are :class:`~repro.db.page.BTreeNodePage` pages living in the
buffer pool like any table page, so index traffic shares frames, WAL and
flash with the heaps (as in Shore-MT).  Concurrency uses a tree-level
reader-writer latch — coarse but correct; record-level isolation is the
lock manager's job.

Keys are ``u64``; values are packed RIDs (or any small non-negative
int).  Deletion is lazy (no rebalancing) — standard practice for OLTP
engines of this vintage and irrelevant to the paper's I/O questions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from .latches import RWLock
from .page import BTreeNodePage
from .txn import Transaction

__all__ = ["DuplicateKeyError", "BTreeIndex"]


class DuplicateKeyError(Exception):
    """Unique-key violation on insert."""


class BTreeIndex:
    """A unique-key B+-tree.  All operations are DES generators.

    Create via :meth:`repro.db.database.Database.create_index` (the root
    page must be allocated inside a DES process).
    """

    def __init__(self, db, name: str, hint: str = "hot"):
        self.db = db
        self.name = name
        self.hint = hint
        self.latch = RWLock(db.sim)
        self.root_page_id: Optional[int] = None
        self.height = 1
        self.entry_count = 0

    def bootstrap(self):
        """Generator: allocate the empty root leaf (called by Database)."""
        page_id = self.db.allocate_page()
        node = BTreeNodePage(page_id, self.db.page_bytes, is_leaf=True)
        frame = yield from self.db.buffer.new_page(page_id, node, self.hint)
        self.db.buffer.unpin(page_id)
        self.root_page_id = page_id
        return self

    # -- public operations -------------------------------------------------------

    def insert(self, txn: Transaction, key: int, value: int):
        """Generator: add ``key -> value``; DuplicateKeyError if present."""
        yield from self.db.cpu()
        yield from self.latch.acquire_write()
        try:
            # Log first so every node touched below carries a covering LSN.
            self.db.wal.append("index-insert", txn.txn_id,
                               (self.name, key, value))
            split = yield from self._insert_rec(self.root_page_id, key, value)
            if split is not None:
                yield from self._grow_root(split)
            self.entry_count += 1
            txn.push_undo(lambda key=key: self._undo_insert(key))
        finally:
            self.latch.release_write()

    def lookup(self, txn: Transaction, key: int):
        """Generator: value for ``key`` or None."""
        db = self.db
        buffer = db.buffer
        hint = self.hint
        yield from db.cpu()
        yield from self.latch.acquire_read()
        try:
            node_id = self.root_page_id
            while True:
                frame = yield from buffer.fetch(node_id, hint)
                node = frame.page
                keys = node.keys
                if node.is_leaf:
                    index = bisect_left(keys, key)
                    found = index < len(keys) and keys[index] == key
                    value = node.values[index] if found else None
                    buffer.unpin(node_id)
                    return value
                child = node.children[bisect_right(keys, key)]
                buffer.unpin(node_id)
                node_id = child
        finally:
            self.latch.release_read()

    def range(self, txn: Transaction, low: int, high: int,
              limit: Optional[int] = None):
        """Generator: sorted [(key, value)] with low <= key <= high,
        truncated to the first ``limit`` matches when given."""
        yield from self.db.cpu()
        yield from self.latch.acquire_read()
        try:
            node_id = self.root_page_id
            while True:
                frame = yield from self.db.buffer.fetch(node_id, self.hint)
                node = frame.page
                if node.is_leaf:
                    self.db.buffer.unpin(node_id)
                    break
                child = node.children[bisect_right(node.keys, low)]
                self.db.buffer.unpin(node_id)
                node_id = child
            result: List[Tuple[int, int]] = []
            while node_id != -1:
                frame = yield from self.db.buffer.fetch(node_id, self.hint)
                node = frame.page
                for index, key in enumerate(node.keys):
                    if key > high:
                        self.db.buffer.unpin(node_id)
                        return result
                    if key >= low:
                        result.append((key, node.values[index]))
                        if limit is not None and len(result) >= limit:
                            self.db.buffer.unpin(node_id)
                            return result
                next_leaf = node.next_leaf
                self.db.buffer.unpin(node_id)
                node_id = next_leaf
            return result
        finally:
            self.latch.release_read()

    def delete(self, txn: Transaction, key: int):
        """Generator: remove ``key``; returns its value (KeyError if absent).

        Lazy deletion: leaves may underflow, which only wastes space.
        """
        yield from self.db.cpu()
        yield from self.latch.acquire_write()
        try:
            node_id = self.root_page_id
            while True:
                frame = yield from self.db.buffer.fetch(node_id, self.hint)
                node = frame.page
                if node.is_leaf:
                    index = bisect_left(node.keys, key)
                    if index >= len(node.keys) or node.keys[index] != key:
                        self.db.buffer.unpin(node_id)
                        raise KeyError(f"{self.name}: key {key} not found")
                    value = node.values.pop(index)
                    node.keys.pop(index)
                    node.lsn = self.db.wal.append(
                        "index-delete", txn.txn_id, (self.name, key, value)
                    )
                    self.db.buffer.mark_dirty(node_id)
                    self.db.buffer.unpin(node_id)
                    self.entry_count -= 1
                    txn.push_undo(
                        lambda key=key, value=value:
                        self._undo_delete(key, value)
                    )
                    return value
                child = node.children[bisect_right(node.keys, key)]
                self.db.buffer.unpin(node_id)
                node_id = child
        finally:
            self.latch.release_write()

    # -- internals --------------------------------------------------------------------

    def _insert_rec(self, node_id: int, key: int, value: int):
        """Generator: recursive insert; returns (sep_key, new_page_id) when
        this node split, else None."""
        frame = yield from self.db.buffer.fetch(node_id, self.hint)
        node = frame.page
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                self.db.buffer.unpin(node_id)
                raise DuplicateKeyError(f"{self.name}: key {key} exists")
            node.keys.insert(index, key)
            node.values.insert(index, value)
            split = None
            if len(node.keys) > node.capacity:
                split = yield from self._split_leaf(node)
            self._touch(node_id, node)
            self.db.buffer.unpin(node_id)
            return split
        child_index = bisect_right(node.keys, key)
        child_id = node.children[child_index]
        self.db.buffer.unpin(node_id)
        child_split = yield from self._insert_rec(child_id, key, value)
        if child_split is None:
            return None
        sep_key, new_child = child_split
        frame = yield from self.db.buffer.fetch(node_id, self.hint)
        node = frame.page
        index = bisect_right(node.keys, sep_key)
        node.keys.insert(index, sep_key)
        node.children.insert(index + 1, new_child)
        split = None
        if len(node.keys) > node.capacity:
            split = yield from self._split_inner(node)
        self._touch(node_id, node)
        self.db.buffer.unpin(node_id)
        return split

    def _split_leaf(self, node: BTreeNodePage):
        new_id = self.db.allocate_page()
        sibling = BTreeNodePage(new_id, self.db.page_bytes, is_leaf=True)
        mid = len(node.keys) // 2
        sibling.keys = node.keys[mid:]
        sibling.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        sibling.next_leaf = node.next_leaf
        node.next_leaf = new_id
        frame = yield from self.db.buffer.new_page(new_id, sibling, self.hint)
        self.db.buffer.unpin(new_id)
        return sibling.keys[0], new_id

    def _split_inner(self, node: BTreeNodePage):
        new_id = self.db.allocate_page()
        sibling = BTreeNodePage(new_id, self.db.page_bytes, is_leaf=False)
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        frame = yield from self.db.buffer.new_page(new_id, sibling, self.hint)
        self.db.buffer.unpin(new_id)
        return sep_key, new_id

    def _grow_root(self, split):
        sep_key, new_child = split
        new_root_id = self.db.allocate_page()
        root = BTreeNodePage(new_root_id, self.db.page_bytes, is_leaf=False)
        root.keys = [sep_key]
        root.children = [self.root_page_id, new_child]
        frame = yield from self.db.buffer.new_page(new_root_id, root, self.hint)
        self.db.buffer.unpin(new_root_id)
        self.root_page_id = new_root_id
        self.height += 1

    def _touch(self, node_id: int, node: BTreeNodePage) -> None:
        node.lsn = self.db.wal.lsn_hint()
        self.db.buffer.mark_dirty(node_id)

    # -- undo --------------------------------------------------------------------------

    def _undo_insert(self, key: int):
        yield from self.latch.acquire_write()
        try:
            yield from self._silent_delete(key)
        finally:
            self.latch.release_write()

    def _undo_delete(self, key: int, value: int):
        yield from self.latch.acquire_write()
        try:
            split = yield from self._insert_rec(self.root_page_id, key, value)
            if split is not None:
                yield from self._grow_root(split)
            self.entry_count += 1
        finally:
            self.latch.release_write()

    def _silent_delete(self, key: int):
        node_id = self.root_page_id
        while True:
            frame = yield from self.db.buffer.fetch(node_id, self.hint)
            node = frame.page
            if node.is_leaf:
                index = bisect_left(node.keys, key)
                if index < len(node.keys) and node.keys[index] == key:
                    node.keys.pop(index)
                    node.values.pop(index)
                    self.entry_count -= 1
                    self.db.buffer.mark_dirty(node_id)
                self.db.buffer.unpin(node_id)
                return
            child = node.children[bisect_right(node.keys, key)]
            self.db.buffer.unpin(node_id)
            node_id = child
