"""Reader-writer latch for DES processes (B+-tree latching)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..sim import Event, Simulator

__all__ = ["RWLock"]


class RWLock:
    """Fair reader-writer lock: FIFO queue, contiguous readers batch."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._active_readers = 0
        self._writer_active = False
        self._queue: Deque[Tuple[Event, str]] = deque()
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.waits = 0

    def acquire_read(self):
        """``yield from`` target: uncontended grants suspend nothing."""
        self.read_acquisitions += 1
        if not self._writer_active and not self._queue:
            self._active_readers += 1
            return ()
        return self._wait("r")

    def acquire_write(self):
        """``yield from`` target: uncontended grants suspend nothing."""
        self.write_acquisitions += 1
        if not self._writer_active and self._active_readers == 0 \
                and not self._queue:
            self._writer_active = True
            return ()
        return self._wait("w")

    def _wait(self, kind: str):
        """Generator: queue behind the current holders."""
        self.waits += 1
        event = self.sim.event()
        self._queue.append((event, kind))
        yield event

    def release_read(self) -> None:
        if self._active_readers <= 0:
            raise RuntimeError("release_read without acquire_read")
        self._active_readers -= 1
        self._grant()

    def release_write(self) -> None:
        if not self._writer_active:
            raise RuntimeError("release_write without acquire_write")
        self._writer_active = False
        self._grant()

    def _grant(self) -> None:
        if self._writer_active or not self._queue:
            return
        event, kind = self._queue[0]
        if kind == "w":
            if self._active_readers == 0:
                self._queue.popleft()
                self._writer_active = True
                event.succeed()
        else:
            while self._queue and self._queue[0][1] == "r":
                reader_event, __ = self._queue.popleft()
                self._active_readers += 1
                reader_event.succeed()
