"""Write-ahead log with group commit.

ARIES-style in shape (every update logs a record carrying its LSN; pages
remember the LSN of their last change; a page may only be written back
once the log is flushed up to that LSN — enforced by the buffer pool).
The log itself lives on a dedicated sequential device, as Shore-MT
deployments put it on a separate volume: flushing costs a fixed latency
and concurrent committers share one flush (group commit).

Undo is handled by the transaction layer with before-images; this module
is durability bookkeeping plus the flush cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..sim import Event, Simulator

__all__ = ["WALRecord", "WALog"]


@dataclass(frozen=True)
class WALRecord:
    lsn: int
    txn_id: int
    kind: str          # 'update' | 'insert' | 'delete' | 'commit' | 'abort'
    payload: Any = None


class WALog:
    """Append-only log buffer with group-commit flushing."""

    def __init__(self, sim: Simulator, flush_latency_us: float = 150.0,
                 keep_records: bool = False, device_barrier=None):
        if flush_latency_us < 0:
            raise ValueError("flush_latency_us must be >= 0")
        self.sim = sim
        self.flush_latency_us = flush_latency_us
        self.keep_records = keep_records
        #: Optional zero-arg generator factory run *inside* the exclusive
        #: flush, after the log write and before ``flushed_lsn`` advances.
        #: This is the barrier-placement rule for a log that lives behind
        #: a write-back device front end: group committers joining an
        #: in-flight flush must observe a truly durable LSN, so the
        #: device barrier has to complete before the LSN is published.
        #: ``None`` (the default — a dedicated write-through log volume)
        #: adds no events and keeps legacy digests bit-identical.
        self.device_barrier = device_barrier
        self.records: List[WALRecord] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self.appended_lsn = 0
        self._flush_done: Optional[Event] = None
        # statistics
        self.total_appends = 0
        self.total_flushes = 0
        self.total_group_commits = 0  # commits that piggybacked on a flush

    def append(self, kind: str, txn_id: int, payload: Any = None) -> int:
        """Host-side append to the log buffer; returns the record's LSN."""
        lsn = self._next_lsn
        self._next_lsn += 1
        self.appended_lsn = lsn
        self.total_appends += 1
        if self.keep_records:
            self.records.append(WALRecord(lsn, txn_id, kind, payload))
        return lsn

    def lsn_hint(self) -> int:
        """Most recently appended LSN (used to stamp pages whose covering
        record was appended just before a batch of node edits)."""
        return self.appended_lsn

    def fast_forward(self, lsn: int) -> None:
        """Continue an older log incarnation: future appends get LSNs
        after ``lsn`` and everything up to it counts as durable (crash
        recovery installs pages stamped with pre-crash LSNs)."""
        self._next_lsn = max(self._next_lsn, lsn + 1)
        self.appended_lsn = max(self.appended_lsn, lsn)
        self.flushed_lsn = max(self.flushed_lsn, lsn)

    def flush_to(self, lsn: int):
        """Generator: ensure the log is durable up to ``lsn``.

        If a flush is already in flight, join it (group commit) and
        re-check afterwards.  An ``lsn`` beyond anything appended is
        vacuously durable (pages recovered from an older log incarnation
        carry such LSNs).
        """
        lsn = min(lsn, self.appended_lsn)
        joined = False
        while self.flushed_lsn < lsn:
            if self._flush_done is not None:
                # Joining an in-flight flush is one group commit for this
                # caller no matter how many successive flushes it waits
                # out (a commit can land just after a flush snapshotted
                # its target and have to ride the next one too).
                if not joined:
                    self.total_group_commits += 1
                    joined = True
                yield self._flush_done
                continue
            done = self.sim.event()
            self._flush_done = done
            target = self.appended_lsn  # everything buffered rides along
            try:
                yield self.sim.timeout(self.flush_latency_us)
                if self.device_barrier is not None:
                    yield from self.device_barrier()
                self.flushed_lsn = max(self.flushed_lsn, target)
                self.total_flushes += 1
            finally:
                self._flush_done = None
                done.succeed()
        return self.flushed_lsn

    def snapshot(self) -> dict:
        return {
            "appended_lsn": self.appended_lsn,
            "flushed_lsn": self.flushed_lsn,
            "total_appends": self.total_appends,
            "total_flushes": self.total_flushes,
            "total_group_commits": self.total_group_commits,
        }
