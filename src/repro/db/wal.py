"""Write-ahead log with group commit.

ARIES-style in shape (every update logs a record carrying its LSN; pages
remember the LSN of their last change; a page may only be written back
once the log is flushed up to that LSN — enforced by the buffer pool).
The log itself lives on a dedicated sequential device, as Shore-MT
deployments put it on a separate volume: flushing costs a fixed latency
and concurrent committers share one flush (group commit).

Undo is handled by the transaction layer with before-images; this module
is durability bookkeeping plus the flush cost model.
"""

from __future__ import annotations

import struct
from typing import Any, List, NamedTuple, Optional

from ..sim import Event, Simulator
from ..telemetry import OpContext

__all__ = ["FlashLogVolume", "WALRecord", "WALog"]


class WALRecord(NamedTuple):
    """One log record.

    A NamedTuple rather than a dataclass: the log buffers raw tuples on
    the append fast path and materialises these views lazily via
    ``_make`` only when someone actually reads :attr:`WALog.records`
    (crash rigs at cut time, recovery replay) — appends in the hot loop
    never pay NamedTuple construction.
    """

    lsn: int
    txn_id: int
    kind: str          # 'update' | 'insert' | 'delete' | 'commit' | 'abort'
    payload: Any = None


#: Fixed-width on-log header: lsn u64, txn_id u64, kind u8.  Payload
#: bytes are host-RAM redo information and are not part of the modelled
#: log footprint.
_HDR = struct.Struct("<QQB")
_KIND_CODES = {
    "insert": 1, "update": 2, "delete": 3, "commit": 4, "abort": 5,
    "index-insert": 6, "index-delete": 7,
}


class WALog:
    """Append-only log buffer with group-commit flushing."""

    def __init__(self, sim: Simulator, flush_latency_us: float = 150.0,
                 keep_records: bool = False, device_barrier=None,
                 segment_writer=None):
        if flush_latency_us < 0:
            raise ValueError("flush_latency_us must be >= 0")
        self.sim = sim
        self.flush_latency_us = flush_latency_us
        self.keep_records = keep_records
        #: Optional generator factory ``(nbytes) -> events`` run inside
        #: the exclusive flush with the batch's on-log byte count: the
        #: log segment write itself, when the log lives on the flash
        #: array instead of a latency-modelled side device (see
        #: :class:`FlashLogVolume`).  Runs before ``device_barrier`` and
        #: before the flushed LSN is published, so group committers only
        #: ever observe LSNs whose segment programs completed.
        self.segment_writer = segment_writer
        #: Optional zero-arg generator factory run *inside* the exclusive
        #: flush, after the log write and before ``flushed_lsn`` advances.
        #: This is the barrier-placement rule for a log that lives behind
        #: a write-back device front end: group committers joining an
        #: in-flight flush must observe a truly durable LSN, so the
        #: device barrier has to complete before the LSN is published.
        #: ``None`` (the default — a dedicated write-through log volume)
        #: adds no events and keeps legacy digests bit-identical.
        self.device_barrier = device_barrier
        # Raw (lsn, txn_id, kind, payload) tuples; materialised into
        # WALRecord views on demand by the :attr:`records` property.
        self._raw: List[tuple] = []
        self._views: List[WALRecord] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self.appended_lsn = 0
        self._flush_done: Optional[Event] = None
        # Physical log footprint model: every flush batch-encodes the
        # fixed-width headers of the records it carries (one pack_into
        # per group commit) into a reusable scratch buffer.
        self.bytes_flushed = 0
        self._encoded_idx = 0      # first _raw index not yet encoded
        self._enc_scratch = bytearray(0)
        # statistics
        self.total_appends = 0
        self.total_flushes = 0
        self.total_group_commits = 0  # commits that piggybacked on a flush

    def append(self, kind: str, txn_id: int, payload: Any = None) -> int:
        """Host-side append to the log buffer; returns the record's LSN."""
        lsn = self._next_lsn
        self._next_lsn += 1
        self.appended_lsn = lsn
        self.total_appends += 1
        if self.keep_records:
            self._raw.append((lsn, txn_id, kind, payload))
        return lsn

    @property
    def records(self) -> List[WALRecord]:
        """WALRecord views of everything appended (``keep_records`` only).

        Materialised lazily: the hot append path buffers plain tuples and
        this property converts only the tail added since the last read.
        """
        views = self._views
        raw = self._raw
        if len(views) != len(raw):
            views.extend(map(WALRecord._make, raw[len(views):]))
        return views

    def lsn_hint(self) -> int:
        """Most recently appended LSN (used to stamp pages whose covering
        record was appended just before a batch of node edits)."""
        return self.appended_lsn

    def fast_forward(self, lsn: int) -> None:
        """Continue an older log incarnation: future appends get LSNs
        after ``lsn`` and everything up to it counts as durable (crash
        recovery installs pages stamped with pre-crash LSNs)."""
        self._next_lsn = max(self._next_lsn, lsn + 1)
        self.appended_lsn = max(self.appended_lsn, lsn)
        self.flushed_lsn = max(self.flushed_lsn, lsn)

    def flush_to(self, lsn: int):
        """Generator: ensure the log is durable up to ``lsn``.

        If a flush is already in flight, join it (group commit) and
        re-check afterwards.  An ``lsn`` beyond anything appended is
        vacuously durable (pages recovered from an older log incarnation
        carry such LSNs).
        """
        lsn = min(lsn, self.appended_lsn)
        joined = False
        while self.flushed_lsn < lsn:
            if self._flush_done is not None:
                # Joining an in-flight flush is one group commit for this
                # caller no matter how many successive flushes it waits
                # out (a commit can land just after a flush snapshotted
                # its target and have to ride the next one too).
                if not joined:
                    self.total_group_commits += 1
                    joined = True
                yield self._flush_done
                continue
            done = self.sim.event()
            self._flush_done = done
            target = self.appended_lsn  # everything buffered rides along
            try:
                yield self.sim.timeout(self.flush_latency_us)
                prev = self.flushed_lsn
                if self.segment_writer is not None and target > prev:
                    yield from self.segment_writer(
                        (target - prev) * _HDR.size)
                if self.device_barrier is not None:
                    yield from self.device_barrier()
                if target > prev:
                    self.flushed_lsn = target
                    self._encode_batch(prev, target)
                self.total_flushes += 1
            finally:
                self._flush_done = None
                done.succeed()
        return self.flushed_lsn

    def _encode_batch(self, prev_lsn: int, target: int) -> None:
        """Account (and, for kept logs, encode) one flush batch.

        The group-commit discipline means record headers never need
        per-append packing: everything the flush made durable is encoded
        here with a single ``struct.pack_into`` into a reusable scratch
        buffer.  Logs that do not keep records model the same footprint
        arithmetically from the LSN window.
        """
        if not self.keep_records:
            self.bytes_flushed += (target - prev_lsn) * _HDR.size
            return
        raw = self._raw
        idx = self._encoded_idx
        end = idx
        nraw = len(raw)
        while end < nraw and raw[end][0] <= target:
            end += 1
        count = end - idx
        if count:
            need = count * _HDR.size
            if len(self._enc_scratch) < need:
                self._enc_scratch = bytearray(need)
            values: List[int] = []
            extend = values.extend
            codes = _KIND_CODES
            for lsn, txn_id, kind, _payload in raw[idx:end]:
                extend((lsn, txn_id, codes.get(kind, 0)))
            struct.pack_into("<" + "QQB" * count, self._enc_scratch, 0,
                             *values)
            self._encoded_idx = end
            self.bytes_flushed += count * _HDR.size

    def snapshot(self) -> dict:
        return {
            "appended_lsn": self.appended_lsn,
            "flushed_lsn": self.flushed_lsn,
            "total_appends": self.total_appends,
            "total_flushes": self.total_flushes,
            "total_group_commits": self.total_group_commits,
            "bytes_flushed": self.bytes_flushed,
        }


class FlashLogVolume:
    """Circular WAL segment window on the flash array itself.

    The latency-model default treats the log as a dedicated side device;
    this volume instead puts real WAL traffic on the array so write
    streams have an actual ``wal`` producer to segregate.  It owns a
    window of ``window_pages`` logical pages (callers place it at the
    *top* of the logical space, clear of the db page allocator growing
    from 0) and appends segments round-robin: each flush programs
    ``ceil(nbytes / page_bytes)`` pages — torn-write discipline, a
    partial tail page is padded and the next flush starts fresh — and
    wrapping simply overwrites the oldest slot, which self-invalidates
    the superseded segment in the FTL (checkpointing is out of scope;
    the window is sized so live recovery state always fits).

    Wire it up with ``wal.segment_writer = volume.writer``.  Every
    program carries an ``OpContext("txn-commit")`` chain, which
    :func:`~repro.telemetry.context.data_class_of` resolves to ``wal``.
    """

    def __init__(self, storage, base_page: int, window_pages: int,
                 page_bytes: int = 2048):
        if window_pages < 1:
            raise ValueError("window_pages must be >= 1")
        if base_page < 0:
            raise ValueError("base_page must be >= 0")
        self.storage = storage
        self.base_page = base_page
        self.window_pages = window_pages
        self.page_bytes = page_bytes
        self._cursor = 0
        self.pages_programmed = 0
        self.wraps = 0

    def writer(self, nbytes: int):
        """Generator: program one flush batch (``WALog.segment_writer``)."""
        pages = max(1, -(-nbytes // self.page_bytes))
        for _ in range(pages):
            lpn = self.base_page + self._cursor
            self._cursor += 1
            if self._cursor >= self.window_pages:
                self._cursor = 0
                self.wraps += 1
            ctx = OpContext("txn-commit", data_class="wal")
            yield from self.storage.write(lpn, None, "hot", ctx=ctx)
            self.pages_programmed += 1

    def snapshot(self) -> dict:
        return {
            "pages_programmed": self.pages_programmed,
            "wraps": self.wraps,
            "window_pages": self.window_pages,
        }
