"""Temp / spill area: the ``temp`` data class's producer.

The write-stream taxonomy reserved a ``temp`` class for sort runs and
hash-spill partitions from day one, but nothing in the stack ever wrote
one — the class existed only as a zero row in the WA ledger (the ledger
now flags exactly that as *producer-less*).  This module closes the gap
with the smallest honest model of an external-sort spill:

* ``spill(pages)`` allocates page ids from the database's free-space
  manager and programs one sequential run, every write stamped
  ``data_class="temp"`` so placement routes it into the temp stream;
* ``drain()`` reads the oldest run back (the merge pass) and releases
  its pages through :meth:`~repro.db.database.Database.release_page`,
  whose trim both frees the flash and makes the ledger *forget* the
  lpn→class binding — recycled page ids must re-learn their class from
  whoever writes them next, which ``tests/test_streams.py`` pins.

Temp data is the shortest-lived traffic the database produces; mixing it
into heap/btree blocks is the classic write-amplification own-goal the
stream split exists to prevent.
"""

from __future__ import annotations

from typing import List, Optional

from ..telemetry import OpContext

__all__ = ["TempArea"]


class TempArea:
    """Sequential spill runs over the database's page allocator."""

    def __init__(self, db):
        self.db = db
        self.spills = 0
        self.pages_spilled = 0
        self.pages_reclaimed = 0
        self._runs: List[List[int]] = []

    @property
    def live_runs(self) -> int:
        return len(self._runs)

    def spill(self, pages: int):
        """Generator: write one ``pages``-long spill run."""
        if pages < 1:
            raise ValueError("pages must be >= 1")
        run = [self.db.allocate_page() for _ in range(pages)]
        for page_id in run:
            ctx = OpContext("txn", data_class="temp")
            yield from self.db.storage.write(page_id, None, "cold", ctx=ctx)
            self.pages_spilled += 1
        self._runs.append(run)
        self.spills += 1

    def drain(self):
        """Generator: merge-read the oldest run and release its pages."""
        if not self._runs:
            return
        run = self._runs.pop(0)
        for page_id in run:
            ctx = OpContext("txn", data_class="temp")
            yield from self.db.storage.read(page_id, ctx=ctx)
            yield from self.db.release_page(page_id)
            self.pages_reclaimed += 1

    def process(self, interval_us: float, pages: int, keep: int = 2,
                until_us: Optional[float] = None):
        """Generator process: periodic spill with bounded live runs.

        Spawned by benches as a steady temp producer: every
        ``interval_us`` it spills one run, then drains until at most
        ``keep`` runs stay live — so temp traffic continuously cycles
        allocate → program → trim, exactly the churn profile that makes
        class segregation measurable.  ``until_us`` bounds the producer
        (closed-loop rigs end by draining the event queue, so an
        unbounded producer would keep the simulation alive forever);
        at the horizon it drains every live run and exits.
        """
        sim = self.db.sim
        while until_us is None or sim.now < until_us:
            yield sim.timeout(interval_us)
            yield from self.spill(pages)
            while len(self._runs) > keep:
                yield from self.drain()
        while self._runs:
            yield from self.drain()

    def snapshot(self) -> dict:
        return {
            "spills": self.spills,
            "pages_spilled": self.pages_spilled,
            "pages_reclaimed": self.pages_reclaimed,
            "live_runs": self.live_runs,
        }
