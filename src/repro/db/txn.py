"""Transactions: ACID bookkeeping over the WAL, lock manager and heaps.

Commit follows the textbook discipline: append a commit record, flush
the log up to it (group commit amortises concurrent committers), then
release locks.  Abort applies the transaction's undo list in reverse —
each entry is a generator produced by the heap/index layer that restores
the before-image through the buffer pool.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.storage import emit_host_op
from ..sim import Simulator
from ..telemetry import EventTrace, OpContext
from .locks import LockManager, LockMode, TxnAborted
from .wal import WALog

__all__ = ["Transaction", "TransactionManager", "TxnAborted"]

_ACTIVE = "active"
_COMMITTED = "committed"
_ABORTED = "aborted"


class Transaction:
    """One transaction's state: id, locks (via the manager), undo list."""

    __slots__ = ("txn_id", "state", "undo", "last_lsn", "on_commit")

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = _ACTIVE
        # Each entry is a zero-argument callable returning a DES generator
        # that undoes one change; applied in reverse order on abort.
        self.undo: List[Callable] = []
        # Deferred actions (generator callables) run after the commit
        # record is durable — e.g. the free-space manager releasing pages
        # emptied by this transaction.
        self.on_commit: List[Callable] = []
        self.last_lsn = 0

    @property
    def is_active(self) -> bool:
        return self.state == _ACTIVE

    def push_undo(self, action: Callable) -> None:
        self.undo.append(action)


class TransactionManager:
    """Begin / commit / abort over the shared WAL and lock manager."""

    def __init__(self, sim: Simulator, wal: WALog, locks: LockManager,
                 trace: Optional[EventTrace] = None):
        self.sim = sim
        self.wal = wal
        self.locks = locks
        self.trace = trace
        self._next_txn_id = 1
        self.commits = 0
        self.aborts = 0

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id)
        self._next_txn_id += 1
        return txn

    def commit(self, txn: Transaction, ctx: Optional[OpContext] = None):
        """Generator: make the transaction durable and release its locks."""
        self._check_active(txn)
        trace = self.trace
        tracing = trace is not None and trace.enabled
        # The default commit context only ever feeds the host.op trace
        # event; with tracing off its allocation and cost bookkeeping are
        # unobservable, so both are skipped.  A caller-provided ctx keeps
        # its charges either way.
        if ctx is None and tracing:
            ctx = OpContext("txn-commit", txn_id=txn.txn_id)
        start = self.sim.now
        before = dict(ctx.costs) if ctx is not None else None
        lsn = self.wal.append("commit", txn.txn_id)
        wal_start = self.sim.now
        yield from self.wal.flush_to(lsn)
        if ctx is not None:
            ctx.charge("wal_us", self.sim.now - wal_start)
        txn.state = _COMMITTED
        for action in txn.on_commit:
            yield from action()
        self.locks.release_all(txn.txn_id)
        self.commits += 1
        if tracing and ctx is not None:
            emit_host_op(trace, "commit", ctx, before, self.sim.now - start)

    def abort(self, txn: Transaction):
        """Generator: undo every change, log the abort, release locks."""
        self._check_active(txn)
        for action in reversed(txn.undo):
            yield from action()
        self.wal.append("abort", txn.txn_id)
        txn.state = _ABORTED
        self.locks.release_all(txn.txn_id)
        self.aborts += 1

    def lock(self, txn: Transaction, key, mode: str = LockMode.EXCLUSIVE):
        """``yield from`` target: 2PL acquire on behalf of ``txn``."""
        self._check_active(txn)
        return self.locks.acquire(txn.txn_id, key, mode)

    @staticmethod
    def _check_active(txn: Transaction) -> None:
        if not txn.is_active:
            raise RuntimeError(f"transaction {txn.txn_id} is {txn.state}")
