"""Heap files: slotted-page record storage with a free-space map.

NoFTL integration lives here: when deletes empty a page, the free-space
manager *deallocates it at commit* and tells the storage layer via
``trim`` — so the DBMS's knowledge of dead data reaches flash GC, one of
the paper's integration strategies (Section 3, point ii).  On the
black-box adapter the same call is a no-op, which is exactly the
information asymmetry Figure 3 measures.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from .locks import LockMode
from .page import SlottedPage
from .txn import Transaction

__all__ = ["RID", "pack_rid", "unpack_rid", "HeapFile"]


class RID(NamedTuple):
    """Record identifier: (page_id, slot)."""

    page_id: int
    slot: int


def pack_rid(rid: RID) -> int:
    """RID as one non-negative int (B+-tree leaf payload)."""
    return (rid.page_id << 16) | rid.slot


def unpack_rid(packed: int) -> RID:
    return RID(packed >> 16, packed & 0xFFFF)


class HeapFile:
    """A table's record storage.  All data paths are DES generators."""

    def __init__(self, db, name: str, hint: str = "hot"):
        self.db = db
        self.name = name
        self.hint = hint
        self.page_ids: List[int] = []
        self._with_space: List[int] = []  # stack of pages likely to fit more
        self._table_lock_key = ("table", name)
        self.record_count = 0

    # -- record operations (generators) -----------------------------------------

    def insert(self, txn: Transaction, record: bytes):
        """Generator: store a record; returns its RID."""
        db = self.db
        buffer = db.buffer
        yield from db.cpu()
        yield from buffer.throttle()
        record = bytes(record)
        while True:
            if self._with_space:
                page_id = self._with_space[-1]
                frame = yield from buffer.fetch(page_id, self.hint)
            else:
                frame = yield from self._grow()
                page_id = frame.page_id
            slot = frame.page.insert(record)
            if slot is None:
                if self._with_space and self._with_space[-1] == page_id:
                    self._with_space.pop()
                buffer.unpin(page_id)
                continue
            rid = RID(page_id, slot)
            lsn = db.wal.append("insert", txn.txn_id,
                                (self.name, page_id, slot, record))
            frame.page.lsn = lsn
            txn.last_lsn = lsn
            buffer.mark_dirty(page_id)
            buffer.unpin(page_id)
            self.record_count += 1
            txn.push_undo(lambda rid=rid: self._undo_insert(rid))
            yield from db.txn_manager.lock(txn, (self.name, rid),
                                           LockMode.EXCLUSIVE)
            return rid

    def read(self, txn: Transaction, rid: RID,
             mode: str = LockMode.SHARED, acquire_lock: bool = True) -> bytes:
        """Generator: fetch one record, normally under a record lock.

        ``acquire_lock=False`` reads at READ UNCOMMITTED — what TPC-C
        explicitly permits for StockLevel/OrderStatus, and what keeps
        those scans out of the update transactions' lock graphs.
        """
        db = self.db
        buffer = db.buffer
        yield from db.cpu()
        if acquire_lock:
            yield from db.txn_manager.lock(txn, (self.name, rid), mode)
        frame = yield from buffer.fetch(rid.page_id, self.hint)
        try:
            page = frame.page
            if not isinstance(page, SlottedPage):
                raise KeyError(
                    f"{self.name}: page {rid.page_id} was released and "
                    f"recycled; record {rid} is gone"
                )
            record = page.get(rid.slot)
        finally:
            buffer.unpin(rid.page_id)
        if record is None:
            raise KeyError(f"{self.name}: record {rid} is deleted")
        return record

    def update(self, txn: Transaction, rid: RID, record: bytes):
        """Generator: replace a record in place (fixed-size records always
        fit; growth beyond the page's free space is unsupported by heaps —
        use delete+insert)."""
        db = self.db
        buffer = db.buffer
        yield from db.cpu()
        yield from buffer.throttle()
        record = bytes(record)
        yield from db.txn_manager.lock(txn, (self.name, rid),
                                       LockMode.EXCLUSIVE)
        frame = yield from buffer.fetch(rid.page_id, self.hint)
        try:
            page = frame.page
            if not isinstance(page, SlottedPage):
                raise KeyError(
                    f"{self.name}: page {rid.page_id} was released and "
                    f"recycled; record {rid} is gone"
                )
            before = page.get(rid.slot)
            if before is None:
                raise KeyError(f"{self.name}: record {rid} is deleted")
            if not page.update(rid.slot, record):
                raise ValueError(
                    f"{self.name}: record growth overflows page {rid.page_id}"
                )
            lsn = db.wal.append(
                "update", txn.txn_id,
                (self.name, rid.page_id, rid.slot, record, before),
            )
            page.lsn = lsn
            txn.last_lsn = lsn
            buffer.mark_dirty(rid.page_id)
        finally:
            buffer.unpin(rid.page_id)
        txn.push_undo(
            lambda rid=rid, before=before: self._undo_update(rid, before)
        )
        return rid

    def delete(self, txn: Transaction, rid: RID):
        """Generator: remove a record; empty pages are deallocated (and the
        flash trimmed) when the transaction commits."""
        yield from self.db.cpu()
        yield from self.db.buffer.throttle()
        yield from self.db.txn_manager.lock(txn, (self.name, rid),
                                            LockMode.EXCLUSIVE)
        frame = yield from self.db.buffer.fetch(rid.page_id, self.hint)
        try:
            if not isinstance(frame.page, SlottedPage):
                raise KeyError(
                    f"{self.name}: page {rid.page_id} was released and "
                    f"recycled; record {rid} is gone"
                )
            before = frame.page.get(rid.slot)
            if before is None:
                raise KeyError(f"{self.name}: record {rid} already deleted")
            frame.page.delete(rid.slot)
            lsn = self.db.wal.append("delete", txn.txn_id,
                                     (self.name, rid.page_id, rid.slot,
                                      before))
            frame.page.lsn = lsn
            txn.last_lsn = lsn
            self.db.buffer.mark_dirty(rid.page_id)
            emptied = frame.page.live_records == 0
        finally:
            self.db.buffer.unpin(rid.page_id)
        self.record_count -= 1
        txn.push_undo(
            lambda rid=rid, before=before: self._undo_delete(rid, before)
        )
        if emptied:
            txn.on_commit.append(
                lambda page_id=rid.page_id: self._maybe_release_page(page_id)
            )
        else:
            self._note_space(rid.page_id)

    def scan(self, txn: Transaction):
        """Generator: all (rid, record) pairs under a table-level S lock
        (TPC-H style full scans)."""
        yield from self.db.txn_manager.lock(txn, self._table_lock_key,
                                            LockMode.SHARED)
        result: List[Tuple[RID, bytes]] = []
        for page_id in list(self.page_ids):
            yield from self.db.cpu()
            frame = yield from self.db.buffer.fetch(page_id, self.hint)
            try:
                for slot, record in frame.page.iter_records():
                    result.append((RID(page_id, slot), record))
            finally:
                self.db.buffer.unpin(page_id)
        return result

    # -- undo actions -----------------------------------------------------------------

    def _undo_insert(self, rid: RID):
        frame = yield from self.db.buffer.fetch(rid.page_id, self.hint)
        try:
            if frame.page.get(rid.slot) is not None:
                frame.page.delete(rid.slot)
                self.record_count -= 1
            self.db.buffer.mark_dirty(rid.page_id)
        finally:
            self.db.buffer.unpin(rid.page_id)
        self._note_space(rid.page_id)

    def _undo_update(self, rid: RID, before: bytes):
        frame = yield from self.db.buffer.fetch(rid.page_id, self.hint)
        try:
            frame.page.update(rid.slot, before)
            self.db.buffer.mark_dirty(rid.page_id)
        finally:
            self.db.buffer.unpin(rid.page_id)

    def _undo_delete(self, rid: RID, before: bytes):
        frame = yield from self.db.buffer.fetch(rid.page_id, self.hint)
        try:
            frame.page.restore(rid.slot, before)
            self.db.buffer.mark_dirty(rid.page_id)
        finally:
            self.db.buffer.unpin(rid.page_id)
        self.record_count += 1

    # -- space management ----------------------------------------------------------------

    def _grow(self):
        """Generator: allocate and install a fresh page (returned pinned)."""
        page_id = self.db.allocate_page()
        page = SlottedPage(page_id, self.db.page_bytes)
        frame = yield from self.db.buffer.new_page(page_id, page, self.hint)
        self.page_ids.append(page_id)
        self._with_space.append(page_id)
        return frame

    def _note_space(self, page_id: int) -> None:
        if page_id not in self._with_space:
            self._with_space.append(page_id)

    def _maybe_release_page(self, page_id: int):
        """Generator (commit hook): deallocate a page that is still empty.

        This is the free-space-manager -> flash integration: the trim
        reaches the NoFTL storage manager, which drops the mapping so GC
        never copies the dead page again.
        """
        frame = yield from self.db.buffer.fetch(page_id, self.hint)
        still_empty = frame.page.live_records == 0
        self.db.buffer.unpin(page_id)
        if not still_empty:
            return
        if page_id in self.page_ids:
            self.page_ids.remove(page_id)
        if page_id in self._with_space:
            self._with_space.remove(page_id)
        yield from self.db.release_page(page_id)
