"""A Shore-MT-shaped mini storage engine: slotted pages, heaps, B+-trees,
buffer pool with WAL discipline, 2PL locking, transactions and background
db-writers with global vs flash-aware (region) assignment."""

from .btree import BTreeIndex, DuplicateKeyError
from .buffer import BufferPool, Frame
from .database import Database
from .flusher import DbWriterPool
from .heap import RID, HeapFile, pack_rid, unpack_rid
from .latches import RWLock
from .locks import LockManager, LockMode, TxnAborted
from .page import BTreeNodePage, PageFormatError, SlottedPage, decode_page
from .recovery import ColdStart, RecoveryReport, cold_start, recover_database
from .storage import (
    BlockDeviceAdapter,
    NoFTLStorageAdapter,
    RAMStorageAdapter,
    StorageAdapter,
)
from .temp import TempArea
from .txn import Transaction, TransactionManager
from .wal import FlashLogVolume, WALog, WALRecord

__all__ = [
    "BTreeIndex",
    "DuplicateKeyError",
    "BufferPool",
    "Frame",
    "Database",
    "DbWriterPool",
    "RID",
    "HeapFile",
    "pack_rid",
    "unpack_rid",
    "RWLock",
    "LockManager",
    "LockMode",
    "TxnAborted",
    "BTreeNodePage",
    "PageFormatError",
    "SlottedPage",
    "decode_page",
    "ColdStart",
    "RecoveryReport",
    "cold_start",
    "recover_database",
    "BlockDeviceAdapter",
    "NoFTLStorageAdapter",
    "RAMStorageAdapter",
    "StorageAdapter",
    "TempArea",
    "Transaction",
    "TransactionManager",
    "FlashLogVolume",
    "WALog",
    "WALRecord",
]
