"""Buffer pool: page cache with pinning, LRU eviction and WAL discipline.

The mechanics that matter for the paper's experiments:

* a transaction that misses and finds only **dirty** eviction victims
  must write one back in the foreground — that stall is exactly what
  background db-writers exist to prevent, and what makes their
  throughput (and their flash-contention behaviour, Figure 4) visible in
  transactions per second;
* every page write-back observes the WAL rule: log flushed up to the
  page's last LSN before the page goes to storage;
* each first-dirtying of a page is announced to a listener — the hook
  the db-writer framework (global vs die-wise assignment) plugs into;
* flushes snapshot the page bytes *before* any waiting, so a concurrent
  mutator can never leak an unlogged change to storage.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional

from ..sim import Event, Granted, Simulator
from ..telemetry import EventTrace, MetricsRegistry, OpContext
from .page import BTreeNodePage, decode_page
from .storage import StorageAdapter
from .wal import WALog

__all__ = ["Frame", "BufferPool"]


class Frame:
    """One resident page."""

    __slots__ = ("page_id", "page", "pin_count", "dirty", "dirty_seq",
                 "hint", "heat", "flush_event", "evicting")

    def __init__(self, page_id: int, page, hint: str = "hot"):
        self.page_id = page_id
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.dirty_seq = 0
        self.hint = hint
        self.heat = 0
        self.flush_event: Optional[Event] = None
        self.evicting = False


class BufferPool:
    """Fixed-capacity page cache over a storage adapter."""

    def __init__(
        self,
        sim: Simulator,
        storage: StorageAdapter,
        wal: WALog,
        capacity: int,
        foreground_flush: bool = True,
        clean_wait_timeout_us: float = 10_000.0,
        dirty_throttle_fraction: Optional[float] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
        heat_hints: bool = False,
        heat_threshold: int = 4,
    ):
        if capacity < 4:
            raise ValueError("buffer pool needs at least 4 frames")
        if heat_threshold < 1:
            raise ValueError("heat_threshold must be >= 1")
        self.sim = sim
        self.storage = storage
        self.wal = wal
        self.capacity = capacity
        #: True: a transaction that evicts a dirty victim writes it back
        #: itself.  False (Shore-MT style, used by the Figure 4 bench):
        #: it waits for a background db-writer to produce a clean frame,
        #: falling back to an inline flush after ``clean_wait_timeout_us``
        #: so a stalled writer pool can never wedge the system.
        self.foreground_flush = foreground_flush
        self.clean_wait_timeout_us = clean_wait_timeout_us
        #: When set (e.g. 0.5), mutators calling :meth:`throttle` wait
        #: while more than this fraction of frames is dirty and background
        #: writers are active — the checkpoint/log-recycling back-pressure
        #: that couples transaction throughput to db-writer throughput
        #: (what the paper's Figure 4 measures).
        if dirty_throttle_fraction is not None \
                and not 0.05 <= dirty_throttle_fraction <= 1.0:
            raise ValueError("dirty_throttle_fraction must be in [0.05, 1]")
        self.dirty_throttle_fraction = dirty_throttle_fraction
        #: Opt-in reference-heat temperature: frames accumulate heat on
        #: hits and mutations, and every write-back re-derives its hot /
        #: cold hint from the accumulated heat (halved afterwards, an
        #: exponential decay).  This is what splits the heap class into
        #: ``heap-hot`` / ``heap-cold`` streams under write-streams mode.
        #: Off by default: the static per-frame hint keeps every legacy
        #: rig's storage traffic byte-identical.
        self.heat_hints = heat_hints
        self.heat_threshold = heat_threshold
        self.throttle_waits = 0
        self.frames: "OrderedDict[int, Frame]" = OrderedDict()
        # Resident dirty frames, maintained at each dirty/clean transition
        # so throttle() and the db-writers' idle scans are O(1) instead of
        # O(frames).
        self._dirty_total = 0
        self._loading: Dict[int, Event] = {}
        self._reserved = 0
        self._unpin_waiters: Deque[Event] = deque()
        self._clean_waiters: Deque[Event] = deque()
        self._dirty_listener: Optional[Callable[[int, Frame], None]] = None
        #: Set by DbWriterPool while background cleaners run; gates the
        #: wait-for-clean-frame eviction path.
        self.background_writers_active = False
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_eviction_stalls = 0
        self.clean_waits = 0
        self.flushes = 0
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = (
            trace if trace is not None else EventTrace(clock=self.telemetry.now)
        )
        self._tm_hits = self.telemetry.counter(
            "db.buffer.lookups", layer="db", event="hit")
        self._tm_misses = self.telemetry.counter(
            "db.buffer.lookups", layer="db", event="miss")
        self._tm_evictions = self.telemetry.counter(
            "db.buffer.evictions", layer="db")
        self._tm_stalls = self.telemetry.counter(
            "db.buffer.dirty_eviction_stalls", layer="db")
        self._tm_flush_us = self.telemetry.histogram(
            "db.flush_us", layer="db")
        self.telemetry.register_collector("db.buffer", self.snapshot)
        # One reusable pre-completed grant for the hit path.  Every fetch
        # call site is ``yield from buffer.fetch(...)``, which consumes
        # the Granted synchronously in the same bytecode evaluation that
        # called fetch() — the instance can never be live twice, so the
        # pool avoids one allocation per buffer hit.
        self._hit_grant = Granted(None)

    # -- configuration ------------------------------------------------------------

    def set_dirty_listener(self, listener: Callable[[int, Frame], None]) -> None:
        """``listener(page_id, frame)`` fires when a clean page turns dirty
        (db-writer framework hook)."""
        self._dirty_listener = listener

    # -- pin / unpin ----------------------------------------------------------------

    def fetch(self, page_id: int, hint: str = "hot",
              ctx: Optional[OpContext] = None):
        """``yield from`` target: pin the page, loading it from storage on
        a miss.  Hits complete without allocating a generator frame."""
        frame = self.frames.get(page_id)
        if frame is not None and not frame.evicting:
            frame.pin_count += 1
            self.frames.move_to_end(page_id)
            self.hits += 1
            self._tm_hits.value += 1
            if self.heat_hints:
                frame.heat += 1
            grant = self._hit_grant
            grant.value = frame
            return grant
        return self._fetch_miss(page_id, hint, ctx)

    def _fetch_miss(self, page_id: int, hint: str,
                    ctx: Optional[OpContext]):
        """Generator: the miss / load-in-flight path of :meth:`fetch`."""
        while True:
            frame = self.frames.get(page_id)
            if frame is not None and not frame.evicting:
                frame.pin_count += 1
                self.frames.move_to_end(page_id)
                self.hits += 1
                self._tm_hits.inc()
                if self.heat_hints:
                    frame.heat += 1
                return frame
            loading = self._loading.get(page_id)
            if loading is not None:
                yield loading
                continue
            # The context is only consulted on the miss path (eviction +
            # storage read); hits skip the default-OpContext allocation.
            if ctx is None:
                ctx = OpContext("txn")
            done = self.sim.event()
            self._loading[page_id] = done
            try:
                self.misses += 1
                self._tm_misses.inc()
                yield from self._make_room(ctx)
                self._reserved += 1
                try:
                    raw = yield from self.storage.read(page_id, ctx=ctx)
                finally:
                    self._reserved -= 1
                if raw is None:
                    raise KeyError(f"page {page_id} does not exist on storage")
                frame = Frame(page_id, decode_page(raw), hint)
                frame.pin_count = 1
                self.frames[page_id] = frame
            finally:
                del self._loading[page_id]
                done.succeed()
            return frame

    def new_page(self, page_id: int, page, hint: str = "hot",
                 ctx: Optional[OpContext] = None):
        """Generator: install a freshly allocated page (pinned, dirty)."""
        if page_id in self.frames or page_id in self._loading:
            raise ValueError(f"page {page_id} already resident")
        yield from self._make_room(ctx)
        frame = Frame(page_id, page, hint)
        frame.pin_count = 1
        self.frames[page_id] = frame
        self.mark_dirty(page_id)
        return frame

    def purge_page(self, page_id: int):
        """Generator: remove a page from the pool for good (deallocation).

        Waits out any in-flight load of the page (a stale reader racing
        the free-space manager) so no ghost frame can reappear after the
        page id is recycled.  The frame must be unpinned.
        """
        while page_id in self._loading:
            yield self._loading[page_id]
        frame = self.frames.get(page_id)
        if frame is not None:
            if frame.pin_count > 0:
                raise RuntimeError(f"purging pinned page {page_id}")
            if frame.flush_event is not None:
                yield frame.flush_event
            if frame.dirty:
                frame.dirty = False
                self._dirty_total -= 1
            self.frames.pop(page_id, None)

    def unpin(self, page_id: int) -> None:
        frame = self.frames.get(page_id)
        if frame is None or frame.pin_count <= 0:
            raise RuntimeError(f"unpin of page {page_id} that is not pinned")
        frame.pin_count -= 1
        if frame.pin_count == 0 and self._unpin_waiters:
            self._unpin_waiters.popleft().succeed()

    def mark_dirty(self, page_id: int) -> None:
        """Caller holds a pin and has just mutated (and WAL-logged) the page."""
        frame = self.frames[page_id]
        was_clean = not frame.dirty
        frame.dirty = True
        frame.dirty_seq += 1
        if self.heat_hints:
            frame.heat += 1
        if was_clean:
            self._dirty_total += 1
            if self._dirty_listener is not None:
                self._dirty_listener(page_id, frame)

    def throttle(self):
        """``yield from`` target: back-pressure for mutators.

        No-op unless ``dirty_throttle_fraction`` is set, background
        writers are running and the dirty ratio is above the limit; then
        the caller waits for writers to clean frames (bounded by the
        clean-wait timeout so a dead writer pool cannot wedge commits).
        """
        if self.dirty_throttle_fraction is None \
                or not self.background_writers_active:
            return ()  # delegating to an empty tuple yields nothing
        return self._throttle_wait()

    def _throttle_wait(self):
        """Generator: the engaged-throttle path of :meth:`throttle`."""
        limit = self.dirty_throttle_fraction * self.capacity
        while self.dirty_count > limit:
            self.throttle_waits += 1
            cleaned = self.sim.event()
            self._clean_waiters.append(cleaned)
            deadline = self.sim.timeout(self.clean_wait_timeout_us)
            fired = yield self.sim.any_of([cleaned, deadline])
            if cleaned not in fired:
                try:
                    self._clean_waiters.remove(cleaned)
                except ValueError:
                    pass
                return  # timed out: proceed rather than wedge

    # -- flushing ----------------------------------------------------------------------

    def flush_page(self, page_id: int, ctx: Optional[OpContext] = None):
        """Generator: write one page back (no-op when clean or absent)."""
        frame = self.frames.get(page_id)
        if frame is None:
            return False
        flushed = yield from self._flush_frame(frame, ctx)
        return flushed

    def flush_all(self):
        """Generator: checkpoint — write back every dirty resident page.

        Ends with the storage adapter's durability barrier: a checkpoint
        that leaves its write-backs in a volatile device cache has not
        checkpointed anything.  Plain adapters' barrier is a no-op that
        schedules no events, so legacy digests are unchanged.
        """
        ctx = OpContext("host")
        for page_id in list(self.frames):
            frame = self.frames.get(page_id)
            if frame is not None and frame.dirty:
                yield from self._flush_frame(frame, ctx)
        barrier = getattr(self.storage, "flush_barrier", None)
        if barrier is not None:
            yield from barrier(ctx=ctx)

    def _flush_frame(self, frame: Frame, ctx: Optional[OpContext] = None):
        if not frame.dirty:
            return False
        if ctx is None:
            ctx = OpContext("txn")
        if frame.flush_event is not None:
            yield frame.flush_event  # someone else is flushing: join them
            return False
        done = self.sim.event()
        frame.flush_event = done
        start = self.telemetry.now()
        try:
            # Snapshot *before* yielding: a concurrent mutator cannot leak
            # unlogged bytes into this write-back.
            raw = frame.page.to_bytes()
            lsn = frame.page.lsn
            seq = frame.dirty_seq
            wal_start = self.telemetry.now()
            yield from self.wal.flush_to(lsn)
            ctx.charge("wal_us", self.telemetry.now() - wal_start)
            # Classify the write-back for the WA ledger.  The flush ctx is
            # used strictly sequentially (``yield from`` returns only after
            # the write is accounted), so restamping per frame is safe even
            # when one ctx covers a whole checkpoint loop.
            ctx.data_class = (
                "btree" if isinstance(frame.page, BTreeNodePage) else "heap"
            )
            hint = frame.hint
            if self.heat_hints:
                # Temperature from reference heat, decayed per write-back
                # so a page that cools down migrates to the cold stream
                # within a couple of flush cycles.
                hint = "hot" if frame.heat >= self.heat_threshold else "cold"
                frame.heat >>= 1
            yield from self.storage.write(frame.page_id, raw, hint,
                                          ctx=ctx)
            if frame.dirty_seq == seq:
                frame.dirty = False
                self._dirty_total -= 1
                while self._clean_waiters:
                    self._clean_waiters.popleft().succeed()
            elif self._dirty_listener is not None:
                # Re-dirtied mid-flush: make sure a writer comes back for
                # it (the original enqueue has been consumed).
                self._dirty_listener(frame.page_id, frame)
            self.flushes += 1
            self._tm_flush_us.observe(self.telemetry.now() - start)
        finally:
            frame.flush_event = None
            done.succeed()
        return True

    # -- eviction ------------------------------------------------------------------------

    def _make_room(self, ctx: Optional[OpContext] = None):
        while len(self.frames) + self._reserved >= self.capacity:
            victim = self._pick_victim()
            if victim is None:
                yield from self._wait_for_unpin()
                continue
            if victim.dirty:
                if not self.foreground_flush and self.background_writers_active:
                    # Shore-MT style: wait for the db-writers to clean a
                    # frame; bounded by a timeout fallback.
                    self.clean_waits += 1
                    cleaned = self.sim.event()
                    self._clean_waiters.append(cleaned)
                    deadline = self.sim.timeout(self.clean_wait_timeout_us)
                    fired = yield self.sim.any_of([cleaned, deadline])
                    if cleaned in fired:
                        continue  # a frame went clean: re-pick
                    try:
                        self._clean_waiters.remove(cleaned)
                    except ValueError:
                        pass
                # Foreground write-back: the stall db-writers should prevent.
                self.dirty_eviction_stalls += 1
                self._tm_stalls.inc()
                yield from self._flush_frame(victim, ctx)
                continue  # re-pick: state may have changed while flushing
            victim.evicting = True
            del self.frames[victim.page_id]
            self.evictions += 1
            self._tm_evictions.inc()

    def _pick_victim(self) -> Optional[Frame]:
        """Oldest unpinned frame (LRU order), dirty or clean."""
        for frame in self.frames.values():
            if frame.pin_count == 0 and not frame.evicting \
                    and frame.flush_event is None:
                return frame
        return None

    def _wait_for_unpin(self):
        event = self.sim.event()
        self._unpin_waiters.append(event)
        yield event

    # -- introspection ---------------------------------------------------------------------

    @property
    def dirty_count(self) -> int:
        return self._dirty_total

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": len(self.frames),
            "dirty": self.dirty_count,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hits / (self.hits + self.misses)
            if (self.hits + self.misses) else 0.0,
            "evictions": self.evictions,
            "dirty_eviction_stalls": self.dirty_eviction_stalls,
            "flushes": self.flushes,
        }
