"""Storage adapters: one page-granular interface over every backend.

The mini-DBMS reads and writes *database pages*; an adapter maps them to
the underlying device:

* :class:`NoFTLStorageAdapter` — Figure 1.c: database page number == LPN,
  temperature hints and deallocation (trim) flow straight into the NoFTL
  storage manager, and the adapter exposes the region topology so the
  buffer manager can bind db-writers to regions;
* :class:`BlockDeviceAdapter` — Figure 1.a/b: the black-box SSD.  Hints
  are dropped and trims are swallowed (the legacy write path of the
  paper's era carries neither), and there is exactly one "region";
* :class:`RAMStorageAdapter` — an in-memory volume used to record
  I/O traces from a live run (the paper's Figure 3 methodology: "traces
  were recorded on in-memory database running the benchmarks").

All I/O entry points are DES generators.
"""

from __future__ import annotations

from typing import Dict

from ..core.storage import NoFTLStorage
from ..device.blockdev import BlockDevice
from ..sim import Simulator

__all__ = [
    "StorageAdapter",
    "NoFTLStorageAdapter",
    "BlockDeviceAdapter",
    "RAMStorageAdapter",
]


class StorageAdapter:
    """Interface: page-granular storage with optional flash awareness.

    ``ctx`` on the I/O methods is an optional
    :class:`~repro.telemetry.OpContext` naming the root cause of the
    operation (transaction, db-writer, recovery, ...); adapters whose
    backend understands causal attribution pass it down, the others
    ignore it.
    """

    logical_pages: int
    num_regions: int = 1
    #: The backend's :class:`~repro.telemetry.MetricsRegistry`, when it
    #: has one — lets the DBMS layer share a single registry with the
    #: flash stack below it instead of keeping disjoint counters.
    telemetry = None

    def read(self, page_id: int, ctx=None):  # pragma: no cover - interface
        raise NotImplementedError

    def write(self, page_id: int, data, hint: str = "hot",
              ctx=None):  # pragma: no cover - interface
        raise NotImplementedError

    def trim(self, page_id: int, ctx=None):  # pragma: no cover - interface
        raise NotImplementedError

    def flush_barrier(self, ctx=None):
        """Generator: durability barrier.

        When this generator completes, every write acknowledged *before*
        it was called is durable across a power cut.  Plain adapters ack
        only after media program, so the default barrier is a no-op that
        schedules no events (digest-neutral); a write-back front end
        (:class:`~repro.device.frontend.DeviceFrontend`) overrides it to
        destage its volatile cache.
        """
        return
        yield  # pragma: no cover - generator form

    def region_of_page(self, page_id: int) -> int:
        return 0

    @property
    def maintenance_active(self) -> bool:
        """True while the backend is running GC/wear-leveling *right now*.

        Sampled (not awaited) by schedulers that want to classify queue
        time or throttle background traffic while maintenance holds the
        media.  Backends without the signal report False.
        """
        return False


class NoFTLStorageAdapter(StorageAdapter):
    """Native flash through the NoFTL storage manager (full integration)."""

    def __init__(self, storage: NoFTLStorage):
        self.storage = storage
        self.logical_pages = storage.logical_pages
        self.num_regions = storage.manager.num_regions
        self.telemetry = storage.telemetry

    def read(self, page_id: int, ctx=None):
        data = yield from self.storage.read(page_id, ctx=ctx)
        return data

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        yield from self.storage.write(page_id, data, hint, ctx=ctx)

    def trim(self, page_id: int, ctx=None):
        yield from self.storage.trim(page_id, ctx=ctx)

    def region_of_page(self, page_id: int) -> int:
        return self.storage.region_of_lpn(page_id)

    @property
    def maintenance_active(self) -> bool:
        return self.storage.manager.maintenance_active


class BlockDeviceAdapter(StorageAdapter):
    """Legacy block device: no hints, no deallocation, one opaque region."""

    def __init__(self, device: BlockDevice):
        self.device = device
        self.logical_pages = device.logical_pages
        self.num_regions = 1
        self.telemetry = getattr(device.ftl, "telemetry", None)

    def read(self, page_id: int, ctx=None):
        data = yield from self.device.read(page_id, ctx=ctx)
        return data

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        # The block interface has no temperature channel: hint dropped.
        yield from self.device.write(page_id, data, ctx=ctx)

    def trim(self, page_id: int, ctx=None):
        # The legacy write path of the paper's era carries no TRIM either;
        # the FTL keeps treating the page as live.  Intentional no-op.
        return
        yield  # pragma: no cover - generator form

    @property
    def maintenance_active(self) -> bool:
        return bool(getattr(self.device.ftl, "maintenance_active", False))


class RAMStorageAdapter(StorageAdapter):
    """In-memory volume with a token fixed latency (trace-recording runs)."""

    def __init__(self, sim: Simulator, logical_pages: int,
                 latency_us: float = 1.0, num_regions: int = 1):
        self.sim = sim
        self.logical_pages = logical_pages
        self.latency_us = latency_us
        self.num_regions = num_regions
        self._pages: Dict[int, object] = {}

    def read(self, page_id: int, ctx=None):
        self._check(page_id)
        yield self.sim.timeout(self.latency_us)
        return self._pages.get(page_id)

    def write(self, page_id: int, data, hint: str = "hot", ctx=None):
        self._check(page_id)
        yield self.sim.timeout(self.latency_us)
        self._pages[page_id] = data

    def trim(self, page_id: int, ctx=None):
        self._check(page_id)
        yield self.sim.timeout(0)
        self._pages.pop(page_id, None)

    def region_of_page(self, page_id: int) -> int:
        return page_id % self.num_regions

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self.logical_pages:
            raise ValueError(f"page {page_id} out of range")
