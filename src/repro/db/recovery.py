"""Crash recovery: ARIES-shaped redo/undo from the write-ahead log.

The engine uses a STEAL / NO-FORCE buffer policy (dirty uncommitted
pages may reach flash; committed pages need not have), so recovery does
both passes:

1. **analysis** — scan the durable log prefix (records with LSN ≤ the
   flushed LSN survive a crash) for the committed transaction set;
2. **redo** — replay heap after-images in LSN order onto the recovered
   pages, guarded by each page's LSN so already-persisted changes are
   not reapplied; pages that never reached flash are recreated;
3. **undo** — walk losers' records backwards applying before-images.

Index changes are redone *logically* (insert-if-absent /
delete-if-present) on top of the physically recovered node pages —
idempotent, so it composes with whatever node state reached flash.

On NoFTL storage, run :meth:`repro.core.NoFTLStorageManager.recover`
(the OOB mapping scan) first so the flash itself is readable, then this
pass to restore transactional consistency — together they are the full
crash story of a NoFTL database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .page import SlottedPage
from .wal import WALRecord

__all__ = ["ColdStart", "RecoveryReport", "cold_start", "recover_database"]


class RecoveryReport:
    """What a recovery pass did."""

    def __init__(self):
        self.durable_lsn = 0
        self.committed_txns: Set[int] = set()
        self.loser_txns: Set[int] = set()
        self.redo_applied = 0
        self.redo_skipped = 0
        self.undo_applied = 0
        self.undo_skipped = 0
        self.pages_recreated = 0
        self.index_ops_replayed = 0

    def snapshot(self) -> dict:
        return {
            "durable_lsn": self.durable_lsn,
            "committed_txns": len(self.committed_txns),
            "loser_txns": len(self.loser_txns),
            "redo_applied": self.redo_applied,
            "redo_skipped": self.redo_skipped,
            "undo_applied": self.undo_applied,
            "undo_skipped": self.undo_skipped,
            "pages_recreated": self.pages_recreated,
            "index_ops_replayed": self.index_ops_replayed,
        }


_HEAP_KINDS = ("insert", "update", "delete")
_INDEX_KINDS = ("index-insert", "index-delete")


def recover_database(db, records: Iterable[WALRecord],
                     durable_lsn: int) -> "RecoveryReport":
    """Generator: bring ``db`` to a transaction-consistent state.

    ``db`` is a freshly constructed :class:`~repro.db.database.Database`
    over the surviving storage, with the same schema re-declared (heaps
    created, indexes created — their *catalog*, not their contents).
    ``records`` is the write-ahead log as saved by the pre-crash WAL
    (``keep_records=True``); ``durable_lsn`` is the pre-crash flushed
    LSN — everything after it was lost with the crash.

    Returns a :class:`RecoveryReport`.
    """
    report = RecoveryReport()
    report.durable_lsn = durable_lsn
    durable = [record for record in records if record.lsn <= durable_lsn]
    # Continue the old log's LSN sequence so recovered page LSNs compare
    # sanely with post-recovery appends.
    db.wal.fast_forward(durable_lsn)

    # -- analysis ---------------------------------------------------------
    seen_txns: Set[int] = set()
    for record in durable:
        seen_txns.add(record.txn_id)
        if record.kind == "commit":
            report.committed_txns.add(record.txn_id)
    report.loser_txns = seen_txns - report.committed_txns
    # Per-slot high-water mark of *committed* writes: a loser record may
    # only be undone if no committed record touched the slot after it.
    # Without this guard a transaction that aborted cleanly before the
    # crash (its rollback already restored the slot, its records still in
    # the durable log) would have its stale before-image clobber a later
    # committed value during the undo pass.  The key is the *physical*
    # ``(page, slot)`` — undo applies physical before-images, so a
    # committed write through a different heap (the page was released
    # and recycled in between) shields the slot all the same.
    committed_slot_lsn: Dict[Tuple[int, int], int] = {}
    for record in durable:
        if record.kind in _HEAP_KINDS \
                and record.txn_id in report.committed_txns:
            key = (record.payload[1], record.payload[2])
            if record.lsn > committed_slot_lsn.get(key, 0):
                committed_slot_lsn[key] = record.lsn

    # Final ownership of every page id the log mentions: the heap whose
    # record touched it *last*.  Page releases are not WAL-logged, so a
    # page id freed by one heap and re-grown by another appears in both
    # heaps' records — re-attaching it to both would let one heap's scan
    # read the other's rows.
    heap_of_page: Dict[int, str] = {}
    for record in durable:
        if record.kind in _HEAP_KINDS:
            heap_of_page[record.payload[1]] = record.payload[0]

    # -- redo (physical, heap pages) ---------------------------------------
    for record in durable:
        if record.kind not in _HEAP_KINDS:
            continue
        yield from _redo_heap(db, record, report, heap_of_page)

    # -- undo (losers, reverse order) ---------------------------------------
    for record in reversed(durable):
        if record.txn_id not in report.loser_txns:
            continue
        if record.kind in _HEAP_KINDS:
            key = (record.payload[1], record.payload[2])
            if committed_slot_lsn.get(key, -1) > record.lsn:
                report.undo_skipped += 1
                continue
            yield from _undo_heap(db, record, report)

    # -- index replay (logical, idempotent) ----------------------------------
    for record in durable:
        if record.kind not in _INDEX_KINDS:
            continue
        winner = record.txn_id in report.committed_txns
        yield from _replay_index(db, record, winner, report)

    yield from db.checkpoint()
    return report


def _fetch_or_recreate(db, page_id: int, report: RecoveryReport):
    """Generator: pin the page, materialising an empty one if it never
    reached storage before the crash."""
    try:
        frame = yield from db.buffer.fetch(page_id)
    except KeyError:
        page = SlottedPage(page_id, db.page_bytes)
        frame = yield from db.buffer.new_page(page_id, page)
        report.pages_recreated += 1
        if page_id >= db._next_page_id:
            db._next_page_id = page_id + 1
    return frame


def _redo_heap(db, record: WALRecord, report: RecoveryReport,
               heap_of_page: Dict[int, str]):
    heap_name, page_id, slot = record.payload[:3]
    heap = db.heaps.get(heap_name)
    if heap is None:
        return
    frame = yield from _fetch_or_recreate(db, page_id, report)
    try:
        if not isinstance(frame.page, SlottedPage):
            # The surviving incarnation of this page id is not a heap
            # page at all (released, then recycled as e.g. a B-tree
            # node).  Its LSN necessarily postdates every heap record —
            # the release only happens after the emptying deletes
            # committed — so the heap's history is superseded wholesale.
            report.redo_skipped += 1
            return
        # Re-attach the page to its heap even when the redo itself is
        # skipped: a page that was fully persisted before the crash
        # carries an LSN covering all its records, so without this a
        # recovered heap would never list it and scans would silently
        # miss committed rows.  Only the heap that touched the page
        # *last* gets it — see ``heap_of_page``.
        if heap_of_page.get(page_id) == heap_name \
                and page_id not in heap.page_ids:
            heap.page_ids.append(page_id)
        if frame.page.lsn >= record.lsn:
            report.redo_skipped += 1
            return
        if record.kind == "insert":
            frame.page.ensure_slot(slot, record.payload[3])
        elif record.kind == "update":
            frame.page.ensure_slot(slot, record.payload[3])
        else:  # delete
            frame.page.ensure_slot(slot, None)
        frame.page.lsn = record.lsn
        db.buffer.mark_dirty(page_id)
        report.redo_applied += 1
    finally:
        db.buffer.unpin(page_id)


def _undo_heap(db, record: WALRecord, report: RecoveryReport):
    heap_name, page_id, slot = record.payload[:3]
    if db.heaps.get(heap_name) is None:
        return
    frame = yield from _fetch_or_recreate(db, page_id, report)
    try:
        if not isinstance(frame.page, SlottedPage):
            # Recycled as a non-heap page after this record: nothing of
            # the loser's heap write survives to be undone.
            report.undo_skipped += 1
            return
        if record.kind == "insert":
            frame.page.ensure_slot(slot, None)
        elif record.kind == "update":
            frame.page.ensure_slot(slot, record.payload[4])  # before-image
        else:  # delete: restore the before-image
            frame.page.ensure_slot(slot, record.payload[3])
        db.buffer.mark_dirty(page_id)
        report.undo_applied += 1
    finally:
        db.buffer.unpin(page_id)


@dataclass
class ColdStart:
    """Everything :func:`cold_start` rebuilt, ready to serve traffic."""

    sim: object
    db: object
    manager: object
    storage: object
    mount: object       # repro.core.MountReport from the OOB scan
    recovery: RecoveryReport


def cold_start(array, geometry, records: Iterable[WALRecord],
               durable_lsn: int, rebuild_schema, *,
               config=None, buffer_capacity: int = 24,
               cpu_us_per_op: float = 0.0, telemetry=None, trace=None,
               db_kwargs: Optional[dict] = None) -> ColdStart:
    """Mount a database from nothing but the array and the durable WAL.

    This is the product crash path (promoted out of the test suite): the
    host is gone, so the *only* inputs are the surviving
    :class:`~repro.flash.FlashArray` (power-cycled if it died powered
    off), the device geometry/config (host configuration, not state), the
    saved WAL records with the durable LSN (the separate durable log
    device), and ``rebuild_schema(db)`` — a generator re-declaring the
    catalog (heaps/indexes created empty).  No pre-crash in-memory state
    is consulted, deliberately: the page allocator floor comes from the
    mount scan and the durable log, never from the dead process's RAM.

    Pipeline: power-cycle → OOB mount scan (checksum-verified, torn pages
    rejected, allocation + bad-block state rebuilt) → fresh Database over
    the mounted storage → allocator floor from scan + log → schema →
    ARIES redo/undo via :func:`recover_database` → free-list re-derived.
    """
    from ..core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
    from ..flash import SimExecutor, SimFlashDevice
    from ..ftl.base import UNMAPPED
    from ..sim import Simulator
    from .database import Database
    from .storage import NoFTLStorageAdapter

    if array.powered_off:
        array.power_cycle()
    sim = Simulator()
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(
        geometry, config or NoFTLConfig(),
        factory_bad_blocks=array.factory_bad_blocks(),
        telemetry=telemetry, trace=trace,
    )
    storage = NoFTLStorage(sim, manager, executor)
    mount_report = sim.run_process(storage.mount())

    db = Database(sim, NoFTLStorageAdapter(storage),
                  page_bytes=geometry.page_bytes,
                  buffer_capacity=buffer_capacity,
                  cpu_us_per_op=cpu_us_per_op,
                  wal_keep_records=True, **(db_kwargs or {}))
    durable = [r for r in records if r.lsn <= durable_lsn]
    wal_pages = {r.payload[1] for r in durable if r.kind in _HEAP_KINDS}
    floor = max([mount_report.max_lpn, *wal_pages], default=-1)
    db.reserve_pages_through(floor)

    def boot():
        yield from rebuild_schema(db)
        report = yield from recover_database(db, durable, durable_lsn)
        return report

    recovery_report = sim.run_process(boot())

    # Free-list re-derivation: ids below the floor that are neither
    # mapped on storage (post-recovery, so checkpointed undo/redo pages
    # count as live) nor referenced anywhere in the durable log.
    free: List[int] = []
    mapping = manager.mapping
    for page_id in range(db._next_page_id):
        if page_id not in wal_pages and mapping.l2p[page_id] == UNMAPPED:
            free.append(page_id)
    db.adopt_free_pages(free)

    return ColdStart(sim=sim, db=db, manager=manager, storage=storage,
                     mount=mount_report, recovery=recovery_report)


def _replay_index(db, record: WALRecord, winner: bool,
                  report: RecoveryReport):
    index_name, key, value = record.payload
    index = db.indexes.get(index_name)
    if index is None:
        return
    txn = db.begin()
    current = yield from index.lookup(txn, key)
    wants_present = (record.kind == "index-insert") == winner
    if wants_present and current is None:
        yield from index.insert(txn, key, value)
        report.index_ops_replayed += 1
    elif not wants_present and current is not None:
        yield from index.delete(txn, key)
        report.index_ops_replayed += 1
    yield from db.commit(txn)
