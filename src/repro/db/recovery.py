"""Crash recovery: ARIES-shaped redo/undo from the write-ahead log.

The engine uses a STEAL / NO-FORCE buffer policy (dirty uncommitted
pages may reach flash; committed pages need not have), so recovery does
both passes:

1. **analysis** — scan the durable log prefix (records with LSN ≤ the
   flushed LSN survive a crash) for the committed transaction set;
2. **redo** — replay heap after-images in LSN order onto the recovered
   pages, guarded by each page's LSN so already-persisted changes are
   not reapplied; pages that never reached flash are recreated;
3. **undo** — walk losers' records backwards applying before-images.

Index changes are redone *logically* (insert-if-absent /
delete-if-present) on top of the physically recovered node pages —
idempotent, so it composes with whatever node state reached flash.

On NoFTL storage, run :meth:`repro.core.NoFTLStorageManager.recover`
(the OOB mapping scan) first so the flash itself is readable, then this
pass to restore transactional consistency — together they are the full
crash story of a NoFTL database.
"""

from __future__ import annotations

from typing import Iterable, Set

from .page import SlottedPage
from .wal import WALRecord

__all__ = ["RecoveryReport", "recover_database"]


class RecoveryReport:
    """What a recovery pass did."""

    def __init__(self):
        self.durable_lsn = 0
        self.committed_txns: Set[int] = set()
        self.loser_txns: Set[int] = set()
        self.redo_applied = 0
        self.redo_skipped = 0
        self.undo_applied = 0
        self.pages_recreated = 0
        self.index_ops_replayed = 0

    def snapshot(self) -> dict:
        return {
            "durable_lsn": self.durable_lsn,
            "committed_txns": len(self.committed_txns),
            "loser_txns": len(self.loser_txns),
            "redo_applied": self.redo_applied,
            "redo_skipped": self.redo_skipped,
            "undo_applied": self.undo_applied,
            "pages_recreated": self.pages_recreated,
            "index_ops_replayed": self.index_ops_replayed,
        }


_HEAP_KINDS = ("insert", "update", "delete")
_INDEX_KINDS = ("index-insert", "index-delete")


def recover_database(db, records: Iterable[WALRecord],
                     durable_lsn: int) -> "RecoveryReport":
    """Generator: bring ``db`` to a transaction-consistent state.

    ``db`` is a freshly constructed :class:`~repro.db.database.Database`
    over the surviving storage, with the same schema re-declared (heaps
    created, indexes created — their *catalog*, not their contents).
    ``records`` is the write-ahead log as saved by the pre-crash WAL
    (``keep_records=True``); ``durable_lsn`` is the pre-crash flushed
    LSN — everything after it was lost with the crash.

    Returns a :class:`RecoveryReport`.
    """
    report = RecoveryReport()
    report.durable_lsn = durable_lsn
    durable = [record for record in records if record.lsn <= durable_lsn]
    # Continue the old log's LSN sequence so recovered page LSNs compare
    # sanely with post-recovery appends.
    db.wal.fast_forward(durable_lsn)

    # -- analysis ---------------------------------------------------------
    seen_txns: Set[int] = set()
    for record in durable:
        seen_txns.add(record.txn_id)
        if record.kind == "commit":
            report.committed_txns.add(record.txn_id)
    report.loser_txns = seen_txns - report.committed_txns

    # -- redo (physical, heap pages) ---------------------------------------
    for record in durable:
        if record.kind not in _HEAP_KINDS:
            continue
        yield from _redo_heap(db, record, report)

    # -- undo (losers, reverse order) ---------------------------------------
    for record in reversed(durable):
        if record.txn_id not in report.loser_txns:
            continue
        if record.kind in _HEAP_KINDS:
            yield from _undo_heap(db, record, report)

    # -- index replay (logical, idempotent) ----------------------------------
    for record in durable:
        if record.kind not in _INDEX_KINDS:
            continue
        winner = record.txn_id in report.committed_txns
        yield from _replay_index(db, record, winner, report)

    yield from db.checkpoint()
    return report


def _fetch_or_recreate(db, page_id: int, report: RecoveryReport):
    """Generator: pin the page, materialising an empty one if it never
    reached storage before the crash."""
    try:
        frame = yield from db.buffer.fetch(page_id)
    except KeyError:
        page = SlottedPage(page_id, db.page_bytes)
        frame = yield from db.buffer.new_page(page_id, page)
        report.pages_recreated += 1
        if page_id >= db._next_page_id:
            db._next_page_id = page_id + 1
    return frame


def _redo_heap(db, record: WALRecord, report: RecoveryReport):
    heap_name, page_id, slot = record.payload[:3]
    heap = db.heaps.get(heap_name)
    if heap is None:
        return
    frame = yield from _fetch_or_recreate(db, page_id, report)
    try:
        if frame.page.lsn >= record.lsn:
            report.redo_skipped += 1
            return
        if record.kind == "insert":
            frame.page.ensure_slot(slot, record.payload[3])
        elif record.kind == "update":
            frame.page.ensure_slot(slot, record.payload[3])
        else:  # delete
            frame.page.ensure_slot(slot, None)
        frame.page.lsn = record.lsn
        db.buffer.mark_dirty(page_id)
        report.redo_applied += 1
        if page_id not in heap.page_ids:
            heap.page_ids.append(page_id)
    finally:
        db.buffer.unpin(page_id)


def _undo_heap(db, record: WALRecord, report: RecoveryReport):
    heap_name, page_id, slot = record.payload[:3]
    if db.heaps.get(heap_name) is None:
        return
    frame = yield from _fetch_or_recreate(db, page_id, report)
    try:
        if record.kind == "insert":
            frame.page.ensure_slot(slot, None)
        elif record.kind == "update":
            frame.page.ensure_slot(slot, record.payload[4])  # before-image
        else:  # delete: restore the before-image
            frame.page.ensure_slot(slot, record.payload[3])
        db.buffer.mark_dirty(page_id)
        report.undo_applied += 1
    finally:
        db.buffer.unpin(page_id)


def _replay_index(db, record: WALRecord, winner: bool,
                  report: RecoveryReport):
    index_name, key, value = record.payload
    index = db.indexes.get(index_name)
    if index is None:
        return
    txn = db.begin()
    current = yield from index.lookup(txn, key)
    wants_present = (record.kind == "index-insert") == winner
    if wants_present and current is None:
        yield from index.insert(txn, key, value)
        report.index_ops_replayed += 1
    elif not wants_present and current is not None:
        yield from index.delete(txn, key)
        report.index_ops_replayed += 1
    yield from db.commit(txn)
