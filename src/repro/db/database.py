"""The Database facade: a Shore-MT-shaped storage engine.

Wires together the storage adapter (NoFTL native flash or a black-box
block device), buffer pool, write-ahead log, lock manager, transaction
manager, heaps, B+-tree indexes, the page allocator / free-space manager
(whose deallocations reach flash as trims) and the background db-writer
pool.  Everything runs inside one :class:`~repro.sim.Simulator`.

A thin CPU cost model (``cpu_us_per_op`` per record operation) makes
transactions spend host time as well as I/O time, so throughput responds
to both — as on the paper's testbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Simulator
from ..telemetry import EventTrace, MetricsRegistry
from .btree import BTreeIndex
from .buffer import BufferPool
from .flusher import DbWriterPool
from .heap import HeapFile
from .locks import LockManager
from .storage import StorageAdapter
from .txn import Transaction, TransactionManager
from .wal import WALog

__all__ = ["Database"]


class Database:
    """One database instance over one storage volume."""

    def __init__(
        self,
        sim: Simulator,
        storage: StorageAdapter,
        page_bytes: int,
        buffer_capacity: int,
        cpu_us_per_op: float = 5.0,
        lock_timeout_us: float = 200_000.0,
        wal_flush_latency_us: float = 150.0,
        foreground_flush: bool = True,
        dirty_throttle_fraction=None,
        wal_keep_records: bool = False,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
        heat_hints: bool = False,
    ):
        if cpu_us_per_op < 0:
            raise ValueError("cpu_us_per_op must be >= 0")
        self.sim = sim
        self.storage = storage
        self.page_bytes = page_bytes
        self.cpu_us_per_op = cpu_us_per_op
        # One registry for the whole stack: prefer the storage backend's
        # (so DBMS counters land next to flash/FTL ones), else make one.
        self.telemetry = (
            telemetry
            or getattr(storage, "telemetry", None)
            or MetricsRegistry()
        )
        self.telemetry.set_clock(lambda: sim.now)
        self.trace = (
            trace if trace is not None else EventTrace(clock=self.telemetry.now)
        )
        self._tm_commit_us = self.telemetry.histogram(
            "db.txn_commit_us", layer="db")
        self.wal = WALog(sim, flush_latency_us=wal_flush_latency_us,
                         keep_records=wal_keep_records)
        self.buffer = BufferPool(
            sim, storage, self.wal, buffer_capacity,
            foreground_flush=foreground_flush,
            dirty_throttle_fraction=dirty_throttle_fraction,
            telemetry=self.telemetry,
            trace=self.trace,
            heat_hints=heat_hints,
        )
        self.locks = LockManager(sim, timeout_us=lock_timeout_us)
        self.txn_manager = TransactionManager(sim, self.wal, self.locks,
                                              trace=self.trace)
        self.heaps: Dict[str, HeapFile] = {}
        self.indexes: Dict[str, BTreeIndex] = {}
        self.writers: Optional[DbWriterPool] = None
        # page allocator / free-space manager
        self._next_page_id = 0
        self._free_page_ids: List[int] = []
        self.pages_allocated = 0
        self.pages_released = 0

    # -- schema ------------------------------------------------------------------

    def create_heap(self, name: str, hint: str = "hot") -> HeapFile:
        if name in self.heaps:
            raise ValueError(f"heap {name!r} already exists")
        heap = HeapFile(self, name, hint)
        self.heaps[name] = heap
        return heap

    def create_index(self, name: str, hint: str = "hot"):
        """Generator: indexes allocate their root page, so creation runs
        inside a DES process."""
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        index = BTreeIndex(self, name, hint)
        yield from index.bootstrap()
        self.indexes[name] = index
        return index

    # -- db-writers -----------------------------------------------------------------

    def start_writers(self, num_writers: int, policy: str = "global") -> DbWriterPool:
        """Start the background flusher pool (global or region-bound)."""
        if self.writers is not None:
            raise RuntimeError("db-writers already running")
        self.writers = DbWriterPool(self.sim, self.buffer, self.storage,
                                    num_writers, policy,
                                    telemetry=self.telemetry,
                                    trace=self.trace)
        return self.writers

    # -- transactions ------------------------------------------------------------------

    def begin(self) -> Transaction:
        return self.txn_manager.begin()

    def commit(self, txn: Transaction):
        start = self.sim.now
        yield from self.txn_manager.commit(txn)
        self._tm_commit_us.observe(self.sim.now - start)

    def abort(self, txn: Transaction):
        yield from self.txn_manager.abort(txn)

    # -- page allocation / free-space manager ---------------------------------------------

    def allocate_page(self) -> int:
        if self._free_page_ids:
            page_id = self._free_page_ids.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        if page_id >= self.storage.logical_pages:
            raise RuntimeError("database volume is full")
        self.pages_allocated += 1
        return page_id

    def reserve_pages_through(self, page_id: int) -> None:
        """Bump the allocator past ``page_id`` — used by crash recovery so
        fresh allocations (e.g. rebuilt index roots) never collide with
        page ids that survive on storage."""
        self._next_page_id = max(self._next_page_id, page_id + 1)

    def adopt_free_pages(self, page_ids) -> None:
        """Re-seed the free list after a cold-start mount.

        The free list is host-RAM state a crash destroys; the mount path
        re-derives it — page ids below the allocator floor that are
        neither mapped on storage nor referenced by the durable WAL — and
        hands it back here, so a recovered database does not leak the
        address space its predecessor had released."""
        for page_id in page_ids:
            if page_id < self._next_page_id \
                    and page_id not in self._free_page_ids:
                self._free_page_ids.append(page_id)

    def release_page(self, page_id: int):
        """Generator: return a page to the allocator and *tell the flash*
        (the trim that black-box storage never receives).

        Purges the buffer first — including waiting out any in-flight
        load by a stale reader — so a recycled page id can never meet a
        ghost frame of its previous life.
        """
        yield from self.buffer.purge_page(page_id)
        self.pages_released += 1
        yield from self.storage.trim(page_id)
        # Recycle only after the trim: a reader racing us sees either the
        # old page or a clean miss, never a half-dead id.
        self._free_page_ids.append(page_id)

    # -- misc -----------------------------------------------------------------------------

    def cpu(self, ops: int = 1):
        """``yield from`` target: charge host CPU time for ``ops`` record
        operations.  A 1-tuple delegates exactly like a generator that
        yields the timeout once, minus the generator frame."""
        if self.cpu_us_per_op:
            return (self.sim.timeout(self.cpu_us_per_op * ops),)
        return ()

    def checkpoint(self):
        """Generator: flush every dirty page (used at benchmark barriers)."""
        yield from self.buffer.flush_all()

    def snapshot(self) -> dict:
        return {
            "buffer": self.buffer.snapshot(),
            "wal": self.wal.snapshot(),
            "locks": self.locks.snapshot(),
            "commits": self.txn_manager.commits,
            "aborts": self.txn_manager.aborts,
            "pages_allocated": self.pages_allocated,
            "pages_released": self.pages_released,
            "writers": self.writers.snapshot() if self.writers else None,
        }
