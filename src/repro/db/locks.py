"""Two-phase-locking lock manager with wait timeouts.

Record-grain shared/exclusive locks keyed by arbitrary hashables
(``(table, rid)`` by convention).  Deadlocks resolve by timeout: a waiter
that exceeds its budget aborts its transaction (:class:`TxnAborted`),
which the workload drivers retry — the behaviour Shore-MT-style engines
exhibit under lock thrashing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Tuple

from ..sim import AnyOf, Granted, Simulator

__all__ = ["LockMode", "TxnAborted", "LockManager"]

# Shared pre-completed target for every immediate-grant path: callers do
# ``yield from acquire(...)`` either way, but the uncontended case costs
# no generator frame and never suspends.
_DONE = Granted(None)


class LockMode:
    SHARED = "S"
    EXCLUSIVE = "X"


class TxnAborted(Exception):
    """The transaction must roll back (lock timeout / explicit abort)."""


class _LockRecord:
    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: Dict[int, str] = {}   # txn_id -> mode
        self.queue: Deque[Tuple] = deque()  # (event, txn_id, mode)


class LockManager:
    """S/X locks, FIFO granting, timeout-based deadlock resolution."""

    def __init__(self, sim: Simulator, timeout_us: float = 200_000.0):
        if timeout_us <= 0:
            raise ValueError("timeout_us must be positive")
        self.sim = sim
        self.timeout_us = timeout_us
        self._locks: Dict[object, _LockRecord] = {}
        self._held: Dict[int, Set[object]] = {}
        self.total_acquisitions = 0
        self.total_waits = 0
        self.total_timeouts = 0

    # -- acquisition ---------------------------------------------------------------

    def acquire(self, txn_id: int, key, mode: str):
        """``yield from`` target: blocks until granted; raises TxnAborted
        on timeout.  Immediate grants complete without suspending."""
        if mode not in (LockMode.SHARED, LockMode.EXCLUSIVE):
            raise ValueError(f"bad lock mode {mode!r}")
        self.total_acquisitions += 1
        # get-then-create instead of setdefault(key, _LockRecord()): the
        # setdefault form constructs a throwaway record (deque + dict) on
        # every acquire, and most acquires hit an existing key.
        record = self._locks.get(key)
        if record is None:
            record = self._locks[key] = _LockRecord()
        held = record.holders.get(txn_id)
        if held is not None:
            if held == LockMode.EXCLUSIVE or mode == LockMode.SHARED:
                return _DONE  # already strong enough
            if len(record.holders) == 1:
                record.holders[txn_id] = LockMode.EXCLUSIVE  # upgrade
                return _DONE
            # Upgrade with other readers present: queue like a fresh X.
        if self._grantable(record, txn_id, mode):
            record.holders[txn_id] = mode
            self._held.setdefault(txn_id, set()).add(key)
            return _DONE
        return self._acquire_wait(record, txn_id, key, mode)

    def _acquire_wait(self, record: _LockRecord, txn_id: int, key, mode: str):
        """Generator: the contended path of :meth:`acquire`."""
        self.total_waits += 1
        event = self.sim.event()
        entry = (event, txn_id, mode)
        record.queue.append(entry)
        deadline = self.sim.timeout(self.timeout_us)
        fired = yield AnyOf(self.sim, [event, deadline])
        if event not in fired:
            try:
                record.queue.remove(entry)
            except ValueError:
                pass
            else:
                self.total_timeouts += 1
                raise TxnAborted(f"lock timeout on {key!r}")
            # Removed already -> the grant raced the timeout: we hold it.
        self._held.setdefault(txn_id, set()).add(key)

    def _grantable(self, record: _LockRecord, txn_id: int, mode: str) -> bool:
        if record.queue:
            return False  # FIFO fairness: no barging
        holders = record.holders
        if not holders:
            return True
        if mode == LockMode.SHARED:
            return all(held_mode == LockMode.SHARED
                       for tid, held_mode in holders.items() if tid != txn_id)
        return all(tid == txn_id for tid in holders)

    # -- release ---------------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """End of transaction: drop every lock and wake compatible waiters.

        Keys are released in sorted order so wake-up order (and therefore
        the whole simulation) is independent of PYTHONHASHSEED.
        """
        for key in sorted(self._held.pop(txn_id, set()), key=repr):
            record = self._locks.get(key)
            if record is None:
                continue
            record.holders.pop(txn_id, None)
            self._wake(record)
            if not record.holders and not record.queue:
                del self._locks[key]

    def _wake(self, record: _LockRecord) -> None:
        while record.queue:
            event, txn_id, mode = record.queue[0]
            others = {tid for tid in record.holders if tid != txn_id}
            if mode == LockMode.EXCLUSIVE:
                if others:
                    break  # an upgrade waits like a fresh X request
                record.queue.popleft()
                record.holders[txn_id] = LockMode.EXCLUSIVE
                event.succeed()
                break
            if any(record.holders[tid] == LockMode.EXCLUSIVE
                   for tid in others):
                break
            record.queue.popleft()
            record.holders[txn_id] = LockMode.SHARED
            event.succeed()
            # keep draining contiguous readers

    # -- introspection ------------------------------------------------------------------

    def held_by(self, txn_id: int) -> Set[object]:
        return set(self._held.get(txn_id, set()))

    def snapshot(self) -> dict:
        return {
            "acquisitions": self.total_acquisitions,
            "waits": self.total_waits,
            "timeouts": self.total_timeouts,
            "active_keys": len(self._locks),
        }
