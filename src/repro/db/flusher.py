"""Background db-writers: global vs flash-aware (die-wise) assignment.

Section 3.2 of the paper, verbatim: *"Instead of having multiple
db-writers, where each is responsible for a subset of dirty pages from
the whole address space, we have assigned each db-writer to a certain
physical region (i.e., set of NAND chips) ... each db-writer receives a
distinct subset of dirty pages that belongs to a corresponding physical
address space, and does not compete for physical storage with db-writers
assigned to other regions."*

Writers clean from the cold (LRU) end of the buffer pool — the frames
eviction will want next — which is how Shore-MT-style page cleaners
behave: hot pages keep coalescing updates in the pool instead of being
rewritten to flash on every change.  Two assignment policies:

* ``"global"`` — each writer owns a contiguous slice of the *logical*
  address space ("a subset of dirty pages from the whole address
  space").  Because the storage manager stripes logical pages across
  dies, every writer's slice spans *every* die, so concurrent writers
  constantly meet on the same chips and region locks (Figure 4's lower
  curve);
* ``"region"`` — writer *i* only cleans pages whose *physical* region
  is assigned to it; writers never compete for flash chips.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.badblock import DegradedModeError
from ..sim import Interrupt, Simulator
from ..telemetry import EventTrace, MetricsRegistry, OpContext

__all__ = ["DbWriterPool"]

_POLICIES = ("global", "region")


class DbWriterPool:
    """A set of background page-cleaner processes over one buffer pool."""

    def __init__(
        self,
        sim: Simulator,
        buffer_pool,
        storage,
        num_writers: int,
        policy: str = "global",
        batch_size: int = 4,
        idle_poll_us: float = 500.0,
        barrier_rounds: int = 0,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if num_writers < 1:
            raise ValueError("num_writers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sim = sim
        self.buffer_pool = buffer_pool
        self.storage = storage
        self.num_writers = num_writers
        self.policy = policy
        self.batch_size = batch_size
        self.idle_poll_us = idle_poll_us
        #: Every N cleaning rounds a writer issues the storage adapter's
        #: durability barrier, bounding how long cleaned pages may sit in
        #: a volatile device cache.  0 (default) never barriers — correct
        #: for write-through adapters and digest-identical for legacy
        #: rigs; recovery correctness never depends on it (the WAL rule
        #: holds regardless), it only bounds redo work after a crash.
        self.barrier_rounds = barrier_rounds
        self.pages_flushed: List[int] = [0] * num_writers
        #: Pages a writer could not clean because the device refused the
        #: write (degraded / shed) — reported, not silently retried-forever.
        self.pages_refused: List[int] = [0] * num_writers
        self.telemetry = telemetry or getattr(
            buffer_pool, "telemetry", None) or MetricsRegistry()
        self.trace = (
            trace if trace is not None else EventTrace(clock=self.telemetry.now)
        )
        # Per-(writer, region) flush counters: the die-affinity picture —
        # under the region policy each writer's column collapses onto its
        # own regions; under the global policy every writer hits them all.
        self._tm_pages = self.telemetry.counter_vec(
            "db.flusher.pages", ("writer", "region"), layer="db")
        self._tm_round_us = self.telemetry.histogram(
            "db.flusher.round_us", layer="db", policy=policy)
        self.telemetry.register_collector("db.flusher", self.snapshot)
        self._stopping = False
        buffer_pool.background_writers_active = True
        self._processes = [
            sim.process(self._writer_loop(index))
            for index in range(num_writers)
        ]

    # -- assignment -----------------------------------------------------------------

    def writer_of_region(self, region: int) -> int:
        """Which writer owns a region under the region policy."""
        return region % self.num_writers

    def _owns(self, index: int, page_id: int) -> bool:
        if self.policy == "global":
            # Shared responsibility for the whole pool: work-conserving,
            # but writers inevitably meet on the same dies/region locks.
            return True
        region = self.storage.region_of_page(page_id)
        return self.writer_of_region(region) == index

    # -- the writer process ------------------------------------------------------------

    def _candidates(self, index: int) -> List[int]:
        """Dirty, unpinned, unclaimed frames in LRU (eviction) order."""
        remaining = self.buffer_pool.dirty_count
        if not remaining:
            return []  # idle poll on a clean pool: skip the frame scan
        picked = []
        batch_size = self.batch_size
        # Hoisted ownership test: under the global policy every page
        # matches, so the per-frame _owns call (policy string compare +
        # region lookup) is dropped from the scan entirely.
        global_policy = self.policy == "global"
        if not global_policy:
            region_of_page = self.storage.region_of_page
            num_writers = self.num_writers
        for page_id, frame in self.buffer_pool.frames.items():
            if frame.dirty:
                if frame.pin_count == 0 and frame.flush_event is None \
                        and (global_policy
                             or region_of_page(page_id) % num_writers
                             == index):
                    picked.append(page_id)
                    if len(picked) >= batch_size:
                        break
                remaining -= 1
                if not remaining:
                    break  # every dirty frame has been considered
        return picked

    def _flushed_counter(self, index: int, region: int):
        return self._tm_pages.labels(index, region)

    def _writer_loop(self, index: int):
        rounds = 0
        while not self._stopping:
            batch = self._candidates(index)
            if not batch:
                try:
                    yield self.sim.timeout(self.idle_poll_us)
                except Interrupt:
                    return
                continue
            with self.trace.span("flusher.round", histogram=self._tm_round_us,
                                 writer=index, batch=len(batch)) as span:
                cleaned = 0
                for page_id in batch:
                    frame = self.buffer_pool.frames.get(page_id)
                    if (frame is None or not frame.dirty
                            or frame.flush_event is not None):
                        continue  # claimed by a peer since the scan: skip
                    ctx = OpContext("db-writer", writer_id=index)
                    try:
                        flushed = yield from self.buffer_pool.flush_page(
                            page_id, ctx=ctx
                        )
                    except DegradedModeError:
                        # Device refused the write (degraded spare
                        # capacity, or a front-end shed under overload).
                        # The page stays dirty in the pool; count it and
                        # keep cleaning — a dead writer would silently
                        # stall the whole pool.
                        self.pages_refused[index] += 1
                        continue
                    if flushed:
                        self.pages_flushed[index] += 1
                        region = self.storage.region_of_page(page_id)
                        self._flushed_counter(index, region).inc()
                        cleaned += 1
                span.note(cleaned=cleaned)
            rounds += 1
            if (self.barrier_rounds and cleaned
                    and rounds % self.barrier_rounds == 0):
                barrier = getattr(self.storage, "flush_barrier", None)
                if barrier is not None:
                    try:
                        yield from barrier(
                            ctx=OpContext("db-writer", writer_id=index)
                        )
                    except DegradedModeError:
                        self.pages_refused[index] += 1

    def stop(self) -> None:
        """Terminate all writers.  Idle writers exit immediately; a writer
        mid-flush is interrupted at its current wait (the buffer pool's
        flush bookkeeping unwinds cleanly via its ``finally`` blocks)."""
        self._stopping = True
        self.buffer_pool.background_writers_active = False
        for process in self._processes:
            if process.is_alive and process._waiting_on is not None:
                try:
                    process.interrupt("stop")
                except RuntimeError:
                    pass

    # -- introspection --------------------------------------------------------------------

    def backlog(self) -> int:
        """Dirty unpinned pages currently eligible for cleaning."""
        return sum(
            1 for frame in self.buffer_pool.frames.values()
            if frame.dirty and frame.pin_count == 0
        )

    def snapshot(self) -> dict:
        out = {
            "policy": self.policy,
            "num_writers": self.num_writers,
            "pages_flushed": list(self.pages_flushed),
            "backlog": self.backlog(),
        }
        # Only surfaced when it happened: keeps the snapshot shape — and
        # therefore legacy rigs' golden metrics digests — bit-identical.
        if any(self.pages_refused):
            out["pages_refused"] = list(self.pages_refused)
        return out
