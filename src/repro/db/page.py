"""Database pages: slotted record pages and B+-tree node pages.

Pages serialise to real bytes before they hit the (simulated) flash, so
the whole stack — buffer pool, storage manager, FTL/NoFTL, NAND array —
round-trips actual content.  That is what lets the integration tests
assert transactional durability *through* garbage collection, copybacks
and recovery scans, not just count I/Os.

Format (little-endian):

* common header: magic ``u16``, page_type ``u8``, pad, page_id ``u32``,
  lsn ``u64``;
* slotted page: nslots ``u16``, free_ptr ``u16``, then the slot directory
  (offset ``u16``, length ``u16`` per slot; offset 0xFFFF = tombstone)
  growing from the front and record payloads growing from the back, as in
  every real slotted-page implementation;
* B+-tree node: leaf flag, key/value arrays of ``u64``.
"""

from __future__ import annotations

import struct
from typing import List, Optional

__all__ = [
    "PAGE_MAGIC",
    "PageFormatError",
    "SlottedPage",
    "BTreeNodePage",
    "decode_page",
]

PAGE_MAGIC = 0xDB17
_TYPE_SLOTTED = 1
_TYPE_BTREE = 2
_COMMON = struct.Struct("<HBxIQ")          # magic, type, page_id, lsn
_SLOTTED_SUB = struct.Struct("<HH")        # nslots, free_ptr
_SLOT = struct.Struct("<HH")               # offset, length
_TOMBSTONE = 0xFFFF
_TOMB_SLOT = _SLOT.pack(_TOMBSTONE, 0)


class PageFormatError(Exception):
    """Raised when page bytes cannot be decoded."""


class SlottedPage:
    """A classic slotted record page.

    Records are opaque byte strings addressed by slot number; slots are
    stable across compaction (the directory never shrinks), which is what
    makes RIDs durable.
    """

    def __init__(self, page_id: int, page_bytes: int):
        min_size = _COMMON.size + _SLOTTED_SUB.size + _SLOT.size + 8
        if page_bytes < min_size:
            raise ValueError(f"page_bytes {page_bytes} too small")
        self.page_id = page_id
        self.page_bytes = page_bytes
        self.lsn = 0
        self._records: List[Optional[bytes]] = []
        # Live payload bytes, maintained incrementally by every mutator —
        # used_bytes()/free_space() run on each insert/update and on the
        # buffer pool's admission checks, so an O(records) recount here
        # dominated whole-rig profiles.
        self._payload_bytes = 0
        # Cached serialised image + per-slot payload offsets.  The common
        # page lifecycle is decode -> update a record in place -> flush;
        # keeping the byte image valid across same-length updates turns
        # to_bytes() into a header repack + one copy instead of a full
        # directory/payload rebuild.  Structural mutators (insert, delete,
        # ensure_slot, restore, length-changing update) drop the cache.
        self._image: Optional[bytearray] = None
        self._offsets: Optional[List[int]] = None

    # -- capacity accounting -------------------------------------------------

    @property
    def header_size(self) -> int:
        return _COMMON.size + _SLOTTED_SUB.size

    @property
    def slot_count(self) -> int:
        return len(self._records)

    @property
    def live_records(self) -> int:
        return sum(1 for record in self._records if record is not None)

    def used_bytes(self) -> int:
        return (_COMMON.size + _SLOTTED_SUB.size
                + _SLOT.size * len(self._records) + self._payload_bytes)

    def free_space(self) -> int:
        return self.page_bytes - self.used_bytes()

    def fits(self, record: bytes) -> bool:
        return self.free_space() >= len(record) + _SLOT.size

    # -- record operations -----------------------------------------------------

    def insert(self, record: bytes) -> Optional[int]:
        """Store a record; returns its slot, or None when it does not fit."""
        if not isinstance(record, (bytes, bytearray)):
            raise TypeError("records must be bytes")
        record = bytes(record)
        if len(record) >= _TOMBSTONE:
            raise ValueError("record too large for slot encoding")
        # reuse a tombstoned slot when possible (needs no directory growth)
        if self.free_space() >= len(record):
            for slot, existing in enumerate(self._records):
                if existing is None:
                    self._records[slot] = record
                    self._payload_bytes += len(record)
                    self._image = None
                    return slot
        if not self.fits(record):
            return None
        self._records.append(record)
        self._payload_bytes += len(record)
        self._image = None
        return len(self._records) - 1

    def get(self, slot: int) -> Optional[bytes]:
        """The record at ``slot`` (None if deleted)."""
        self._check_slot(slot)
        return self._records[slot]

    def update(self, slot: int, record: bytes) -> bool:
        """Replace the record at ``slot``; False when the page is too full."""
        self._check_slot(slot)
        old = self._records[slot]
        if old is None:
            raise KeyError(f"slot {slot} is deleted")
        record = bytes(record)
        growth = len(record) - len(old)
        if growth > self.free_space():
            return False
        self._records[slot] = record
        self._payload_bytes += growth
        image = self._image
        if image is not None:
            if growth == 0:
                # Same-length overwrite: the directory and every other
                # record keep their offsets — patch the payload in place.
                offset = self._offsets[slot]
                image[offset:offset + len(record)] = record
            else:
                self._image = None
        return True

    def delete(self, slot: int) -> None:
        self._check_slot(slot)
        if self._records[slot] is None:
            raise KeyError(f"slot {slot} already deleted")
        self._payload_bytes -= len(self._records[slot])
        self._records[slot] = None
        self._image = None

    def ensure_slot(self, slot: int, record) -> None:
        """Force ``slot`` to hold ``record`` (None = tombstone), growing
        the directory as needed — physical redo's page surgery."""
        if slot < 0:
            raise IndexError(f"slot {slot} out of range")
        while len(self._records) <= slot:
            self._records.append(None)
        old = self._records[slot]
        if old is not None:
            self._payload_bytes -= len(old)
        new = bytes(record) if record is not None else None
        self._records[slot] = new
        if new is not None:
            self._payload_bytes += len(new)
        self._image = None

    def restore(self, slot: int, record: bytes) -> None:
        """Put a record back into its original (tombstoned) slot — undo of
        a delete.  The slot must currently be empty."""
        self._check_slot(slot)
        if self._records[slot] is not None:
            raise KeyError(f"slot {slot} is occupied")
        record = bytes(record)
        if self.free_space() < len(record):
            raise ValueError("no room to restore record")
        self._records[slot] = record
        self._payload_bytes += len(record)
        self._image = None

    def iter_records(self):
        """(slot, record) pairs of live records."""
        for slot, record in enumerate(self._records):
            if record is not None:
                yield slot, record

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._records):
            raise IndexError(f"slot {slot} out of range")

    # -- serialisation ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        image = self._image
        if image is None:
            image = self._rebuild_image()
        # The lsn mutates between flushes without going through a record
        # mutator (the WAL stamps it as a plain attribute), so the common
        # header is repacked on every serialisation.
        _COMMON.pack_into(image, 0, PAGE_MAGIC, _TYPE_SLOTTED,
                          self.page_id, self.lsn)
        return bytes(image)

    def _rebuild_image(self) -> bytearray:
        """Recompute the canonical byte image and the slot offset table."""
        out = bytearray(self.page_bytes)
        _SLOTTED_SUB.pack_into(out, _COMMON.size, len(self._records), 0)
        directory = _COMMON.size + _SLOTTED_SUB.size
        payload_end = self.page_bytes
        # Build the slot directory and the payload area as two joined
        # bytes objects instead of a pack_into / slice-assign per slot:
        # serialisation runs on every flush/evict.
        slot_pack = _SLOT.pack
        entries = []
        parts = []
        offsets = []
        for record in self._records:
            if record is None:
                entries.append(_TOMB_SLOT)
                offsets.append(-1)
            else:
                length = len(record)
                payload_end -= length
                parts.append(record)
                entries.append(slot_pack(payload_end, length))
                offsets.append(payload_end)
        if parts:
            parts.reverse()
            out[payload_end:] = b"".join(parts)
        out[directory:directory + _SLOT.size * len(entries)] = b"".join(entries)
        self._image = out
        self._offsets = offsets
        return out

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SlottedPage":
        magic, page_type, page_id, lsn = _COMMON.unpack_from(raw, 0)
        if magic != PAGE_MAGIC or page_type != _TYPE_SLOTTED:
            raise PageFormatError("not a slotted page")
        nslots, __ = _SLOTTED_SUB.unpack_from(raw, _COMMON.size)
        page = cls(page_id, len(raw))
        page.lsn = lsn
        directory = _COMMON.size + _SLOTTED_SUB.size
        records = page._records
        offsets = []
        payload_bytes = 0
        for offset, length in _SLOT.iter_unpack(
                raw[directory:directory + nslots * _SLOT.size]):
            if offset == _TOMBSTONE:
                records.append(None)
                offsets.append(-1)
            else:
                records.append(bytes(raw[offset:offset + length]))
                offsets.append(offset)
                payload_bytes += length
        page._payload_bytes = payload_bytes
        # Prime the image cache with the decoded bytes: every page in the
        # stack was produced by to_bytes(), so the raw form *is* the
        # canonical serialisation and a read-modify-write cycle that only
        # touches record payloads never pays a rebuild.
        page._image = bytearray(raw)
        page._offsets = offsets
        return page


class BTreeNodePage:
    """A B+-tree node: sorted ``u64`` keys plus child pointers / values.

    * leaf: ``values[i]`` belongs to ``keys[i]``; ``next_leaf`` chains the
      leaf level for range scans;
    * inner: ``children`` has ``len(keys) + 1`` entries; keys separate the
      child subtrees.
    """

    _SUB = struct.Struct("<BxHIq")  # is_leaf, nkeys, reserved, next_leaf

    def __init__(self, page_id: int, page_bytes: int, is_leaf: bool):
        self.page_id = page_id
        self.page_bytes = page_bytes
        self.lsn = 0
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.values: List[int] = []    # leaf payloads (e.g. packed RIDs)
        self.children: List[int] = []  # inner child page ids
        self.next_leaf = -1
        # Reusable serialisation scratch (keys/values are mutated directly
        # by the tree, so unlike SlottedPage there is no validity to track
        # — only the allocation is saved).  _scratch_words remembers how
        # far the previous serialisation wrote so a shrink re-zeroes the
        # stale tail and the output stays canonical.
        self._scratch: Optional[bytearray] = None
        self._scratch_words = 0

    @property
    def capacity(self) -> int:
        """Maximum number of keys that fits in the serialised form."""
        fixed = _COMMON.size + self._SUB.size
        per_key = 16  # key u64 + (value u64 | child u64)
        return max(3, (self.page_bytes - fixed - 8) // per_key)

    def is_full(self) -> bool:
        return len(self.keys) >= self.capacity

    def to_bytes(self) -> bytes:
        out = self._scratch
        if out is None:
            out = self._scratch = bytearray(self.page_bytes)
        _COMMON.pack_into(out, 0, PAGE_MAGIC, _TYPE_BTREE,
                          self.page_id, self.lsn)
        self._SUB.pack_into(out, _COMMON.size, int(self.is_leaf),
                            len(self.keys), 0, self.next_leaf)
        cursor = _COMMON.size + self._SUB.size
        payload = self.values if self.is_leaf else self.children
        words = self.keys + payload
        nwords = len(words)
        if nwords:
            struct.pack_into(f"<{nwords}q", out, cursor, *words)
        if nwords < self._scratch_words:
            out[cursor + 8 * nwords:cursor + 8 * self._scratch_words] = \
                bytes(8 * (self._scratch_words - nwords))
        self._scratch_words = nwords
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BTreeNodePage":
        magic, page_type, page_id, lsn = _COMMON.unpack_from(raw, 0)
        if magic != PAGE_MAGIC or page_type != _TYPE_BTREE:
            raise PageFormatError("not a btree page")
        is_leaf, nkeys, __, next_leaf = cls._SUB.unpack_from(raw, _COMMON.size)
        node = cls(page_id, len(raw), bool(is_leaf))
        node.lsn = lsn
        node.next_leaf = next_leaf
        cursor = _COMMON.size + cls._SUB.size
        count = nkeys if node.is_leaf else nkeys + 1
        total = nkeys + count
        if total:
            words = struct.unpack_from(f"<{total}q", raw, cursor)
            node.keys = list(words[:nkeys])
            payload = list(words[nkeys:])
        else:
            payload = []
        if node.is_leaf:
            node.values = payload
        else:
            node.children = payload
        return node


def decode_page(raw: bytes):
    """Dispatch on the page-type byte of serialised page bytes."""
    if raw is None:
        return None
    magic, page_type, __, __ = _COMMON.unpack_from(raw, 0)
    if magic != PAGE_MAGIC:
        raise PageFormatError(f"bad magic 0x{magic:04x}")
    if page_type == _TYPE_SLOTTED:
        return SlottedPage.from_bytes(raw)
    if page_type == _TYPE_BTREE:
        return BTreeNodePage.from_bytes(raw)
    raise PageFormatError(f"unknown page type {page_type}")
