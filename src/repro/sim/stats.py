"""Light-weight statistics helpers used across the simulator and benches."""

from __future__ import annotations

import math
import random
import zlib
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "RunningStats",
    "LatencyRecorder",
    "percentile",
    "percentiles",
    "TimeWeightedValue",
]


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``values``.

    Matches numpy's default ('linear') method, without the dependency.
    For several percentiles of the same series use :func:`percentiles`,
    which sorts once.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    return _percentile_of_sorted(sorted(values), q)


def percentiles(values: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Like :func:`percentile` for several ``qs`` with a single sort."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    return [_percentile_of_sorted(ordered, q) for q in qs]


class RunningStats:
    """Welford's online mean/variance plus min/max."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.3f}, "
            f"min={self.minimum:.3f}, max={self.maximum:.3f})"
        )


class LatencyRecorder:
    """Records individual latency samples and summarises their distribution.

    By default keeps raw samples (the tier-1 experiments are small enough)
    so that exact percentiles and outlier counts can be reported, which is
    what the paper's latency-predictability argument needs.  Long chaos /
    synthetic runs can cap memory with ``max_samples``: once more than
    that many samples arrive, the recorder switches to uniform reservoir
    sampling (Vitter's Algorithm R, deterministically seeded from the
    recorder name), so percentiles become estimates over an unbiased
    subsample while ``count``/``mean``/``maximum`` stay exact via the
    running stats.
    """

    def __init__(self, name: str = "", max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.max_samples = max_samples
        self.samples: List[float] = []
        self.stats = RunningStats()
        self._rng = (
            random.Random(zlib.crc32(name.encode("utf-8")))
            if max_samples is not None else None
        )

    def record(self, latency: float) -> None:
        self.stats.add(latency)
        if self.max_samples is None or len(self.samples) < self.max_samples:
            self.samples.append(latency)
        else:
            slot = self._rng.randrange(self.stats.count)
            if slot < self.max_samples:
                self.samples[slot] = latency

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def maximum(self) -> float:
        return self.stats.maximum if self.samples else 0.0

    def pct(self, q: float) -> float:
        return percentile(self.samples, q)

    def outliers_over(self, threshold: float) -> int:
        """Number of samples strictly above ``threshold``."""
        return sum(1 for sample in self.samples if sample > threshold)

    def summary(self) -> dict:
        if not self.samples:
            return {"name": self.name, "count": 0}
        p50, p95, p99, p999 = percentiles(self.samples, (50, 95, 99, 99.9))
        out = {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "p999": p999,
            "max": self.maximum,
        }
        if self.max_samples is not None and self.count > len(self.samples):
            out["retained"] = len(self.samples)
        return out


class TimeWeightedValue:
    """Tracks the time-weighted average of a piecewise-constant value.

    Used e.g. for average queue depth or buffer-pool dirty ratio over a run.
    """

    def __init__(self, now: float = 0.0, value: float = 0.0):
        self._last_time = now
        self._value = value
        self._area = 0.0
        self._start = now

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def average(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span
