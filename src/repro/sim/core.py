"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: *processes* are
Python generators that yield :class:`Event` objects and are resumed when
those events fire.  Time is a virtual microsecond clock (a plain float),
which is what lets the flash model, the FTLs and the mini-DBMS share one
deterministic notion of latency.

The paper's evaluation platform is a real-time Linux-kernel flash emulator
with ~1 microsecond precision; this kernel plays the same role with exactly
reproducible timing (see DESIGN.md section 2).

Scheduling is split across two structures with one total order:

* a binary heap of ``(time, seq, event)`` for events in the future, and
* a FIFO *fast lane* (a deque) for **immediate** events — zero-delay
  timeouts, ``succeed``/``fail`` calls, process starts and resumptions —
  which would otherwise pay a heap push + pop just to fire at the
  current time.  Most events in a flash/DBMS rig are immediate (resource
  grants, store hand-offs, completion events), so this is the kernel's
  hot path.

Both lanes share the global ``seq`` counter and the dispatcher always
picks the lowest ``(time, seq)`` across them, so the firing order is
**bit-identical** to a single heap ordered by ``(time, seq)`` — the
determinism tests pin this with golden runs recorded against the
pre-fast-lane kernel.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Granted",
    "Interrupt",
    "Simulator",
]

_UNSET = object()


class Granted:
    """A pre-completed ``yield from`` target.

    Delegating to it returns ``value`` immediately without suspending the
    process — the allocation-light fast path for operations that turn out
    to complete synchronously (an uncontended lock, a buffer-pool hit).
    Unlike a generator that returns before its first yield, iterating it
    costs no generator frame; instances are stateless and reusable.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __iter__(self) -> "Granted":
        return self

    def __next__(self):
        raise StopIteration(self.value)


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it, and once the simulator processes it every
    registered callback runs exactly once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _UNSET
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (it may not have
        been processed yet)."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _UNSET:
            raise RuntimeError("event already triggered")
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._value is not _UNSET:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.delay = delay
        sim._schedule(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` objects; each yield suspends the
    process until the event fires, at which point the event's value is sent
    back into the generator (or its exception thrown in).
    """

    __slots__ = ("_generator", "_waiting_on", "_pending_resume",
                 "_send", "_throw", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        # Bound methods resolved once: each attribute access would build a
        # fresh bound-method object, and these run once per resumption.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self._waiting_on: Optional[Event] = None
        # A live fast-lane resumption entry (see _schedule_resume); kept
        # so interrupt() can cancel it.  The start-up resume below is
        # deliberately *not* cancellable: interrupting a process that has
        # not run yet starts it first, then interrupts — the pre-fast-lane
        # semantics.
        self._pending_resume: Optional[list] = None
        # Kick off the process at the current simulation time, without
        # allocating a bootstrap Event.
        sim._schedule_resume(self, True, None)

    @property
    def is_alive(self) -> bool:
        return self._value is _UNSET

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self._waiting_on is not None and self._waiting_on.callbacks is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            self._waiting_on = None
        if self._pending_resume is not None:
            # The process was about to resume from an already-processed
            # event; the interrupt supersedes that value.
            self._pending_resume[1] = None
            self._pending_resume = None
        wakeup = Event(self.sim)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        self.sim._schedule(wakeup)
        wakeup.callbacks.append(self._resume_cb)

    def _resume(self, event: Event) -> None:
        self._resume_inner(event._ok, event._value)

    def _resume_inner(self, ok: bool, value: Any) -> None:
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if ok:
                target = self._send(value)
            else:
                target = self._throw(value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught interrupt terminates the process abnormally.
            sim._active_process = None
            self._ok = False
            self._value = exc
            sim._schedule(self)
            return
        except BaseException as exc:
            sim._active_process = None
            self._ok = False
            self._value = exc
            sim._schedule(self)
            if not self.callbacks:
                raise
            return
        sim._active_process = None
        try:
            callbacks = target.callbacks
        except AttributeError:
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event objects"
            ) from None
        if callbacks is None:
            # Already processed: resume at the current time via the fast
            # lane, carrying the value directly — no proxy Event.
            self._pending_resume = sim._schedule_resume(
                self, target._ok, target._value
            )
        else:
            callbacks.append(self._resume_cb)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._fired: dict = {}
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._detach_losers(event)
            self.fail(event._value)
            return
        self._fired[event] = event._value
        if self._satisfied():
            self._detach_losers(event)
            self.succeed(dict(self._fired))

    def _detach_losers(self, firing: Event) -> None:
        """Remove our callback from children that have not fired yet.

        Once the condition has its value, the losing children's
        ``_on_fire`` references are dead weight: on long-lived events
        (e.g. a Store get raced against a timeout in a loop) they would
        otherwise accumulate without bound."""
        on_fire = self._on_fire
        for child in self._events:
            if child is firing:
                continue
            callbacks = child.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(on_fire)
                except ValueError:
                    pass

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any child event fires; value maps event -> value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(_Condition):
    """Fires once all child events have fired; value maps event -> value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self._events)


class Simulator:
    """The event loop: a future heap plus an immediate FIFO fast lane.

    Entries carry a global sequence number; the dispatcher always fires
    the lowest ``(time, seq)`` across both lanes, which makes the order
    identical to the classic single-heap implementation.
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list = []   # (when, seq, event) heap — future events
        self._fast: deque = deque()  # immediate lane, see _schedule
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Events dispatched so far — the wall-clock perf harness divides
        #: this by host seconds to get the events/sec figure.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling / running ------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` to fire ``delay`` time units from now.

        Zero-delay events take the FIFO fast lane: they fire at the
        current time anyway, so the heap's ordering work is wasted on
        them.  Sequence numbers keep the two lanes in one total order.
        """
        self._seq += 1
        if delay == 0.0:
            self._fast.append((self._seq, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def _schedule_resume(self, process: Process, ok: bool, value: Any) -> list:
        """Fast-lane entry resuming ``process`` directly with ``(ok,
        value)`` — the no-allocation replacement for the old proxy Event
        used when a process yields an already-processed event.  Returns
        the (mutable) entry so :meth:`Process.interrupt` can cancel it by
        nulling the process slot."""
        self._seq += 1
        entry = [self._seq, process, ok, value]
        self._fast.append(entry)
        return entry

    def _fast_head_is_next(self) -> bool:
        """True when the fast lane holds the lowest (time, seq) entry."""
        if not self._fast:
            return False
        if not self._queue:
            return True
        head = self._queue[0]
        return head[0] > self._now or head[1] > self._fast[0][0]

    def step(self) -> None:
        """Process the single next event (lowest (time, seq) across lanes)."""
        self.events_processed += 1
        if self._fast_head_is_next():
            entry = self._fast.popleft()
            if len(entry) == 2:
                event = entry[1]
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
            else:
                process = entry[1]
                if process is not None:
                    process._pending_resume = None
                    process._resume_inner(entry[2], entry[3])
            return
        when, __, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time reaches ``until``.

        This is the hot loop of every bench: the dispatch logic of
        :meth:`step` is inlined here (locals bound once, no per-event
        method call), firing identically ordered events.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        queue = self._queue
        fast = self._fast
        heappop = heapq.heappop
        limit = math.inf if until is None else until
        # ``_now`` only advances at heap pops inside this very loop, so a
        # local mirror is safe and saves an attribute load per event.
        now = self._now
        dispatched = 0
        try:
            while True:
                if fast:
                    head = queue[0] if queue else None
                    if head is None or head[0] > now \
                            or head[1] > fast[0][0]:
                        entry = fast.popleft()
                        dispatched += 1
                        if len(entry) == 2:
                            event = entry[1]
                            callbacks, event.callbacks = event.callbacks, None
                            for callback in callbacks:
                                callback(event)
                        else:
                            process = entry[1]
                            if process is not None:
                                process._pending_resume = None
                                process._resume_inner(entry[2], entry[3])
                        continue
                elif not queue:
                    break
                when = queue[0][0]
                if when > limit:
                    self._now = until
                    return
                __, __, event = heappop(queue)
                self._now = now = when
                dispatched += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
        finally:
            self.events_processed += dispatched
        if until is not None:
            self._now = until

    def run_process(self, generator: Generator) -> Any:
        """Run a process to completion and return its value.

        Steps the simulation only until *this* process finishes — other
        processes (e.g. perpetually polling background writers) may still
        have pending events afterwards; resume them with :meth:`run`.
        """
        proc = self.process(generator)
        step = self.step
        while proc._value is _UNSET and (self._queue or self._fast):
            step()
        if proc._value is _UNSET:
            raise RuntimeError("process did not finish (deadlock?)")
        if not proc._ok:
            raise proc._value
        return proc.value
