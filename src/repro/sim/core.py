"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: *processes* are
Python generators that yield :class:`Event` objects and are resumed when
those events fire.  Time is a virtual microsecond clock (a plain float),
which is what lets the flash model, the FTLs and the mini-DBMS share one
deterministic notion of latency.

The paper's evaluation platform is a real-time Linux-kernel flash emulator
with ~1 microsecond precision; this kernel plays the same role with exactly
reproducible timing (see DESIGN.md section 2).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Simulator",
]

_UNSET = object()


class Interrupt(Exception):
    """Thrown into a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it, and once the simulator processes it every
    registered callback runs exactly once.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _UNSET
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (it may not have
        been processed yet)."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(sim)
        self._value = value
        self.delay = delay
        sim._schedule(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` objects; each yield suspends the
    process until the event fires, at which point the event's value is sent
    back into the generator (or its exception thrown in).
    """

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current simulation time.
        init = Event(sim)
        init._value = None
        sim._schedule(init)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._value is _UNSET

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self._waiting_on is not None and self._waiting_on.callbacks is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        self.sim._schedule(wakeup)
        wakeup.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught interrupt terminates the process abnormally.
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._schedule(self)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._schedule(self)
            if not self.callbacks:
                raise
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            proxy = Event(self.sim)
            proxy._ok = target._ok
            proxy._value = target._value
            self.sim._schedule(proxy)
            proxy.callbacks.append(self._resume)
            self._waiting_on = proxy
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._fired: dict = {}
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired[event] = event._value
        if self._satisfied():
            self.succeed(dict(self._fired))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any child event fires; value maps event -> value."""

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(_Condition):
    """Fires once all child events have fired; value maps event -> value."""

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self._events)


class Simulator:
    """The event loop: a priority queue of (time, seq, event) triples."""

    def __init__(self):
        self._now = 0.0
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling / running ------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, __, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_process(self, generator: Generator) -> Any:
        """Run a process to completion and return its value.

        Steps the simulation only until *this* process finishes — other
        processes (e.g. perpetually polling background writers) may still
        have pending events afterwards; resume them with :meth:`run`.
        """
        proc = self.process(generator)
        while not proc.triggered and self._queue:
            self.step()
        if not proc.triggered:
            raise RuntimeError("process did not finish (deadlock?)")
        if not proc._ok:
            raise proc._value
        return proc.value
