"""Shared resources for DES processes.

:class:`Resource` models a counted resource with a FIFO wait queue (a NAND
die, a channel bus, a SATA NCQ slot).  :class:`Store` is an unbounded FIFO
message queue used e.g. to hand dirty pages to background db-writers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO granting.

    Usage inside a process::

        yield resource.request()
        try:
            ...  # critical section
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users = 0
        self._waiters: Deque[Event] = deque()
        # contention statistics
        self.total_requests = 0
        self.total_waits = 0
        self._wait_time = 0.0
        self._request_times: dict = {}

    @property
    def in_use(self) -> int:
        return self._users

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def total_wait_time(self) -> float:
        """Cumulative time requests spent queued before being granted."""
        return self._wait_time

    def request(self) -> Event:
        """Return an event that fires when one unit is granted."""
        self.total_requests += 1
        event = self.sim.event()
        if self._users < self.capacity and not self._waiters:
            self._users += 1
            event.succeed()
        else:
            self.total_waits += 1
            self._request_times[event] = self.sim.now
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if any."""
        if self._users <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            self._wait_time += self.sim.now - self._request_times.pop(waiter)
            waiter.succeed()
        else:
            self._users -= 1

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()


class Store:
    """Unbounded FIFO queue: ``put`` never blocks, ``get`` blocks when empty."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_puts = 0
        self.total_gets = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        self.total_gets += 1
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            self.total_gets += 1
            return self._items.popleft()
        return None

    def peek_all(self) -> list:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)
