"""Discrete-event simulation kernel (virtual microsecond clock).

Stands in for the paper's real-time Linux-kernel flash emulator: same role
(precise, configurable I/O timing), but deterministic and host-independent.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Granted,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from .resources import Resource, Store
from .stats import (
    LatencyRecorder,
    RunningStats,
    TimeWeightedValue,
    percentile,
    percentiles,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Granted",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "LatencyRecorder",
    "RunningStats",
    "TimeWeightedValue",
    "percentile",
    "percentiles",
]
