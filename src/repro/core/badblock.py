"""NoFTL's bad-block manager.

Factory-bad blocks are discovered once (on real NAND: by scanning the
vendor bad-block markers in the OOB area) and excluded from every
allocation pool; grown bad blocks are reported by the spaces as erases
fail (:class:`~repro.flash.errors.BlockWornOut`).  The manager keeps the
authoritative list and answers capacity questions — when too much spare
capacity is gone, the administrator must act, so `health` surfaces it.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..flash.geometry import Geometry

__all__ = ["BadBlockManager"]


class BadBlockManager:
    """Tracks factory and grown bad blocks for one device."""

    def __init__(self, geometry: Geometry, factory_bad: Iterable[int] = ()):
        self.geometry = geometry
        self.factory_bad: Set[int] = set(factory_bad)
        for pbn in self.factory_bad:
            geometry._check_block(pbn)
        self.grown_bad: Set[int] = set()

    @property
    def all_bad(self) -> Set[int]:
        return self.factory_bad | self.grown_bad

    def is_bad(self, pbn: int) -> bool:
        return pbn in self.factory_bad or pbn in self.grown_bad

    def report_grown(self, pbn: int) -> None:
        """Record a block that failed in service."""
        self.geometry._check_block(pbn)
        self.grown_bad.add(pbn)

    def bad_in_die(self, die_index: int) -> List[int]:
        blocks = self.geometry.blocks_of_die(die_index)
        return [pbn for pbn in blocks if self.is_bad(pbn)]

    def health(self) -> dict:
        total = self.geometry.total_blocks
        bad = len(self.all_bad)
        return {
            "total_blocks": total,
            "factory_bad": len(self.factory_bad),
            "grown_bad": len(self.grown_bad),
            "bad_fraction": bad / total if total else 0.0,
        }
