"""NoFTL's bad-block manager.

Factory-bad blocks are discovered once (on real NAND: by scanning the
vendor bad-block markers in the OOB area) and excluded from every
allocation pool; grown bad blocks are reported by the spaces as erases
fail (:class:`~repro.flash.errors.BlockWornOut`), as program failures
retire blocks, and as GC quarantines unreadable victims.  The manager
keeps the authoritative list and answers capacity questions — when too
much spare capacity is gone the device enters *degraded mode* (reads
keep working, writes are refused with :class:`DegradedModeError`), and
`health` surfaces it to the administrator.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..flash.geometry import Geometry

__all__ = ["BadBlockManager", "DegradedModeError"]


class DegradedModeError(RuntimeError):
    """Raised on writes once spare capacity fell below the watermark.

    Reads are still served — the device is read-only degraded, not dead.
    """

    def __init__(self, bad_blocks: int, spare_blocks: int, watermark: float):
        super().__init__(
            f"device degraded: {bad_blocks} bad blocks consumed "
            f">= {watermark:.0%} of {spare_blocks} spare blocks; "
            "read-only mode"
        )
        self.bad_blocks = bad_blocks
        self.spare_blocks = spare_blocks
        self.watermark = watermark


class BadBlockManager:
    """Tracks factory and grown bad blocks for one device.

    ``spare_blocks`` is the capacity head-room backing bad-block
    replacement (over-provisioned blocks); once total bad blocks reach
    ``watermark * spare_blocks`` the manager declares the device
    degraded.  ``spare_blocks=None`` disables the check (legacy
    behaviour).
    """

    def __init__(self, geometry: Geometry, factory_bad: Iterable[int] = (),
                 spare_blocks: int | None = None, watermark: float = 0.75):
        self.geometry = geometry
        self.factory_bad: Set[int] = set(factory_bad)
        for pbn in self.factory_bad:
            geometry._check_block(pbn)
        self.grown_bad: Set[int] = set()
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        if spare_blocks is not None and spare_blocks < 0:
            raise ValueError("spare_blocks must be >= 0")
        self.spare_blocks = spare_blocks
        self.watermark = watermark

    @property
    def all_bad(self) -> Set[int]:
        return self.factory_bad | self.grown_bad

    def is_bad(self, pbn: int) -> bool:
        return pbn in self.factory_bad or pbn in self.grown_bad

    def report_grown(self, pbn: int) -> None:
        """Record a block that failed in service."""
        self.geometry._check_block(pbn)
        self.grown_bad.add(pbn)

    @property
    def degraded(self) -> bool:
        """True once *grown* bad blocks consumed the spare-capacity
        watermark.  Factory-bad blocks were known at provisioning time and
        already excluded from the pools, so they do not count against the
        in-service replacement budget."""
        if self.spare_blocks is None:
            return False
        return len(self.grown_bad) >= self.watermark * self.spare_blocks

    def check_writable(self) -> None:
        """Raise :class:`DegradedModeError` when writes must be refused."""
        if self.degraded:
            raise DegradedModeError(
                len(self.grown_bad), self.spare_blocks, self.watermark
            )

    def bad_in_die(self, die_index: int) -> List[int]:
        blocks = self.geometry.blocks_of_die(die_index)
        return [pbn for pbn in blocks if self.is_bad(pbn)]

    def health(self) -> dict:
        total = self.geometry.total_blocks
        bad = len(self.all_bad)
        return {
            "total_blocks": total,
            "factory_bad": len(self.factory_bad),
            "grown_bad": len(self.grown_bad),
            "bad_fraction": bad / total if total else 0.0,
            "spare_blocks": self.spare_blocks,
            "spare_watermark": self.watermark,
            "degraded": self.degraded,
        }
