"""NoFTL — the paper's primary contribution: flash management integrated
into the DBMS, running against native flash.

Public surface:

* :class:`NoFTLConfig` — every tuning knob (regions, GC policy, copyback,
  wear leveling, trim integration);
* :class:`NoFTLStorageManager` — host-side translation + GC + WL + BBM;
* :class:`NoFTLStorage` / :class:`SyncNoFTLStorage` — DES and synchronous
  execution front-ends;
* :class:`RegionManager` / :class:`Region` — die-wise physical regions;
* :class:`BadBlockManager`.
"""

from .badblock import BadBlockManager, DegradedModeError
from .config import NoFTLConfig
from .manager import MountReport, NoFTLStorageManager
from .regions import Region, RegionManager
from .storage import NoFTLStorage, SyncNoFTLStorage

__all__ = [
    "BadBlockManager",
    "DegradedModeError",
    "MountReport",
    "NoFTLConfig",
    "NoFTLStorageManager",
    "Region",
    "RegionManager",
    "NoFTLStorage",
    "SyncNoFTLStorage",
]
