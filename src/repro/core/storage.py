"""Execution front-ends for the NoFTL storage manager.

:class:`NoFTLStorage` is the DES-mode device the mini-DBMS mounts: reads
are lock-free (translation is a host-RAM lookup), writes serialize per
*region* — many host cores may manage different regions concurrently,
unlike the single-ASIC controller of a black-box SSD.  There is no NCQ
cap: native flash takes as many commands as dies can serve (Section 3.2).

:class:`SyncNoFTLStorage` is the synchronous flavour used for trace
replay (Figure 3) and tests.
"""

from __future__ import annotations

from typing import Optional

from ..flash.executor import SimExecutor, SyncExecutor
from ..sim import LatencyRecorder, Resource, Simulator
from ..telemetry import COST_BUCKETS, OpContext
from .manager import NoFTLStorageManager

__all__ = ["NoFTLStorage", "SyncNoFTLStorage"]


def emit_host_op(trace, op: str, ctx: OpContext, before: dict,
                 elapsed_us: float) -> None:
    """Emit one ``host.op`` trace event carrying this operation's latency
    and the *delta* of the context's cost buckets across the operation.

    The delta (snapshot-and-diff around the storage call) rather than the
    absolute costs keeps attribution correct when one context serves
    several operations (e.g. a db-writer flushing many pages).
    """
    if trace is None or not trace.enabled:
        return
    fields = ctx.fields()
    for bucket in COST_BUCKETS:
        delta = ctx.costs.get(bucket, 0.0) - before.get(bucket, 0.0)
        if delta:
            fields[bucket] = delta
    trace.emit("host.op", op=op, elapsed_us=elapsed_us, **fields)


class NoFTLStorage:
    """DES front-end: per-region write serialization, lock-free reads."""

    def __init__(
        self,
        sim: Simulator,
        manager: NoFTLStorageManager,
        executor: SimExecutor,
        interface_overhead_us: float = 2.0,
    ):
        self.sim = sim
        self.manager = manager
        self.executor = executor
        self.interface_overhead_us = interface_overhead_us
        self.region_locks = [
            Resource(sim, capacity=1) for __ in range(manager.num_regions)
        ]
        self.read_latency = LatencyRecorder("noftl-read")
        self.write_latency = LatencyRecorder("noftl-write")
        self.telemetry = manager.telemetry
        self.trace = manager.trace
        self.telemetry.set_clock(lambda: sim.now)
        self._tm_read_us = self.telemetry.histogram(
            "noftl.read_us", layer="core"
        )
        self._tm_write_us = self.telemetry.histogram(
            "noftl.write_us", layer="core"
        )
        self._tm_lock_waits = self.telemetry.counter(
            "noftl.region_lock_waits", layer="core"
        )
        self.telemetry.register_collector(
            "noftl.region_lock_contention", self.region_lock_contention
        )

    @property
    def logical_pages(self) -> int:
        return self.manager.logical_pages

    def region_of_lpn(self, lpn: int) -> int:
        return self.manager.region_of_lpn(lpn)

    def read(self, lpn: int, ctx: Optional[OpContext] = None):
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        # The cost-bucket snapshot only feeds the host.op trace event;
        # skip the dict copy entirely when tracing is off.
        trace = self.trace
        tracing = trace is not None and trace.enabled
        before = dict(ctx.costs) if tracing else None
        yield self.sim.timeout(self.interface_overhead_us)
        data = yield from self.executor.run(self.manager.read(lpn), ctx=ctx)
        elapsed = self.sim.now - start
        self.read_latency.record(elapsed)
        self._tm_read_us.observe(elapsed)
        if tracing:
            emit_host_op(trace, "read", ctx, before, elapsed)
        return data

    def write(self, lpn: int, data=None, hint: str = "hot",
              ctx: Optional[OpContext] = None):
        if ctx is None:
            ctx = OpContext("host")
        start = self.sim.now
        trace = self.trace
        tracing = trace is not None and trace.enabled
        before = dict(ctx.costs) if tracing else None
        region = self.manager.region_of_lpn(lpn)
        lock = self.region_locks[region]
        # Classify the region-lock wait: if the region's space is running
        # GC/wear-leveling when we arrive, the wait is maintenance-blamed.
        behind_maintenance = (
            self.manager.regions.regions[region].space.maintenance_active
        )
        yield lock.request()
        wait = self.sim.now - start
        if wait > 0:
            self._tm_lock_waits.inc()
            ctx.charge(
                "queue_gc_us" if behind_maintenance else "queue_other_us",
                wait,
            )
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            yield from self.executor.run(
                self.manager.write(lpn, data, hint, ctx=ctx), ctx=ctx
            )
        finally:
            lock.release()
        elapsed = self.sim.now - start
        self.write_latency.record(elapsed)
        self._tm_write_us.observe(elapsed)
        if tracing:
            emit_host_op(trace, "write", ctx, before, elapsed)

    def trim(self, lpn: int, ctx: Optional[OpContext] = None):
        lock = self.region_locks[self.manager.region_of_lpn(lpn)]
        yield lock.request()
        try:
            yield from self.executor.run(self.manager.trim(lpn), ctx=ctx)
        finally:
            lock.release()

    def mount(self, ctx: Optional[OpContext] = None):
        """Generator: cold-start OOB scan + state rebuild.

        Returns the :class:`~repro.core.manager.MountReport`.  Runs under
        every region lock so nothing allocates against half-built state
        (a freshly built rig has no other users anyway, but an in-place
        remount after a fault does).
        """
        if ctx is None:
            ctx = OpContext("recovery")
        for lock in self.region_locks:
            yield lock.request()
        try:
            report = yield from self.executor.run(
                self.manager.mount(), ctx=ctx
            )
        finally:
            for lock in self.region_locks:
                lock.release()
        return report

    def recover(self, ctx: Optional[OpContext] = None):
        """Generator: compatibility wrapper — mount, return mapping count."""
        report = yield from self.mount(ctx=ctx)
        return report.mappings

    def region_lock_contention(self) -> dict:
        """Aggregate wait statistics — the paper's 'contention for physical
        resources among db-writers' made measurable."""
        return {
            "total_waits": sum(lock.total_waits for lock in self.region_locks),
            "total_wait_time_us": sum(
                lock.total_wait_time for lock in self.region_locks
            ),
        }


class SyncNoFTLStorage:
    """Synchronous flavour (trace replay, tests)."""

    def __init__(self, manager: NoFTLStorageManager, executor: SyncExecutor):
        self.manager = manager
        self.executor = executor

    @property
    def logical_pages(self) -> int:
        return self.manager.logical_pages

    def region_of_lpn(self, lpn: int) -> int:
        return self.manager.region_of_lpn(lpn)

    def read(self, lpn: int, ctx: Optional[OpContext] = None):
        return self.executor.run(self.manager.read(lpn), ctx=ctx)

    def write(self, lpn: int, data=None, hint: str = "hot",
              ctx: Optional[OpContext] = None) -> None:
        self.executor.run(self.manager.write(lpn, data, hint, ctx=ctx),
                          ctx=ctx)

    def trim(self, lpn: int, ctx: Optional[OpContext] = None) -> None:
        self.executor.run(self.manager.trim(lpn), ctx=ctx)

    def mount(self):
        """Cold-start OOB scan + state rebuild; returns the MountReport."""
        return self.executor.run(
            self.manager.mount(), ctx=OpContext("recovery")
        )

    def recover(self) -> int:
        return self.executor.run(
            self.manager.recover(), ctx=OpContext("recovery")
        )
