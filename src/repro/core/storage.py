"""Execution front-ends for the NoFTL storage manager.

:class:`NoFTLStorage` is the DES-mode device the mini-DBMS mounts: reads
are lock-free (translation is a host-RAM lookup), writes serialize per
*region* — many host cores may manage different regions concurrently,
unlike the single-ASIC controller of a black-box SSD.  There is no NCQ
cap: native flash takes as many commands as dies can serve (Section 3.2).

:class:`SyncNoFTLStorage` is the synchronous flavour used for trace
replay (Figure 3) and tests.
"""

from __future__ import annotations

from ..flash.executor import SimExecutor, SyncExecutor
from ..sim import LatencyRecorder, Resource, Simulator
from .manager import NoFTLStorageManager

__all__ = ["NoFTLStorage", "SyncNoFTLStorage"]


class NoFTLStorage:
    """DES front-end: per-region write serialization, lock-free reads."""

    def __init__(
        self,
        sim: Simulator,
        manager: NoFTLStorageManager,
        executor: SimExecutor,
        interface_overhead_us: float = 2.0,
    ):
        self.sim = sim
        self.manager = manager
        self.executor = executor
        self.interface_overhead_us = interface_overhead_us
        self.region_locks = [
            Resource(sim, capacity=1) for __ in range(manager.num_regions)
        ]
        self.read_latency = LatencyRecorder("noftl-read")
        self.write_latency = LatencyRecorder("noftl-write")
        self.telemetry = manager.telemetry
        self.telemetry.set_clock(lambda: sim.now)
        self._tm_read_us = self.telemetry.histogram(
            "noftl.read_us", layer="core"
        )
        self._tm_write_us = self.telemetry.histogram(
            "noftl.write_us", layer="core"
        )
        self._tm_lock_waits = self.telemetry.counter(
            "noftl.region_lock_waits", layer="core"
        )
        self.telemetry.register_collector(
            "noftl.region_lock_contention", self.region_lock_contention
        )

    @property
    def logical_pages(self) -> int:
        return self.manager.logical_pages

    def region_of_lpn(self, lpn: int) -> int:
        return self.manager.region_of_lpn(lpn)

    def read(self, lpn: int):
        start = self.sim.now
        yield self.sim.timeout(self.interface_overhead_us)
        data = yield from self.executor.run(self.manager.read(lpn))
        elapsed = self.sim.now - start
        self.read_latency.record(elapsed)
        self._tm_read_us.observe(elapsed)
        return data

    def write(self, lpn: int, data=None, hint: str = "hot"):
        start = self.sim.now
        lock = self.region_locks[self.manager.region_of_lpn(lpn)]
        yield lock.request()
        if self.sim.now > start:
            self._tm_lock_waits.inc()
        try:
            yield self.sim.timeout(self.interface_overhead_us)
            yield from self.executor.run(self.manager.write(lpn, data, hint))
        finally:
            lock.release()
        elapsed = self.sim.now - start
        self.write_latency.record(elapsed)
        self._tm_write_us.observe(elapsed)

    def trim(self, lpn: int):
        lock = self.region_locks[self.manager.region_of_lpn(lpn)]
        yield lock.request()
        try:
            yield from self.executor.run(self.manager.trim(lpn))
        finally:
            lock.release()

    def region_lock_contention(self) -> dict:
        """Aggregate wait statistics — the paper's 'contention for physical
        resources among db-writers' made measurable."""
        return {
            "total_waits": sum(lock.total_waits for lock in self.region_locks),
            "total_wait_time_us": sum(
                lock.total_wait_time for lock in self.region_locks
            ),
        }


class SyncNoFTLStorage:
    """Synchronous flavour (trace replay, tests)."""

    def __init__(self, manager: NoFTLStorageManager, executor: SyncExecutor):
        self.manager = manager
        self.executor = executor

    @property
    def logical_pages(self) -> int:
        return self.manager.logical_pages

    def region_of_lpn(self, lpn: int) -> int:
        return self.manager.region_of_lpn(lpn)

    def read(self, lpn: int):
        return self.executor.run(self.manager.read(lpn))

    def write(self, lpn: int, data=None, hint: str = "hot") -> None:
        self.executor.run(self.manager.write(lpn, data, hint))

    def trim(self, lpn: int) -> None:
        self.executor.run(self.manager.trim(lpn))

    def recover(self) -> int:
        return self.executor.run(self.manager.recover())
