"""NoFTL configuration.

One dataclass gathers every knob Section 3 exposes to the DBA/audience in
the demonstration (Flash layout, number of regions, GC policy, copyback
usage, wear-leveling thresholds) plus the ablation switches of bench E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["NoFTLConfig"]


@dataclass(frozen=True)
class NoFTLConfig:
    """Tuning parameters of the DBMS-integrated flash management.

    Attributes
    ----------
    num_regions
        Physical regions the flash is divided into (db-writers are bound
        region-wise, Section 3.2).  ``None`` means one region per die —
        the paper's die-wise striping.
    op_ratio
        Over-provisioned fraction of physical capacity.
    gc_policy
        ``"greedy"`` or ``"cost_benefit"`` victim selection.
    gc_low_water
        Free blocks per plane below which GC kicks in.
    separate_streams
        Keep GC relocations in their own (cold) active blocks.
    write_streams
        Object-aware write placement: one named allocation point per
        host data class (WAL / heap-hot / heap-cold / btree / map / temp
        / recovery), resolved from the ``OpContext.data_class`` stamp
        riding on each write, with class-segregated GC and mount-time
        frontier re-derivation (DESIGN.md §14).  Off by default — the
        legacy hot/cold path stays event-for-event identical.  Requires
        ``separate_streams``.
    use_copyback
        Relocate within a plane via COPYBACK (no bus transfer) instead of
        read+program.
    wear_level_delta
        Static wear-leveling trigger (erase-count spread); None disables.
    honor_trims
        Apply DBMS deallocation hints (free-space-manager integration);
        turning this off reproduces black-box behaviour for ablation.
    spare_watermark
        Fraction of the over-provisioned (spare) blocks that may go bad
        before the device enters read-only degraded mode.
    read_retry_limit
        Extra read attempts after an ECC failure before the error
        propagates to the caller.
    outage_retry_limit
        Pause-retry rounds while a die sits in an outage window.
    scrub_on_retry
        Relocate pages whose read only succeeded after retries and mark
        their block suspect for priority GC.
    """

    num_regions: Optional[int] = None
    op_ratio: float = 0.1
    gc_policy: str = "greedy"
    gc_low_water: int = 2
    separate_streams: bool = True
    write_streams: bool = False
    use_copyback: bool = True
    wear_level_delta: Optional[int] = 20
    wear_level_check_every: int = 64
    honor_trims: bool = True
    spare_watermark: float = 0.75
    read_retry_limit: int = 4
    outage_retry_limit: int = 150
    scrub_on_retry: bool = True

    def __post_init__(self):
        if self.num_regions is not None and self.num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if not 0.0 < self.op_ratio < 0.9:
            raise ValueError("op_ratio must be in (0, 0.9)")
        if not 0.0 < self.spare_watermark <= 1.0:
            raise ValueError("spare_watermark must be in (0, 1]")
        if self.read_retry_limit < 0 or self.outage_retry_limit < 0:
            raise ValueError("retry limits must be >= 0")
        if self.write_streams and not self.separate_streams:
            raise ValueError("write_streams requires separate_streams")
