"""Physical regions: the unit of NoFTL's flash-aware parallelism.

Section 3.2: *"Instead of having multiple db-writers, where each is
responsible for a subset of dirty pages from the whole address space, we
have assigned each db-writer to a certain physical region (i.e., set of
NAND chips)."*

A :class:`Region` is a group of whole dies with its own allocation pools,
active blocks and garbage collector (one
:class:`~repro.ftl.pagespace.PageMappedSpace` per region, all sharing one
host-resident mapping table).  Logical pages are striped across regions,
so ``region_of_lpn`` is a pure function the buffer manager can use to
partition dirty pages among db-writers.
"""

from __future__ import annotations

from typing import List, Optional

from ..flash.geometry import Geometry

__all__ = ["Region", "RegionManager"]


class Region:
    """A contiguous group of dies owned by one GC/allocation domain."""

    def __init__(self, region_id: int, dies: List[int], geometry: Geometry):
        self.region_id = region_id
        self.geometry = geometry
        self.dies = list(dies)
        self.planes = [
            (die, plane)
            for die in self.dies
            for plane in range(geometry.planes_per_die)
        ]
        self.space = None  # attached by the storage manager

    def blocks(self):
        """Iterator over every physical block number this region owns
        (die-major numbering keeps each die's blocks contiguous)."""
        blocks_per_die = (
            self.geometry.planes_per_die * self.geometry.blocks_per_plane
        )
        for die in self.dies:
            yield from range(die * blocks_per_die, (die + 1) * blocks_per_die)

    def __repr__(self) -> str:
        return f"Region({self.region_id}, dies={self.dies})"


class RegionManager:
    """Splits the device's dies into ``num_regions`` equal groups and
    routes logical pages to regions by striping."""

    def __init__(self, geometry: Geometry, num_regions: Optional[int] = None):
        total_dies = geometry.total_dies
        if num_regions is None:
            num_regions = total_dies  # the paper's die-wise striping
        if not 1 <= num_regions <= total_dies:
            raise ValueError(
                f"num_regions must be in 1..{total_dies}, got {num_regions}"
            )
        if total_dies % num_regions != 0:
            raise ValueError(
                f"{num_regions} regions do not evenly divide {total_dies} dies"
            )
        self.geometry = geometry
        self.num_regions = num_regions
        dies_per_region = total_dies // num_regions
        self.regions: List[Region] = [
            Region(
                index,
                list(range(index * dies_per_region,
                           (index + 1) * dies_per_region)),
                geometry,
            )
            for index in range(num_regions)
        ]

    def region_of_lpn(self, lpn: int) -> int:
        """Stripe logical pages round-robin across regions (die-wise
        striping when regions are single dies)."""
        return lpn % self.num_regions

    def region_of_die(self, die_index: int) -> int:
        dies_per_region = self.geometry.total_dies // self.num_regions
        return die_index // dies_per_region

    def lpns_of_region(self, region_id: int, logical_pages: int):
        """Iterator over the logical pages a region owns."""
        if not 0 <= region_id < self.num_regions:
            raise ValueError(f"region {region_id} out of range")
        return range(region_id, logical_pages, self.num_regions)
