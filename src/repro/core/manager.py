"""The NoFTL storage manager — the paper's primary contribution.

Figure 2 of the paper: address translation, out-of-place updates, GC,
wear leveling and bad-block management move *out of the device* and into
the DBMS storage manager, which talks to native flash directly.  The
wins, each visible in this class:

* the **complete page-level mapping table lives in host RAM**
  (:class:`~repro.ftl.base.MappingState` over the whole logical space) —
  no DFTL-style translation I/O, ever (Section 3.1);
* **GC knows what the DBMS knows**: the free-space manager calls
  :meth:`trim` the moment a page is deallocated, and callers can tag
  writes with a temperature hint that routes them to separate hot/cold
  streams, shrinking relocation traffic (Figure 3);
* the flash is split into **physical regions** (die groups) with
  independent allocation and GC, so db-writers bound region-wise never
  contend for chips (Section 3.2, Figure 4);
* wear leveling and bad-block management use host-side bookkeeping.

All flash-touching methods are command generators; run them through a
:class:`~repro.flash.executor.SyncExecutor` or, inside the DES, a
:class:`~repro.flash.executor.SimExecutor` (see
:class:`repro.core.storage.NoFTLStorage`).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..flash.commands import ReadOob
from ..flash.errors import ReadUnwrittenError, UncorrectableError
from ..flash.geometry import Geometry
from ..ftl.base import FTLStats, MappingState
from ..ftl.pagespace import PageMappedSpace
from ..telemetry import EventTrace, MetricsRegistry
from .badblock import BadBlockManager
from .config import NoFTLConfig
from .regions import RegionManager

__all__ = ["NoFTLStorageManager"]


class NoFTLStorageManager:
    """Host-side flash management for one native flash device."""

    def __init__(
        self,
        geometry: Geometry,
        config: Optional[NoFTLConfig] = None,
        factory_bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        self.geometry = geometry
        self.config = config or NoFTLConfig()
        self.stats = FTLStats()
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = (
            trace if trace is not None else EventTrace(clock=self.telemetry.now)
        )
        self.telemetry.register_collector("noftl.stats", self.stats.snapshot)
        self.telemetry.register_collector("noftl.occupancy", self.occupancy)
        self.logical_pages = int(
            geometry.total_pages * (1.0 - self.config.op_ratio)
        )
        self.mapping = MappingState(geometry, self.logical_pages)
        # Spare capacity backing bad-block replacement is exactly the
        # over-provisioned block count; once the watermark's worth of it
        # is bad, the device goes read-only degraded.
        spare_blocks = max(
            1, int(geometry.total_blocks * self.config.op_ratio)
        )
        self.bad_blocks = BadBlockManager(
            geometry, factory_bad_blocks,
            spare_blocks=spare_blocks,
            watermark=self.config.spare_watermark,
        )
        self.regions = RegionManager(geometry, self.config.num_regions)
        self._rng = rng or random.Random(0)
        self._tm_degraded = self.telemetry.gauge(
            "noftl.degraded", layer="noftl"
        )
        self._tm_degraded.set(0)
        for region in self.regions.regions:
            space = PageMappedSpace(
                geometry,
                self.mapping,
                region.planes,
                self.stats,
                gc_policy=self.config.gc_policy,
                gc_low_water=self.config.gc_low_water,
                separate_streams=self.config.separate_streams,
                use_copyback=self.config.use_copyback,
                wear_level_delta=self.config.wear_level_delta,
                wear_level_check_every=self.config.wear_level_check_every,
                bad_blocks=self.bad_blocks.all_bad,
                placement_divisor=self.regions.num_regions,
                rng=self._rng,
                telemetry=self.telemetry,
                trace=self.trace,
                read_retry_limit=self.config.read_retry_limit,
                outage_retry_limit=self.config.outage_retry_limit,
                scrub_on_retry=self.config.scrub_on_retry,
                metric_prefix="noftl",
            )
            space.on_grown_bad = self._on_grown_bad
            region.space = space

    def _on_grown_bad(self, pbn: int) -> None:
        """Spaces report retired blocks here; the degraded gauge tracks
        the spare-capacity watermark as capacity erodes."""
        self.bad_blocks.report_grown(pbn)
        self._tm_degraded.set(1 if self.bad_blocks.degraded else 0)

    @property
    def num_regions(self) -> int:
        return self.regions.num_regions

    def region_of_lpn(self, lpn: int) -> int:
        """Pure placement function — this is what lets the buffer manager
        partition dirty pages among region-bound db-writers."""
        return self.regions.region_of_lpn(lpn)

    def _space_of(self, lpn: int) -> PageMappedSpace:
        return self.regions.regions[self.regions.region_of_lpn(lpn)].space

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"lpn {lpn} outside logical space 0..{self.logical_pages - 1}"
            )

    # -- host interface (flash-command generators) ------------------------------

    def read(self, lpn: int):
        """Generator: newest version of ``lpn`` (None if never written)."""
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        data = yield from self._space_of(lpn).read(lpn)
        return data

    def write(self, lpn: int, data=None, hint: str = "hot"):
        """Generator: out-of-place write with an optional temperature hint.

        ``hint`` may be ``"hot"`` (default, OLTP pages) or ``"cold"``
        (bulk loads, archival data) — DBMS knowledge the paper's
        integration strategy (ii) feeds into placement.
        """
        self._check_lpn(lpn)
        if hint not in ("hot", "cold"):
            raise ValueError(f"unknown temperature hint: {hint!r}")
        # Degraded mode: spare capacity is below the safety floor — refuse
        # new writes (reads and trims keep working) so the administrator
        # can evacuate the device instead of wedging it completely.
        self.bad_blocks.check_writable()
        self.stats.host_writes += 1
        yield from self._space_of(lpn).write(lpn, data, stream=hint)

    def trim(self, lpn: int):
        """Generator (no flash I/O): the DBMS free-space manager reports a
        deallocated page; the mapping is dropped immediately so GC never
        relocates dead data."""
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        if self.config.honor_trims:
            self._space_of(lpn).trim(lpn)
        return
        yield  # pragma: no cover - generator form

    def is_fast_read(self, lpn: int) -> bool:
        """All reads are host-RAM lookups plus one flash read."""
        return True

    # -- recovery ----------------------------------------------------------------

    def recover(self):
        """Generator: rebuild the mapping table from OOB metadata.

        A cold start after a crash scans every page's spare area (cheap
        OOB reads), keeping the highest write sequence number per logical
        page.  This is the NoFTL answer to "where does the mapping live
        if the host crashes" — the flash itself carries it.
        Returns the number of mappings recovered.
        """
        fresh = MappingState(self.geometry, self.logical_pages)
        newest: dict = {}
        programmed_blocks: set = set()
        for ppn in range(self.geometry.total_pages):
            try:
                result = yield ReadOob(ppn=ppn)
            except ReadUnwrittenError:
                continue
            except UncorrectableError:
                # Unreadable spare area: the page's mapping (if any) is
                # unrecoverable, but the block clearly holds programs.
                programmed_blocks.add(self.geometry.block_of_ppn(ppn))
                continue
            programmed_blocks.add(self.geometry.block_of_ppn(ppn))
            oob = result.oob
            if not isinstance(oob, dict) or "lpn" not in oob:
                continue
            lpn = oob["lpn"]
            seq = oob.get("seq", 0)
            if lpn >= self.logical_pages:
                continue
            known = newest.get(lpn)
            if known is None or seq > known[0]:
                newest[lpn] = (seq, ppn)
        for lpn, (__, ppn) in newest.items():
            fresh.bind(lpn, ppn)
        # Swap in the recovered table and rebuild every region's
        # allocation state from the same scan (programmed blocks are
        # occupied; erased blocks return to the free pools).
        self.mapping.l2p[:] = fresh.l2p
        self.mapping.p2l[:] = fresh.p2l
        self.mapping.valid_in_block[:] = fresh.valid_in_block
        self.mapping.clock = max(
            (seq for seq, __ in newest.values()), default=0
        )
        for region in self.regions.regions:
            region.space.rebuild_allocation(programmed_blocks)
        return len(newest)

    # -- introspection --------------------------------------------------------------

    def health(self) -> dict:
        """Device health as the administrator sees it: bad-block budget,
        spare capacity and the degraded (read-only) flag."""
        return self.bad_blocks.health()

    def occupancy(self) -> dict:
        per_region = [region.space.occupancy()
                      for region in self.regions.regions]
        return {
            "regions": len(per_region),
            "free_blocks": sum(r["free_blocks"] for r in per_region),
            "valid_pages": self.mapping.total_valid(),
            "per_region": per_region,
        }

    def snapshot(self) -> dict:
        data = self.stats.snapshot()
        data["bad_blocks"] = self.bad_blocks.health()
        data["occupancy"] = self.occupancy()
        return data
