"""The NoFTL storage manager — the paper's primary contribution.

Figure 2 of the paper: address translation, out-of-place updates, GC,
wear leveling and bad-block management move *out of the device* and into
the DBMS storage manager, which talks to native flash directly.  The
wins, each visible in this class:

* the **complete page-level mapping table lives in host RAM**
  (:class:`~repro.ftl.base.MappingState` over the whole logical space) —
  no DFTL-style translation I/O, ever (Section 3.1);
* **GC knows what the DBMS knows**: the free-space manager calls
  :meth:`trim` the moment a page is deallocated, and callers can tag
  writes with a temperature hint that routes them to separate hot/cold
  streams, shrinking relocation traffic (Figure 3);
* the flash is split into **physical regions** (die groups) with
  independent allocation and GC, so db-writers bound region-wise never
  contend for chips (Section 3.2, Figure 4);
* wear leveling and bad-block management use host-side bookkeeping.

All flash-touching methods are command generators; run them through a
:class:`~repro.flash.executor.SyncExecutor` or, inside the DES, a
:class:`~repro.flash.executor.SimExecutor` (see
:class:`repro.core.storage.NoFTLStorage`).
"""

from __future__ import annotations

import random
from array import array as _array
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..flash.commands import ReadOob
from ..flash.errors import ReadUnwrittenError, UncorrectableError
from ..flash.geometry import Geometry
from ..ftl.base import UNMAPPED, FTLStats, MappingState
from ..ftl.pagespace import PageMappedSpace
from ..ftl.streams import CODE_CLASSES, FOREGROUND_STREAMS, stream_for
from ..telemetry import EventTrace, MetricsRegistry, OpContext, data_class_of
from .badblock import BadBlockManager
from .config import NoFTLConfig
from .regions import RegionManager

__all__ = ["MountReport", "NoFTLStorageManager"]


@dataclass
class MountReport:
    """What a cold-start OOB scan found and rebuilt.

    Everything here is derived from the flash itself — the whole point of
    the mount path is that no pre-crash host RAM survives to consult.
    """

    pages_scanned: int = 0          # every ppn probed with an OOB read
    mappings: int = 0               # logical pages adopted into l2p
    torn_pages: int = 0             # OOB reads failing ECC/CRC (rejected)
    duplicate_ties: int = 0         # equal (lpn, seq) pairs resolved
    programmed_blocks: int = 0      # blocks holding >= 1 programmed page
    quarantined_blocks: tuple = ()  # blocks retired on unreadable evidence
    max_seq: int = 0                # highest write sequence adopted
    max_lpn: int = -1               # highest mapped logical page
    mapped_lpns: frozenset = field(default_factory=frozenset)
    #: Write-streams mode: per-stream write points re-derived from OOB
    #: class evidence, as (pbn, stream, next_offset) triples.
    stream_frontiers: tuple = ()

    def snapshot(self) -> dict:
        out = {
            "pages_scanned": self.pages_scanned,
            "mappings": self.mappings,
            "torn_pages": self.torn_pages,
            "duplicate_ties": self.duplicate_ties,
            "programmed_blocks": self.programmed_blocks,
            "quarantined_blocks": sorted(self.quarantined_blocks),
            "max_seq": self.max_seq,
            "max_lpn": self.max_lpn,
        }
        # Only surfaced in write-streams mode: keeps legacy snapshot
        # shapes (and the digests hashed over them) bit-identical.
        if self.stream_frontiers:
            out["stream_frontiers"] = [
                list(entry) for entry in self.stream_frontiers
            ]
        return out


class NoFTLStorageManager:
    """Host-side flash management for one native flash device."""

    def __init__(
        self,
        geometry: Geometry,
        config: Optional[NoFTLConfig] = None,
        factory_bad_blocks: Iterable[int] = (),
        rng: Optional[random.Random] = None,
        telemetry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ):
        self.geometry = geometry
        self.config = config or NoFTLConfig()
        self.stats = FTLStats()
        self.telemetry = telemetry or MetricsRegistry()
        self.trace = (
            trace if trace is not None else EventTrace(clock=self.telemetry.now)
        )
        self.telemetry.register_collector("noftl.stats", self.stats.snapshot)
        self.telemetry.register_collector("noftl.occupancy", self.occupancy)
        self.logical_pages = int(
            geometry.total_pages * (1.0 - self.config.op_ratio)
        )
        self.mapping = MappingState(geometry, self.logical_pages)
        # Spare capacity backing bad-block replacement is exactly the
        # over-provisioned block count; once the watermark's worth of it
        # is bad, the device goes read-only degraded.
        spare_blocks = max(
            1, int(geometry.total_blocks * self.config.op_ratio)
        )
        self.bad_blocks = BadBlockManager(
            geometry, factory_bad_blocks,
            spare_blocks=spare_blocks,
            watermark=self.config.spare_watermark,
        )
        self.regions = RegionManager(geometry, self.config.num_regions)
        self._rng = rng or random.Random(0)
        self._tm_degraded = self.telemetry.gauge(
            "noftl.degraded", layer="noftl"
        )
        self._tm_degraded.set(0)
        for region in self.regions.regions:
            space = PageMappedSpace(
                geometry,
                self.mapping,
                region.planes,
                self.stats,
                gc_policy=self.config.gc_policy,
                gc_low_water=self.config.gc_low_water,
                separate_streams=self.config.separate_streams,
                class_streams=self.config.write_streams,
                use_copyback=self.config.use_copyback,
                wear_level_delta=self.config.wear_level_delta,
                wear_level_check_every=self.config.wear_level_check_every,
                bad_blocks=self.bad_blocks.all_bad,
                placement_divisor=self.regions.num_regions,
                rng=self._rng,
                telemetry=self.telemetry,
                trace=self.trace,
                read_retry_limit=self.config.read_retry_limit,
                outage_retry_limit=self.config.outage_retry_limit,
                scrub_on_retry=self.config.scrub_on_retry,
                metric_prefix="noftl",
            )
            space.on_grown_bad = self._on_grown_bad
            region.space = space
        #: Optional plain callback invoked with every trimmed lpn.  The
        #: health monitor wires the WA ledger's ``forget`` here — trims
        #: never touch the flash, so the array hook cannot see them.
        self.on_trim = None

    def _on_grown_bad(self, pbn: int) -> None:
        """Spaces report retired blocks here; the degraded gauge tracks
        the spare-capacity watermark as capacity erodes."""
        self.bad_blocks.report_grown(pbn)
        self._tm_degraded.set(1 if self.bad_blocks.degraded else 0)

    @property
    def num_regions(self) -> int:
        return self.regions.num_regions

    @property
    def maintenance_active(self) -> bool:
        """True while *any* region's space is running GC / wear leveling.

        A cheap sampled signal (no events, no locking) for front-end
        admission control: when it holds, new background traffic should
        yield to foreground reads rather than pile onto busy dies.
        """
        return any(
            region.space.maintenance_active
            for region in self.regions.regions
        )

    def region_of_lpn(self, lpn: int) -> int:
        """Pure placement function — this is what lets the buffer manager
        partition dirty pages among region-bound db-writers."""
        return self.regions.region_of_lpn(lpn)

    def _space_of(self, lpn: int) -> PageMappedSpace:
        return self.regions.regions[self.regions.region_of_lpn(lpn)].space

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"lpn {lpn} outside logical space 0..{self.logical_pages - 1}"
            )

    # -- host interface (flash-command generators) ------------------------------

    def read(self, lpn: int):
        """Generator: newest version of ``lpn`` (None if never written)."""
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        data = yield from self._space_of(lpn).read(lpn)
        return data

    def write(self, lpn: int, data=None, hint: str = "hot",
              ctx: Optional[OpContext] = None):
        """Generator: out-of-place write with an optional temperature hint.

        ``hint`` may be ``"hot"`` (default, OLTP pages) or ``"cold"``
        (bulk loads, archival data) — DBMS knowledge the paper's
        integration strategy (ii) feeds into placement.

        With ``write_streams`` enabled, ``ctx`` carries more than blame:
        its resolved :func:`~repro.telemetry.data_class_of` picks the
        write's allocation stream (WAL / heap-hot / heap-cold / btree /
        map / temp / recovery), with the temperature hint splitting heap
        traffic and standing in entirely for unclassified writes.
        """
        self._check_lpn(lpn)
        if hint not in ("hot", "cold"):
            raise ValueError(f"unknown temperature hint: {hint!r}")
        # Degraded mode: spare capacity is below the safety floor — refuse
        # new writes (reads and trims keep working) so the administrator
        # can evacuate the device instead of wedging it completely.
        self.bad_blocks.check_writable()
        self.stats.host_writes += 1
        if self.config.write_streams:
            stream = stream_for(data_class_of(ctx), hint)
        else:
            stream = hint
        yield from self._space_of(lpn).write(lpn, data, stream=stream)

    def trim(self, lpn: int):
        """Generator (no flash I/O): the DBMS free-space manager reports a
        deallocated page; the mapping is dropped immediately so GC never
        relocates dead data."""
        self._check_lpn(lpn)
        self.stats.host_trims += 1
        if self.config.honor_trims:
            self._space_of(lpn).trim(lpn)
        # Whether or not the mapping honors it, the host has declared the
        # data dead — observers drop their lpn bindings either way.
        if self.on_trim is not None:
            self.on_trim(lpn)
        return
        yield  # pragma: no cover - generator form

    def is_fast_read(self, lpn: int) -> bool:
        """All reads are host-RAM lookups plus one flash read."""
        return True

    # -- recovery ----------------------------------------------------------------

    def recover(self):
        """Generator: rebuild the mapping table from OOB metadata.

        Compatibility wrapper over :meth:`mount`; returns the number of
        mappings recovered.
        """
        report = yield from self.mount()
        return report.mappings

    def mount(self):
        """Generator: full cold-start pipeline from nothing but the array.

        A cold start after a crash scans every page's spare area (cheap
        OOB reads) and rebuilds *all* host-RAM state from what it finds —
        this is the NoFTL answer to "where does the mapping live if the
        host crashes": the flash itself carries it.  Per page:

        * the OOB read is checksum-verified by the array, so a torn page
          (power cut mid-program, half-erased block, silent corruption)
          raises :class:`UncorrectableError` and is *rejected* — the
          mapping falls back to the newest intact copy and the WAL redo
          above reapplies whatever the torn page held;
        * the newest ``(lpn, seq)`` wins; exact ties — routine after an
          interrupted GC, because copyback preserves the source OOB —
          are broken deterministically toward the lowest ppn (both copies
          passed ECC, so their payloads are identical);
        * blocks with unreadable pages are quarantine evidence: they are
          reported grown-bad and kept out of the rebuilt pools, instead
          of trusting pre-crash ``suspect``/``quarantined`` host state
          that no longer exists.

        Allocation state (pools, occupied, active points) is rebuilt from
        the same scan, and the returned :class:`MountReport` carries what
        the db layer needs to restart its page allocator without peeking
        at pre-crash RAM.
        """
        tm = self.telemetry
        fresh = MappingState(self.geometry, self.logical_pages)
        report = MountReport()
        # Flat winner tables over the logical space (seq/ppn of the newest
        # intact copy seen so far) plus the first-seen order for reporting.
        newest_seq = _array("q", [0]) * self.logical_pages
        newest_ppn = _array("q", [UNMAPPED]) * self.logical_pages
        seen = bytearray(self.logical_pages)
        mapped: List[int] = []
        programmed_blocks: set = set()
        torn_blocks: set = set()
        streams_on = self.config.write_streams
        if streams_on:
            # Write-streams evidence, gathered in the same single pass:
            # which offsets of each block are programmed (bitmask), the
            # block's class uniformity (0 unseen, >0 a single class code,
            # -1 mixed or untagged), its newest sequence number, and each
            # page's class for the lpn_class rebuild below.
            pages_per_block = self.geometry.pages_per_block
            total_blocks = self.geometry.total_blocks
            block_mask = _array("q", [0]) * total_blocks
            block_cls = _array("l", [0]) * total_blocks
            block_seq = _array("q", [0]) * total_blocks
            cls_of_ppn = bytearray(self.geometry.total_pages)
        for ppn in range(self.geometry.total_pages):
            report.pages_scanned += 1
            try:
                result = yield ReadOob(ppn=ppn)
            except ReadUnwrittenError:
                continue
            except UncorrectableError:
                # Unreadable spare area: the page's mapping (if any) is
                # unrecoverable, but the block clearly holds programs —
                # and is evidence of torn/failing media.
                report.torn_pages += 1
                pbn = self.geometry.block_of_ppn(ppn)
                programmed_blocks.add(pbn)
                torn_blocks.add(pbn)
                continue
            pbn = self.geometry.block_of_ppn(ppn)
            programmed_blocks.add(pbn)
            oob = result.oob
            if streams_on and isinstance(oob, dict):
                code = oob.get("cls", 0)
                if code not in CODE_CLASSES:
                    code = 0
                block_mask[pbn] |= 1 << (ppn - pbn * pages_per_block)
                if code:
                    cls_of_ppn[ppn] = code
                    if block_cls[pbn] == 0:
                        block_cls[pbn] = code
                    elif block_cls[pbn] != code:
                        block_cls[pbn] = -1
                else:
                    # An untagged page poisons the block for frontier
                    # adoption: we cannot prove single-class occupancy.
                    block_cls[pbn] = -1
                seq_evidence = oob.get("seq", 0)
                if isinstance(seq_evidence, int) and \
                        seq_evidence > block_seq[pbn]:
                    block_seq[pbn] = seq_evidence
            if not isinstance(oob, dict) or "lpn" not in oob:
                continue
            lpn = oob["lpn"]
            seq = oob.get("seq", 0)
            if lpn >= self.logical_pages:
                continue
            if not seen[lpn] or seq > newest_seq[lpn]:
                if not seen[lpn]:
                    seen[lpn] = 1
                    mapped.append(lpn)
                newest_seq[lpn] = seq
                newest_ppn[lpn] = ppn
            elif seq == newest_seq[lpn]:
                # Copyback-preserved duplicate: both copies are intact
                # and identical; prefer the lowest ppn so the choice is a
                # pure function of device state, not of scan order.
                report.duplicate_ties += 1
                if ppn < newest_ppn[lpn]:
                    newest_ppn[lpn] = ppn
        for lpn in mapped:
            seq, ppn = newest_seq[lpn], newest_ppn[lpn]
            fresh.bind(lpn, ppn)
            pbn = self.geometry.block_of_ppn(ppn)
            if seq > fresh.block_write_time[pbn]:
                fresh.block_write_time[pbn] = seq
        # Swap in the recovered tables and rebuild every region's
        # allocation state from the same scan (programmed blocks are
        # occupied; erased blocks return to the free pools; evidence
        # blocks and the authoritative bad set stay out of both).
        self.mapping.l2p[:] = fresh.l2p
        self.mapping.p2l[:] = fresh.p2l
        self.mapping.valid_in_block[:] = fresh.valid_in_block
        self.mapping.block_write_time[:] = fresh.block_write_time
        self.mapping.clock = max(
            (newest_seq[lpn] for lpn in mapped), default=0
        )
        if streams_on and self.mapping.lpn_class is not None:
            # The class of a logical page is the class stamped on its
            # winning physical copy — stale copies lost the seq race and
            # with it any say over future placement.
            lpn_class = self.mapping.lpn_class
            for index in range(len(lpn_class)):
                lpn_class[index] = 0
            for lpn in mapped:
                lpn_class[lpn] = cls_of_ppn[newest_ppn[lpn]]
        for pbn in sorted(torn_blocks):
            if not self.bad_blocks.is_bad(pbn):
                self.bad_blocks.report_grown(pbn)
                self.stats.grown_bad_blocks += 1
        self._tm_degraded.set(1 if self.bad_blocks.degraded else 0)
        all_bad = self.bad_blocks.all_bad
        frontiers = None
        if streams_on:
            # Re-derive per-stream write points.  A block is adoptable as
            # a frontier iff it is intact (not torn/bad), holds a single
            # class, and its programmed pages form a contiguous prefix
            # from offset 0 that has not filled the block — exactly the
            # shape an interrupted append-point leaves behind.  Per
            # (plane, stream) the newest such block wins (ties toward the
            # lowest pbn, mirroring the mapping tie-break).
            best: dict = {}
            for pbn in programmed_blocks:
                if pbn in torn_blocks or pbn in all_bad:
                    continue
                code = block_cls[pbn]
                if code <= 0:
                    continue
                mask = block_mask[pbn]
                count = bin(mask).count("1")
                if count >= pages_per_block or mask != (1 << count) - 1:
                    continue
                key = (
                    self.geometry.die_of_block(pbn),
                    self.geometry.plane_of_block(pbn),
                    FOREGROUND_STREAMS[code],
                )
                rank = (block_seq[pbn], -pbn)
                incumbent = best.get(key)
                if incumbent is None or rank > incumbent[0]:
                    best[key] = (rank, pbn, count)
            frontiers = {
                pbn: (key[2], count)
                for key, (__, pbn, count) in best.items()
            }
            report.stream_frontiers = tuple(sorted(
                (pbn, stream, offset)
                for pbn, (stream, offset) in frontiers.items()
            ))
        for region in self.regions.regions:
            region.space.rebuild_allocation(
                programmed_blocks, bad_blocks=all_bad,
                quarantined=torn_blocks, frontiers=frontiers,
            )
        report.mappings = len(mapped)
        report.programmed_blocks = len(programmed_blocks)
        report.quarantined_blocks = tuple(sorted(torn_blocks))
        report.max_seq = self.mapping.clock
        report.max_lpn = max(mapped, default=-1)
        report.mapped_lpns = frozenset(mapped)
        tm.counter("noftl.mount.pages_scanned", layer="noftl").inc(
            report.pages_scanned)
        tm.counter("noftl.mount.mappings", layer="noftl").inc(report.mappings)
        tm.counter("noftl.mount.torn_pages", layer="noftl").inc(
            report.torn_pages)
        tm.counter("noftl.mount.duplicate_ties", layer="noftl").inc(
            report.duplicate_ties)
        tm.counter("noftl.mount.quarantined_blocks", layer="noftl").inc(
            len(torn_blocks))
        return report

    def verify_integrity(self) -> List[str]:
        """Cross-check mapping and allocation state; returns violations.

        Used by the crash harness as its structural oracle after a mount:
        l2p/p2l must agree both ways, per-block valid counts must match,
        free-pool blocks must hold no valid pages, and no bad/quarantined
        block may be available for allocation.
        """
        problems: List[str] = []
        mapping = self.mapping
        valid_count = [0] * self.geometry.total_blocks
        for lpn in range(self.logical_pages):
            ppn = mapping.l2p[lpn]
            if ppn == UNMAPPED:
                continue
            if mapping.p2l[ppn] != lpn:
                problems.append(
                    f"l2p/p2l disagree: lpn={lpn} -> ppn={ppn} -> "
                    f"{mapping.p2l[ppn]}"
                )
            valid_count[self.geometry.block_of_ppn(ppn)] += 1
        for ppn in range(self.geometry.total_pages):
            lpn = mapping.p2l[ppn]
            if lpn != UNMAPPED and mapping.l2p[lpn] != ppn:
                problems.append(
                    f"p2l/l2p disagree: ppn={ppn} -> lpn={lpn} -> "
                    f"{mapping.l2p[lpn]}"
                )
        for pbn in range(self.geometry.total_blocks):
            if valid_count[pbn] != mapping.valid_in_block[pbn]:
                problems.append(
                    f"valid_in_block[{pbn}]={mapping.valid_in_block[pbn]} "
                    f"but {valid_count[pbn]} mapped pages"
                )
        bad = self.bad_blocks.all_bad
        for region in self.regions.regions:
            space = region.space
            for plane in space._planes.values():
                free = set(plane.pool.peek_free())
                actives = {active[0] for active in plane.active.values()
                           if active is not None}
                for pbn in free:
                    if valid_count[pbn]:
                        problems.append(
                            f"free-pool block {pbn} holds "
                            f"{valid_count[pbn]} valid pages"
                        )
                for pbn in free | plane.occupied | actives:
                    if pbn in bad:
                        problems.append(f"bad block {pbn} is allocatable")
                    if pbn in space.quarantined_blocks:
                        problems.append(
                            f"quarantined block {pbn} is allocatable"
                        )
                overlap = free & plane.occupied
                if overlap:
                    problems.append(
                        f"pool/occupied overlap: {sorted(overlap)}"
                    )
                # GC victim buckets must mirror the occupied set exactly,
                # and each member's bucketed valid count must agree with
                # the mapping — otherwise O(1) victim selection could pick
                # a stale victim (or miss the true maximum-invalid block).
                members = set(plane.buckets)
                if members != plane.occupied:
                    problems.append(
                        f"victim buckets/occupied disagree: "
                        f"extra={sorted(members - plane.occupied)} "
                        f"missing={sorted(plane.occupied - members)}"
                    )
                for pbn in plane.occupied:
                    bucketed = plane.buckets.valid_of(pbn)
                    if bucketed != valid_count[pbn]:
                        problems.append(
                            f"bucket valid[{pbn}]={bucketed} but "
                            f"{valid_count[pbn]} mapped pages"
                        )
                    if mapping.block_watch[pbn] is not plane.buckets:
                        problems.append(
                            f"occupied block {pbn} has no bucket watcher"
                        )
        # A stale watcher slot on a non-occupied block would let future
        # bind/invalidate events mutate a plane's buckets behind its back.
        for region in self.regions.regions:
            space = region.space
            occupied_all = set()
            for plane in space._planes.values():
                occupied_all |= plane.occupied
            for pbn in region.blocks():
                if mapping.block_watch[pbn] is not None \
                        and pbn not in occupied_all:
                    problems.append(
                        f"stale bucket watcher on block {pbn}"
                    )
        return problems

    # -- introspection --------------------------------------------------------------

    def health(self) -> dict:
        """Device health as the administrator sees it: bad-block budget,
        spare capacity and the degraded (read-only) flag."""
        return self.bad_blocks.health()

    def occupancy(self) -> dict:
        per_region = [region.space.occupancy()
                      for region in self.regions.regions]
        return {
            "regions": len(per_region),
            "free_blocks": sum(r["free_blocks"] for r in per_region),
            "valid_pages": self.mapping.total_valid(),
            "per_region": per_region,
        }

    def snapshot(self) -> dict:
        data = self.stats.snapshot()
        data["bad_blocks"] = self.bad_blocks.health()
        data["occupancy"] = self.occupancy()
        return data

    def health_snapshot(self) -> dict:
        """Per-device health view in the same shape the FTLs export
        (``BaseFTL.health_snapshot``), so ``bench.health`` can cross-
        validate the WA ledger against either side of the NoFTL/FTL
        comparison without special cases.  Carries the host-side wear
        shadow per region; device truth lives in ``array.erase_counts``
        and the two are reported side by side to surface drift."""
        return {
            "ftl": "NoFTL",
            "stats": self.stats.snapshot(),
            "bad_blocks": self.bad_blocks.health(),
            "regions": [
                {
                    "occupancy": region.space.occupancy(),
                    "wear_shadow": region.space.wear_shadow(),
                }
                for region in self.regions.regions
            ],
        }
