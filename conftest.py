"""Root conftest: keep the suite runnable without optional plugins.

``pyproject.toml`` sets a per-test ``timeout`` for pytest-timeout (a DES
bug that stops the event queue draining hangs forever otherwise).  In a
minimal environment without the plugin, pytest would warn about the
unknown ini keys on every run — register them as inert options instead
so the configuration stays valid either way.
"""


def pytest_addoption(parser):
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        parser.addini("timeout", "per-test timeout (inert: plugin absent)")
        parser.addini("timeout_method",
                      "timeout mechanism (inert: plugin absent)")
