"""Device health observability: WA ledger classification, wear and
lifetime accounting, the live window engine, saturation detection, and
the ledger-vs-registry accounting identities on a real rig."""

import json

import pytest

from repro.bench.rigs import build_sync_noftl
from repro.core import NoFTLConfig
from repro.flash import Geometry
from repro.telemetry import (
    HealthMonitor,
    LoadWindowEngine,
    MetricsRegistry,
    OpContext,
    WriteAmplificationLedger,
    credit_busy,
    data_class_of,
    wear_report,
)


class TestDataClassResolution:
    def test_explicit_stamp_wins_leaf_first(self):
        root = OpContext("db-writer", data_class="heap")
        assert data_class_of(root) == "heap"
        # The child inherits the stamp through child()'s setdefault.
        assert data_class_of(root.child("txn")) == "heap"

    def test_maintenance_leaf_resolves_to_none(self):
        host = OpContext("db-writer", data_class="heap")
        gc = host.child("gc")
        # The adopting request's class says nothing about the moved page.
        assert data_class_of(gc) is None

    def test_origin_fallbacks(self):
        assert data_class_of(OpContext("txn-commit")) == "wal"
        assert data_class_of(OpContext("recovery")) == "recovery"
        assert data_class_of(OpContext("host")) is None

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            OpContext("host", data_class="parquet")


class TestWriteAmplificationLedger:
    def test_host_program_is_logical_and_learns_class(self):
        ledger = WriteAmplificationLedger()
        ctx = OpContext("db-writer", data_class="heap")
        ledger.record("program", 0, ctx, {"lpn": 42})
        assert ledger.logical_by_class == {"heap": 1}
        assert ledger.physical_by_class == {"heap": 1}
        assert ledger.class_of[42] == "heap"
        assert ledger.write_amplification("heap") == 1.0

    def test_maintenance_move_classified_by_learned_lpn(self):
        ledger = WriteAmplificationLedger()
        ledger.record("program", 0, OpContext("txn", data_class="btree"),
                      {"lpn": 7})
        # GC moves the page later: physical for btree, never logical.
        gc = OpContext("db-writer").child("gc")
        ledger.record("copyback", 1, gc, {"lpn": 7})
        assert ledger.logical_by_class == {"btree": 1}
        assert ledger.physical_by_class == {"btree": 2}
        assert ledger.maintenance_writes == 1
        assert ledger.write_amplification("btree") == 2.0
        assert ledger.physical_matrix[("btree", "gc")] == 1

    def test_maintenance_move_without_learned_class_is_unknown(self):
        ledger = WriteAmplificationLedger()
        ledger.record("program", 0, OpContext("gc"), {"lpn": 9})
        assert ledger.physical_by_class == {"unknown": 1}
        assert ledger.logical_writes == 0

    def test_map_writes_are_pure_overhead(self):
        ledger = WriteAmplificationLedger()
        # DFTL translation-page traffic: host origin, class "map".
        ledger.record("program", 0, OpContext("host", data_class="map"),
                      {"lpn": 3})
        assert ledger.physical_by_class == {"map": 1}
        assert ledger.logical_writes == 0
        assert ledger.write_amplification("map") is None
        # But the lpn class is still learned for later GC moves.
        assert ledger.class_of[3] == "map"

    def test_commit_fallback_classifies_as_wal(self):
        ledger = WriteAmplificationLedger()
        ledger.record("program", 2, OpContext("txn-commit"), {"lpn": 1})
        assert ledger.logical_by_class == {"wal": 1}

    def test_erases_accounted_by_cause_and_die(self):
        ledger = WriteAmplificationLedger()
        ledger.record("erase", 0, OpContext("gc"), None)
        ledger.record("erase", 0, OpContext("gc"), None)
        ledger.record("erase", 1, OpContext("wear-level"), None)
        assert ledger.total_erases == 3
        assert ledger.erases_by_cause == {"gc": 2, "wear-level": 1}
        assert ledger.erases_by_die == {0: 2, 1: 1}
        # Erases are not physical writes.
        assert ledger.physical_writes == 0

    def test_forget_drops_learned_class(self):
        ledger = WriteAmplificationLedger()
        ledger.record("program", 0, OpContext("txn", data_class="heap"),
                      {"lpn": 5})
        ledger.forget(5)
        ledger.record("copyback", 0, OpContext("gc"), {"lpn": 5})
        assert ledger.physical_by_class["unknown"] == 1

    def test_report_shape_and_rounding(self):
        ledger = WriteAmplificationLedger()
        ctx = OpContext("db-writer", data_class="heap")
        for lpn in range(3):
            ledger.record("program", 0, ctx, {"lpn": lpn})
        ledger.record("copyback", 0, OpContext("gc"), {"lpn": 0})
        ledger.record("erase", 0, OpContext("gc"), None)
        report = ledger.report()
        assert report["logical_writes"] == 3
        assert report["physical_writes"] == 4
        assert report["maintenance_writes"] == 1
        assert report["write_amplification"] == pytest.approx(4 / 3, abs=1e-4)
        # Classes with no traffic are omitted from per_class.
        assert set(report["per_class"]) == {"heap"}
        assert report["matrix"] == {"heap/db-writer": 3, "heap/gc": 1}
        assert report["erases"]["total"] == 1


class _FakeArray:
    """Just enough surface for wear_report."""

    def __init__(self, counts, bad=(), max_erase_cycles=None):
        self.erase_counts = list(counts)
        self._bad = set(bad)
        self.max_erase_cycles = max_erase_cycles

    def is_bad(self, pbn):
        return pbn in self._bad


class TestWearReport:
    def test_distribution_skew_and_cv(self):
        report = wear_report(_FakeArray([2, 4, 6, 8]), logical_writes=None)
        assert report["min"] == 2 and report["max"] == 8
        assert report["mean"] == pytest.approx(5.0)
        assert report["skew"] == pytest.approx(8 / 5, abs=1e-4)
        # population stddev of [2,4,6,8] is sqrt(5)
        assert report["cv"] == pytest.approx(5 ** 0.5 / 5.0, abs=1e-4)

    def test_bad_blocks_excluded_from_distribution(self):
        report = wear_report(_FakeArray([1, 1, 500], bad={2}))
        assert report["bad_blocks"] == 1
        assert report["max"] == 1
        # total_erases still counts the retired block's history.
        assert report["total_erases"] == 502

    def test_lifetime_projection_with_explicit_endurance(self):
        array = _FakeArray([10, 20], max_erase_cycles=100)
        report = wear_report(array, logical_writes=1000)
        life = report["lifetime"]
        assert life["endurance_cycles"] == 100
        assert life["endurance_assumed"] is False
        assert life["life_used"] == pytest.approx(0.2)
        # 1000 host writes cost 20 cycles on the hottest block; 80 left.
        assert life["remaining_host_writes"] == 1000 * 80 // 20
        assert life["projected_total_host_writes"] == 1000 * 100 // 20

    def test_assumed_endurance_is_flagged(self):
        report = wear_report(_FakeArray([1]), logical_writes=10,
                             assumed_endurance=500)
        life = report["lifetime"]
        assert life["endurance_assumed"] is True
        assert life["endurance_cycles"] == 500

    def test_unworn_device_has_no_projection(self):
        report = wear_report(_FakeArray([0, 0]), logical_writes=10)
        assert report["lifetime"]["remaining_host_writes"] is None
        assert report["skew"] is None


class TestCreditBusy:
    def test_exact_split_across_boundary(self):
        series = [0.0, 0.0, 0.0]
        credit_busy(series, t0=0.0, window_us=10.0, start=8.0,
                    duration_us=6.0)
        assert series == pytest.approx([2.0, 4.0, 0.0])

    def test_before_first_window_clamps_to_first(self):
        series = [0.0, 0.0]
        credit_busy(series, t0=100.0, window_us=10.0, start=50.0,
                    duration_us=5.0)
        assert series == pytest.approx([5.0, 0.0])

    def test_past_last_edge_lands_in_last(self):
        series = [0.0, 0.0, 0.0]
        credit_busy(series, t0=0.0, window_us=10.0, start=15.0,
                    duration_us=100.0)
        # 5us finish window 1, 10us fill window 2, the 85us overhang
        # past the final edge stays in the last window: total conserved.
        assert series == pytest.approx([0.0, 5.0, 95.0])
        assert sum(series) == pytest.approx(100.0)


class TestLoadWindowEngine:
    def test_ops_bucket_by_completion_time(self):
        engine = LoadWindowEngine(window_us=10.0)
        engine.note_op(5.0, "write", 3.0, queued=2, dirty_ratio=0.5)
        engine.note_op(7.0, "write", 5.0, queued=4)
        engine.note_op(25.0, "read", 1.0)
        series = engine.series()
        assert series["windows"] == [0.0, 10.0, 20.0]
        assert series["per_class"]["write"]["count"] == [2, 0, 0]
        assert series["per_class"]["read"]["count"] == [0, 0, 1]
        assert series["queue_depth"] == [4, 0, 0]
        assert series["dirty_ratio"][0] == pytest.approx(0.5)

    def test_busy_splits_like_credit_busy(self):
        engine = LoadWindowEngine(window_us=10.0)
        engine.note_busy(8.0, die=0, latency_us=6.0)
        series = engine.series()
        assert series["die_busy"][0] == pytest.approx([0.2, 0.4])

    def test_shed_onset_beats_latency_knee(self):
        engine = LoadWindowEngine(window_us=10.0)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            engine.note_op(t, "write", 10.0)
        engine.note_shed(32.0, "write")
        point = engine.saturation()
        assert point["kind"] == "shed-onset"
        assert point["window"] == 3
        assert point["at_us"] == pytest.approx(30.0)

    def test_latency_knee_detected_against_baseline(self):
        engine = LoadWindowEngine(window_us=10.0)
        # Three calm baseline windows, then a 10x p99 explosion.
        for widx in range(3):
            for k in range(6):
                engine.note_op(widx * 10.0 + k, "write", 10.0)
        for k in range(6):
            engine.note_op(30.0 + k, "write", 100.0)
        point = engine.saturation(knee_factor=4.0)
        assert point["kind"] == "latency-knee"
        assert point["window"] == 3
        assert point["p99_us"] == pytest.approx(100.0)
        assert point["baseline_p99_us"] == pytest.approx(10.0)

    def test_sparse_windows_ignored_for_knee(self):
        engine = LoadWindowEngine(window_us=10.0)
        for widx in range(3):
            for k in range(6):
                engine.note_op(widx * 10.0 + k, "write", 10.0)
        # A single slow op is below min_ops: not a knee.
        engine.note_op(35.0, "write", 500.0)
        assert engine.saturation(min_ops=5) is None

    def test_unsaturated_run_reports_none(self):
        engine = LoadWindowEngine(window_us=10.0)
        for t in range(50):
            engine.note_op(float(t), "write", 10.0)
        assert engine.saturation() is None
        assert engine.series()["sheds"] == [0] * 5

    def test_empty_engine(self):
        engine = LoadWindowEngine(window_us=10.0)
        assert engine.saturation() is None
        assert engine.series()["windows"] == []


def _gauge_value(registry, name):
    (entry,) = [g for g in registry.snapshot()["gauges"]
                if g["name"] == name]
    return entry["value"]


class TestGaugeMergePolicies:
    def test_default_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("frontend.queue_depth").set(3)
        b.gauge("frontend.queue_depth").set(5)
        a.merge_from(b)
        assert _gauge_value(a, "frontend.queue_depth") == 8

    def test_degraded_indicator_merges_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("noftl.degraded").set(1)
        b.gauge("noftl.degraded").set(0)
        a.merge_from(b)
        # sum would also give 1 here; assert the policy, not the luck:
        b2 = MetricsRegistry()
        b2.gauge("noftl.degraded").set(1)
        a.merge_from(b2)
        assert _gauge_value(a, "noftl.degraded") == 1

    def test_last_policy_overwrites(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge_merge("temp.level", "last")
        a.gauge("temp.level").set(9)
        b.gauge("temp.level").set(2)
        a.merge_from(b)
        assert _gauge_value(a, "temp.level") == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().set_gauge_merge("x", "median")

    def test_merge_carries_histograms_not_collectors(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("lat", layer="x").observe(5.0)
        b.register_collector("only.remote", lambda: {"k": 1})
        a.merge_from(b)
        snap = a.snapshot()
        assert snap["histograms"]
        # Collectors are bound to the source registry's objects: never
        # merged across registries.
        assert "only.remote" not in snap.get("collectors", {})


def _churn_rig(seed: int = 7):
    """A tiny sync NoFTL device driven hard enough to trigger GC, with a
    HealthMonitor attached.  Returns (monitor, registry, storage)."""
    geometry = Geometry(channels=1, chips_per_channel=1, dies_per_chip=2,
                        planes_per_die=1, blocks_per_plane=10,
                        pages_per_block=8, page_bytes=512, oob_bytes=64)
    telemetry = MetricsRegistry()
    storage, array = build_sync_noftl(
        geometry, config=NoFTLConfig(num_regions=2, op_ratio=0.25),
        seed=seed, telemetry=telemetry)
    monitor = HealthMonitor()
    monitor.attach_array(array)
    monitor.install(telemetry)
    ctx = OpContext("db-writer", data_class="heap")
    logical = storage.logical_pages
    for round_no in range(6):
        for lpn in range(logical):
            storage.write(lpn, hint="hot", ctx=ctx)
    return monitor, telemetry, storage


class TestLedgerOnRealRig:
    def test_ledger_agrees_with_registry_and_ftl_stats(self):
        monitor, telemetry, storage = _churn_rig()
        ledger = monitor.ledger
        stats = storage.manager.stats
        # Overwriting the whole device 6x must have forced GC.
        assert ledger.maintenance_writes > 0
        # Identity 1: ledger physical writes == every program+copyback
        # the registry counted.
        registry_physical = (telemetry.value("flash.commands", op="program")
                             + telemetry.value("flash.commands",
                                               op="copyback"))
        assert ledger.physical_writes == registry_physical
        # Identity 2: ledger erases == registry erases.
        assert ledger.total_erases == telemetry.value("flash.commands",
                                                      op="erase")
        # Identity 3: maintenance writes == the manager's own relocation
        # counter (fault-free run: no scrub/wear-level traffic).
        assert ledger.maintenance_writes == stats.gc_relocations
        # Identity 4: logical writes == host writes the manager saw.
        assert ledger.logical_writes == stats.host_writes
        # Every physical write resolved to the stamped class.
        assert set(ledger.physical_by_class) == {"heap"}
        wa = ledger.write_amplification()
        assert wa is not None and wa > 1.0

    def test_wear_flows_into_monitor_report(self):
        monitor, _, _ = _churn_rig()
        report = monitor.report()
        wear = report["wear"]
        assert wear["total_erases"] == monitor.ledger.total_erases
        assert wear["lifetime"]["remaining_host_writes"] is not None
        assert wear["skew"] >= 1.0
        # No clock attached: the window series stays empty, and the run
        # never saturates.
        assert report["windows"]["windows"] == []
        assert report["saturation"]["saturated"] is False

    def test_health_report_is_deterministic(self):
        first = _churn_rig(seed=13)[0].report()
        second = _churn_rig(seed=13)[0].report()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))


class TestHealthCollectors:
    def test_snapshot_carries_health_sections(self):
        monitor, telemetry, _ = _churn_rig()
        snap = telemetry.snapshot()
        collectors = snap["collectors"]
        for key in ("health.wa", "health.wear", "health.windows",
                    "health.saturation"):
            assert key in collectors
        assert collectors["health.wa"]["write_amplification"] == \
            pytest.approx(monitor.ledger.write_amplification(), abs=1e-4)
