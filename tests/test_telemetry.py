"""Telemetry subsystem: registry semantics, histograms, tracing, and the
cross-layer wiring (flash -> FTL -> NoFTL -> DBMS -> bench)."""

import json

import pytest

from repro.bench.reporting import emit, export_metrics
from repro.bench.rigs import build_sync_noftl, geometry_for_footprint
from repro.core import NoFTLConfig
from repro.sim.stats import percentile
from repro.telemetry import (
    EventTrace,
    MetricsRegistry,
    flash_totals,
    sum_per_die,
)
from repro.workloads import replay_trace
from repro.bench.fig3 import record_trace


class TestRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("flash.commands", die=0, op="erase")
        b = registry.counter("flash.commands", op="erase", die=0)
        assert a is b  # label order is canonicalized
        a.inc()
        assert b.value == 1

    def test_counters_reject_negative_increments(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_value_sums_over_label_superset(self):
        registry = MetricsRegistry()
        registry.counter("flash.commands", die=0, op="erase").inc(3)
        registry.counter("flash.commands", die=1, op="erase").inc(4)
        registry.counter("flash.commands", die=0, op="read").inc(9)
        registry.counter("other", die=0, op="erase").inc(100)
        assert registry.value("flash.commands", op="erase") == 7
        assert registry.value("flash.commands", die=0) == 12
        assert registry.value("flash.commands") == 16
        assert registry.value("flash.commands", op="trim") == 0

    def test_series_groups_by_one_label(self):
        registry = MetricsRegistry()
        registry.counter("flash.commands", die=0, op="copyback").inc(5)
        registry.counter("flash.commands", die=1, op="copyback").inc(7)
        registry.counter("flash.commands", die=1, op="erase").inc(2)
        assert registry.series("flash.commands", "die", op="copyback") == {
            0: 5, 1: 7,
        }
        assert sum_per_die(registry, "copyback") == {0: 5, 1: 7}

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue_depth", die=3)
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_snapshot_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a", layer="flash").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(4.0)
        registry.register_collector("extra", lambda: {"k": "v"})
        snap = json.loads(registry.to_json())
        assert snap["counters"][0]["value"] == 2
        assert snap["collectors"]["extra"] == {"k": "v"}

    def test_logical_clock_without_sim(self):
        registry = MetricsRegistry()
        first, second = registry.now(), registry.now()
        assert second > first
        registry.set_clock(lambda: 42.0)
        assert registry.now() == 42.0

    def test_merge_counters_from(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n", die=0).inc(1)
        right.counter("n", die=0).inc(2)
        right.counter("n", die=1).inc(3)
        left.merge_counters_from(right)
        assert left.value("n") == 6
        assert left.value("n", die=1) == 3


class TestHistogram:
    def test_percentiles_match_sim_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", layer="flash")
        values = [float(v * v % 97) for v in range(50)]
        for value in values:
            histogram.observe(value)
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert histogram.pct(q) == percentile(values, q)
        assert histogram.count == 50
        assert histogram.mean == pytest.approx(sum(values) / 50)


class TestEventTrace:
    def test_ring_buffer_overflow_keeps_newest(self):
        trace = EventTrace(capacity=4)
        for index in range(10):
            trace.emit("tick", index=index)
        assert trace.emitted == 10
        assert trace.dropped == 6
        kept = [event.fields["index"] for event in trace.events]
        assert kept == [6, 7, 8, 9]

    def test_disabled_trace_is_free(self):
        trace = EventTrace(capacity=4, enabled=False)
        trace.emit("tick")
        assert trace.emitted == 0
        assert len(trace.events) == 0

    def test_span_records_duration_with_fake_clock(self):
        clock = {"now": 0.0}
        registry = MetricsRegistry(clock=lambda: clock["now"])
        trace = EventTrace(clock=registry.now)
        histogram = registry.histogram("span_us")
        with trace.span("gc.collect", histogram=histogram, victim=7) as span:
            clock["now"] = 10.0
            span.note(moved=3)
        kinds = [event.kind for event in trace.events]
        assert kinds == ["gc.collect:begin", "gc.collect:end"]
        end = trace.events[-1].fields
        assert end["victim"] == 7 and end["moved"] == 3
        assert end["duration_us"] == 10.0
        assert histogram.samples == [10.0]

    def test_span_marks_errors(self):
        trace = EventTrace()
        with pytest.raises(RuntimeError):
            with trace.span("wl.migrate"):
                raise RuntimeError("boom")
        end = trace.events[-1]
        assert end.kind == "wl.migrate:end"
        assert end.fields["error"] == "RuntimeError"

    def test_jsonl_sink(self, tmp_path):
        sink_path = tmp_path / "trace.jsonl"
        with open(sink_path, "w") as sink:
            trace = EventTrace(capacity=2, sink=sink)
            for index in range(5):
                trace.emit("tick", index=index)
        lines = [json.loads(line)
                 for line in sink_path.read_text().splitlines()]
        # The sink sees every event, even ones the ring dropped.
        assert [line["index"] for line in lines] == [0, 1, 2, 3, 4]


class TestReporting:
    def test_emit_respects_repro_quiet(self, monkeypatch, capsys):
        written = []
        from repro.bench import reporting
        monkeypatch.setattr(reporting, "_EMIT_OVERRIDE", written.append)
        monkeypatch.setenv("REPRO_QUIET", "1")
        emit("should vanish")
        assert written == []
        monkeypatch.setenv("REPRO_QUIET", "0")
        emit("should appear")
        assert written == ["should appear"]

    def test_export_metrics_writes_json(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
        registry = MetricsRegistry()
        registry.counter("flash.commands", die=0, op="erase").inc(5)
        path = export_metrics("unit", registry, extra={"note": "hi"})
        data = json.loads(open(path).read())
        assert data["extra"] == {"note": "hi"}
        assert data["counters"][0]["value"] == 5


class TestStackSmoke:
    def test_tpcc_rig_produces_per_die_gc_counters(self):
        """A short TPC-C run replayed into a sized NoFTL device must leave
        nonzero erase and copyback counts on every die of the registry."""
        trace = record_trace("tpcc", duration_us=400_000, scale=0.3, seed=5)
        geometry = geometry_for_footprint(trace.max_page() + 1,
                                          utilization=0.85, dies=2)
        storage, array = build_sync_noftl(
            geometry=geometry, seed=5, config=NoFTLConfig(op_ratio=0.12))
        report = replay_trace(trace, storage)

        registry = array.telemetry
        erases = sum_per_die(registry, "erase")
        copybacks = sum_per_die(registry, "copyback")
        assert set(erases) == set(range(geometry.total_dies))
        assert all(count > 0 for count in erases.values())
        assert all(count > 0 for count in copybacks.values())
        # The registry's totals agree with the array's legacy counters
        # and with what the replay report says.
        totals = flash_totals(registry)
        assert totals["erase"] == array.counters.erases == report.erases
        assert totals["copyback"] == array.counters.copybacks \
            == report.copybacks
        assert totals["program"] == array.counters.programs
        # FTL-layer instruments landed in the same registry.
        assert registry.value("ftl.gc.collections") > 0
        assert registry.value("ftl.relocations") == report.relocations > 0
