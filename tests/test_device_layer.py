"""Tests for the block-device and native-device front-ends."""

import pytest

from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.device import (
    BlockDevice,
    NativeFlashDevice,
    SyncBlockDevice,
    SyncNativeFlashDevice,
)
from repro.flash import (
    FlashArray,
    Geometry,
    SLC_TIMING,
    SimExecutor,
    SimFlashDevice,
    SyncExecutor,
    SyncFlashDevice,
)
from repro.ftl import PageMapFTL
from repro.sim import Simulator

GEO = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_blockdev(ncq_depth=32, controller_slots=1):
    sim = Simulator()
    array = FlashArray(GEO, SLC_TIMING)
    executor = SimExecutor(SimFlashDevice(sim, array))
    ftl = PageMapFTL(GEO, op_ratio=0.25)
    return sim, BlockDevice(sim, ftl, executor, ncq_depth=ncq_depth,
                            controller_slots=controller_slots)


class TestBlockDeviceDES:
    def test_write_read_roundtrip(self):
        sim, device = make_blockdev()

        def proc():
            yield from device.write(3, data=b"three")
            value = yield from device.read(3)
            return value

        assert sim.run_process(proc()) == b"three"
        assert device.read_latency.count == 1
        assert device.write_latency.count == 1

    def test_ncq_depth_limits_concurrency(self):
        sim, device = make_blockdev(ncq_depth=2)

        def seed():
            for lpn in range(8):
                yield from device.write(lpn, data=lpn)

        sim.run_process(seed())

        def reader(lpn):
            yield from device.read(lpn)

        for lpn in range(8):
            sim.process(reader(lpn))
        sim.run()
        # more requests than NCQ slots -> some queued at the interface
        assert device.ncq.total_waits > 0

    def test_writes_serialize_on_controller(self):
        sim, device = make_blockdev()

        def writer(lpn):
            yield from device.write(lpn, data=lpn)

        for lpn in range(4):
            sim.process(writer(lpn))
        sim.run()
        assert device.controller.total_waits >= 3

    def test_reads_bypass_controller_for_pagemap(self):
        sim, device = make_blockdev()

        def seed():
            for lpn in range(4):
                yield from device.write(lpn, data=lpn)

        sim.run_process(seed())
        waits_after_writes = device.controller.total_waits

        def reader(lpn):
            yield from device.read(lpn)

        for lpn in range(4):
            sim.process(reader(lpn))
        sim.run()
        assert device.controller.total_waits == waits_after_writes

    def test_invalid_ncq_rejected(self):
        with pytest.raises(ValueError):
            make_blockdev(ncq_depth=0)

    def test_trim_travels_the_full_host_path(self):
        """DATASET MANAGEMENT is symmetric with read/write: it pays the
        interface overhead, records a latency sample, and emits a
        ``host.op`` trace event — it is not a free mapping mutation."""
        sim, device = make_blockdev()

        def proc():
            yield from device.write(5, data=b"five")
            yield from device.trim(5)

        sim.run_process(proc())
        assert device.trim_latency.count == 1
        sample = device.trim_latency.samples[0]
        assert sample >= device.interface_overhead_us
        kinds = [(e.fields.get("op"), e.kind) for e in device.trace.events
                 if e.kind == "host.op"]
        assert ("trim", "host.op") in kinds
        assert ("write", "host.op") in kinds

    def test_concurrent_trims_serialize_on_controller(self):
        sim, device = make_blockdev()

        def seed():
            for lpn in range(4):
                yield from device.write(lpn, data=lpn)

        sim.run_process(seed())
        waits_before = device.controller.total_waits

        def trimmer(lpn):
            yield from device.trim(lpn)

        for lpn in range(4):
            sim.process(trimmer(lpn))
        sim.run()
        # trims mutate mapping state, so like writes they contend for
        # the controller slot instead of bypassing it as reads do
        assert device.controller.total_waits >= waits_before + 3
        assert device.trim_latency.count == 4


class TestSyncBlockDevice:
    def test_roundtrip_and_trim(self):
        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))
        device = SyncBlockDevice(PageMapFTL(GEO, op_ratio=0.25), executor)
        device.write(7, data="seven")
        assert device.read(7) == "seven"
        device.trim(7)
        assert device.logical_pages == device.ftl.logical_pages


class TestNativeDevice:
    def test_identify_reports_geometry(self):
        sim = Simulator()
        native = NativeFlashDevice(SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING)))

        def proc():
            info = yield from native.identify()
            return info

        info = sim.run_process(proc())
        assert info["total_dies"] == GEO.total_dies
        assert info["channels"] == GEO.channels

    def test_native_command_roundtrip(self):
        sim = Simulator()
        native = NativeFlashDevice(SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING)))

        def proc():
            yield from native.program_page(0, data=b"raw", oob={"lpn": 0})
            data, oob = yield from native.read_page(0)
            meta = yield from native.read_oob(0)
            return data, oob, meta

        data, oob, meta = sim.run_process(proc())
        assert data == b"raw"
        assert oob == {"lpn": 0}
        assert meta == {"lpn": 0}
        assert native.latency.count == 3

    def test_sync_native_full_cycle(self):
        device = SyncNativeFlashDevice(SyncFlashDevice(FlashArray(GEO, SLC_TIMING)))
        assert device.identify()["page_bytes"] == GEO.page_bytes
        device.program_page(0, data=b"a", oob="m")
        blocks = GEO.blocks_of_plane(0, 0)
        device.copyback(0, GEO.ppn_of(blocks[1], 0))
        data, oob = device.read_page(GEO.ppn_of(blocks[1], 0))
        assert data == b"a"
        assert oob == "m"
        device.erase_block(0)


class TestNoFTLStorageDES:
    def test_roundtrip_with_region_locks(self):
        sim = Simulator()
        array = FlashArray(GEO, SLC_TIMING)
        executor = SimExecutor(SimFlashDevice(sim, array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        storage = NoFTLStorage(sim, manager, executor)

        def proc():
            yield from storage.write(5, data=b"five")
            value = yield from storage.read(5)
            return value

        assert sim.run_process(proc()) == b"five"

    def test_concurrent_writers_same_region_contend(self):
        sim = Simulator()
        array = FlashArray(GEO, SLC_TIMING)
        executor = SimExecutor(SimFlashDevice(sim, array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        storage = NoFTLStorage(sim, manager, executor)
        region0_lpn = 0
        same_region_lpn = manager.num_regions  # also region 0

        def writer(lpn):
            yield from storage.write(lpn, data=lpn)

        sim.process(writer(region0_lpn))
        sim.process(writer(same_region_lpn))
        sim.run()
        assert storage.region_lock_contention()["total_waits"] == 1

    def test_concurrent_writers_different_regions_do_not_contend(self):
        sim = Simulator()
        array = FlashArray(GEO, SLC_TIMING)
        executor = SimExecutor(SimFlashDevice(sim, array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        storage = NoFTLStorage(sim, manager, executor)

        def writer(lpn):
            yield from storage.write(lpn, data=lpn)

        for region in range(manager.num_regions):
            sim.process(writer(region))
        sim.run()
        assert storage.region_lock_contention()["total_waits"] == 0
