"""Unit tests for the DES kernel (repro.sim.core)."""

import random

import pytest

from repro.sim import AnyOf, Granted, Interrupt, Resource, Simulator, Store


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)
        yield sim.timeout(7.5)
        return sim.now

    assert sim.run_process(proc()) == 12.5
    assert sim.now == 12.5


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(0)
        order.append(name)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert order == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(1, value="hello")
        return value

    assert sim.run_process(proc()) == "hello"


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3)
        gate.succeed(42)

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(3, 42)]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert proc.value == "caught boom"


def test_process_return_value_propagates_through_subprocess():
    sim = Simulator()

    def inner():
        yield sim.timeout(2)
        return "inner-done"

    def outer():
        result = yield sim.process(inner())
        return result + "!"

    assert sim.run_process(outer()) == "inner-done!"


def test_yield_from_composition():
    sim = Simulator()

    def step(delay):
        yield sim.timeout(delay)
        return delay * 10

    def whole():
        a = yield from step(1)
        b = yield from step(2)
        return a + b

    assert sim.run_process(whole()) == 30
    assert sim.now == 3


def test_waiting_on_already_processed_event():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def late_waiter():
        yield sim.timeout(5)
        value = yield gate
        return value

    assert sim.run_process(late_waiter()) == "early"
    assert sim.now == 5


def test_exception_in_process_propagates_from_run_process():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError, match="kaput"):
        sim.run_process(bad())


def test_run_until_stops_the_clock():
    sim = Simulator()
    hits = []

    def ticker():
        while True:
            yield sim.timeout(10)
            hits.append(sim.now)

    sim.process(ticker())
    sim.run(until=35)
    assert hits == [10, 20, 30]
    assert sim.now == 35


def test_run_until_past_raises():
    sim = Simulator()
    sim.run_process(iter_timeout(sim, 10))
    with pytest.raises(ValueError):
        sim.run(until=5)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(100, value="slow")
        fired = yield AnyOf(sim, [fast, slow])
        return list(fired.values())

    assert sim.run_process(proc()) == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        first = sim.timeout(1, value=1)
        second = sim.timeout(5, value=2)
        fired = yield sim.all_of([first, second])
        return sorted(fired.values()), sim.now

    values, when = sim.run_process(proc())
    assert values == [1, 2]
    assert when == 5


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def interrupter(target):
        yield sim.timeout(3)
        target.interrupt("wake-up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(3, "wake-up")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_anyof_detaches_callbacks_from_losing_events():
    """A long-lived event raced against timeouts in a loop must not
    accumulate one dead condition callback per race (the leak)."""
    sim = Simulator()
    gate = sim.event()

    def racer():
        for __ in range(50):
            fired = yield AnyOf(sim, [gate, sim.timeout(1)])
            assert gate not in fired

    sim.run_process(racer())
    assert gate.callbacks == []


def test_anyof_detaches_losers_on_failure():
    sim = Simulator()
    survivor = sim.event()

    def proc():
        doomed = sim.event()
        condition = AnyOf(sim, [survivor, doomed])
        doomed.fail(ValueError("boom"))
        try:
            yield condition
        except ValueError:
            return "failed"

    assert sim.run_process(proc()) == "failed"
    assert survivor.callbacks == []


def test_granted_returns_value_without_suspending():
    sim = Simulator()

    def proc():
        before = sim.now
        value = yield from Granted("instant")
        assert sim.now == before  # no event fired, no time passed
        empty = yield from Granted()
        return value, empty

    assert sim.run_process(proc()) == ("instant", None)


def test_granted_is_reusable():
    sim = Simulator()
    shared = Granted(7)

    def proc():
        first = yield from shared
        second = yield from shared
        return first + second

    assert sim.run_process(proc()) == 14


def test_determinism_same_seed_same_schedule():
    def build_and_run():
        sim = Simulator()
        rng = random.Random(7)
        trace = []

        def worker(name):
            for __ in range(5):
                yield sim.timeout(rng.randint(1, 9))
                trace.append((sim.now, name))

        for i in range(3):
            sim.process(worker(f"w{i}"))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


# -- golden-run determinism ---------------------------------------------------
#
# The scenario below exercises every scheduling path of the kernel; the
# constants were captured once and must never change: any kernel
# optimization (fast lane, proxy elimination, dispatch inlining, ...)
# has to fire the exact same events in the exact same order at the exact
# same simulated times.  If an intentional *semantic* change ever breaks
# this, recapture the constants and justify the diff in review.

KERNEL_GOLDEN_NOW = 1000.0
KERNEL_GOLDEN_LOG = [
    (1.0, 'w2:slept'),
    (1.0, 'jitter'),
    (1.0, 'w2:acquired'),
    (2.0, 'jitter'),
    (2.0, "race=['fast']"),
    (4.0, 'w0:slept'),
    (4.0, 'w1:slept'),
    (4.0, 'jitter'),
    (4.0, 'w0:acquired'),
    (4.0, 'w2:zero'),
    (5.0, 'g0:gate=open'),
    (5.0, 'g1:gate=open'),
    (5.0, 'r0:got=first'),
    (5.0, 'r1:got=second'),
    (5.0, 'g0:again=open'),
    (5.0, 'g1:again=open'),
    (6.0, 'jitter'),
    (6.0, 'caught:boom'),
    (6.0, "all=['a', 'b']"),
    (6.0, 'jitter'),
    (7.0, 'interrupted:now'),
    (7.0, 'w1:acquired'),
    (7.0, 'w0:zero'),
    (8.0, 'jitter'),
    (10.0, 'w1:zero'),
]


def kernel_scenario():
    """A deterministic scenario exercising every scheduling path of the
    kernel: zero-delay and delayed timeouts, succeed/fail events, yields
    on already-processed events, AnyOf/AllOf, interrupts, FIFO resources
    and stores.  Returns the exact (time, tag) firing order."""
    sim = Simulator()
    log = []
    gate = sim.event()
    resource = Resource(sim, capacity=1)
    store = Store(sim)

    def worker(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, f"{name}:slept"))
        yield resource.request()
        log.append((sim.now, f"{name}:acquired"))
        yield sim.timeout(3)
        resource.release()
        yield sim.timeout(0)
        log.append((sim.now, f"{name}:zero"))

    def opener():
        yield sim.timeout(5)
        gate.succeed("open")
        store.put("first")
        store.put("second")

    def gate_waiter(name):
        value = yield gate
        log.append((sim.now, f"{name}:gate={value}"))
        # gate is already processed from here on: the re-yield path
        again = yield gate
        log.append((sim.now, f"{name}:again={again}"))

    def store_reader(name):
        item = yield store.get()
        log.append((sim.now, f"{name}:got={item}"))

    def racer():
        fast = sim.timeout(2, value="fast")
        slow = sim.timeout(50, value="slow")
        fired = yield AnyOf(sim, [fast, slow])
        log.append((sim.now, f"race={sorted(fired.values())}"))
        both = yield sim.all_of([sim.timeout(1, value="a"),
                                 sim.timeout(4, value="b")])
        log.append((sim.now, f"all={sorted(both.values())}"))

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as exc:
            log.append((sim.now, f"interrupted:{exc.cause}"))

    def interrupter(target):
        yield sim.timeout(7)
        target.interrupt("now")

    def failer():
        yield sim.timeout(6)
        doomed = sim.event()
        doomed.fail(ValueError("boom"))
        try:
            yield doomed
        except ValueError as exc:
            log.append((sim.now, f"caught:{exc}"))

    for index, delay in enumerate((4, 4, 1)):
        sim.process(worker(f"w{index}", delay))
    sim.process(opener())
    sim.process(gate_waiter("g0"))
    sim.process(gate_waiter("g1"))
    sim.process(store_reader("r0"))
    sim.process(store_reader("r1"))
    sim.process(racer())
    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.process(failer())
    rng = random.Random(13)

    def jitter():
        for __ in range(6):
            yield sim.timeout(rng.choice((0, 1, 2)))
            log.append((sim.now, "jitter"))

    sim.process(jitter())
    sim.run()
    return sim.now, log


def test_kernel_golden_run_matches_recorded_schedule():
    now, log = kernel_scenario()
    assert now == KERNEL_GOLDEN_NOW
    assert log == KERNEL_GOLDEN_LOG


def test_kernel_golden_run_is_repeatable():
    assert kernel_scenario() == kernel_scenario()


def test_events_processed_counts_dispatches():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        yield sim.timeout(1)

    sim.run_process(proc())
    # startup resume + zero-delay timeout + delayed timeout
    assert sim.events_processed == 3
