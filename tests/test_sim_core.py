"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import AnyOf, Interrupt, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)
        yield sim.timeout(7.5)
        return sim.now

    assert sim.run_process(proc()) == 12.5
    assert sim.now == 12.5


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(0)
        order.append(name)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert order == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(1, value="hello")
        return value

    assert sim.run_process(proc()) == "hello"


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3)
        gate.succeed(42)

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(3, 42)]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert proc.value == "caught boom"


def test_process_return_value_propagates_through_subprocess():
    sim = Simulator()

    def inner():
        yield sim.timeout(2)
        return "inner-done"

    def outer():
        result = yield sim.process(inner())
        return result + "!"

    assert sim.run_process(outer()) == "inner-done!"


def test_yield_from_composition():
    sim = Simulator()

    def step(delay):
        yield sim.timeout(delay)
        return delay * 10

    def whole():
        a = yield from step(1)
        b = yield from step(2)
        return a + b

    assert sim.run_process(whole()) == 30
    assert sim.now == 3


def test_waiting_on_already_processed_event():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def late_waiter():
        yield sim.timeout(5)
        value = yield gate
        return value

    assert sim.run_process(late_waiter()) == "early"
    assert sim.now == 5


def test_exception_in_process_propagates_from_run_process():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError, match="kaput"):
        sim.run_process(bad())


def test_run_until_stops_the_clock():
    sim = Simulator()
    hits = []

    def ticker():
        while True:
            yield sim.timeout(10)
            hits.append(sim.now)

    sim.process(ticker())
    sim.run(until=35)
    assert hits == [10, 20, 30]
    assert sim.now == 35


def test_run_until_past_raises():
    sim = Simulator()
    sim.run_process(iter_timeout(sim, 10))
    with pytest.raises(ValueError):
        sim.run(until=5)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(100, value="slow")
        fired = yield AnyOf(sim, [fast, slow])
        return list(fired.values())

    assert sim.run_process(proc()) == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        first = sim.timeout(1, value=1)
        second = sim.timeout(5, value=2)
        fired = yield sim.all_of([first, second])
        return sorted(fired.values()), sim.now

    values, when = sim.run_process(proc())
    assert values == [1, 2]
    assert when == 5


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def interrupter(target):
        yield sim.timeout(3)
        target.interrupt("wake-up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(3, "wake-up")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_determinism_same_seed_same_schedule():
    import random

    def build_and_run():
        sim = Simulator()
        rng = random.Random(7)
        trace = []

        def worker(name):
            for __ in range(5):
                yield sim.timeout(rng.randint(1, 9))
                trace.append((sim.now, name))

        for i in range(3):
            sim.process(worker(f"w{i}"))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
