"""Tests for the wall-clock perf harness (repro.bench.perf).

Two kinds of assertion live here:

* unit tests of the harness mechanics (digest, baseline check, CLI);
* the rig-level golden-run test: a small fixed-seed TPC-B rig must
  reproduce a recorded ``(sim_us, commits, metrics_digest)`` triple
  bit-for-bit.  The digest covers every telemetry counter, histogram
  sample, the final simulated clock and the commit count, so *any*
  change to simulated behaviour — however small — trips it.  Kernel and
  hot-path optimizations must keep it green; recapture the constants
  only for an intentional semantic change, and justify it in review.
"""

import json

import pytest

from repro.bench.perf import (
    PerfPoint,
    check_regression,
    load_baseline,
    main,
    metrics_digest,
    run_rig,
    write_baseline,
)
from repro.telemetry import MetricsRegistry

# Captured on the seed kernel; identical on the fast-lane kernel.
# Digest recaptured when the WAL stopped double-counting group commits
# and the array gained the flash.power_cuts counter: sim_us and commits
# were bit-identical before and after (telemetry contents changed, the
# simulated behaviour did not).
RIG_GOLDEN_SIM_US = 316513.6800000004
RIG_GOLDEN_COMMITS = 553
RIG_GOLDEN_DIGEST = (
    "dcd83cbb9f8ab1d296a778e922d9958aa4efcb825758f7aff8aa5c140cf1b005"
)


def _point(rig="tpcb", events_per_sec=1000.0) -> PerfPoint:
    return PerfPoint(
        rig=rig, seed=11, duration_us=1000.0, wall_s=1.0, sim_us=1000.0,
        events=1000, events_per_sec=events_per_sec, commits=10,
        ops_per_sec=10.0, flash_commands=50, metrics_digest="d" * 64,
    )


class TestDigest:
    def test_digest_is_stable_for_same_registry(self):
        registry = MetricsRegistry()
        registry.counter("x", layer="t").inc(3)
        assert metrics_digest(registry, 5.0, 2) == \
            metrics_digest(registry, 5.0, 2)

    def test_digest_changes_with_any_input(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", layer="t")
        base = metrics_digest(registry, 5.0, 2)
        assert metrics_digest(registry, 6.0, 2) != base
        assert metrics_digest(registry, 5.0, 3) != base
        counter.inc()
        assert metrics_digest(registry, 5.0, 2) != base


class TestGoldenRig:
    def test_small_tpcb_rig_reproduces_recorded_run(self):
        point = run_rig("tpcb", seed=5, duration_us=120_000.0, dies=4,
                        terminals=4, writers=2)
        assert point.metrics_digest == RIG_GOLDEN_DIGEST
        assert point.commits == RIG_GOLDEN_COMMITS
        assert point.sim_us == pytest.approx(RIG_GOLDEN_SIM_US)
        assert point.events > 0
        assert point.flash_commands > 0
        assert point.wall_s > 0

    def test_unknown_rig_rejected(self):
        with pytest.raises(ValueError, match="unknown rig"):
            run_rig("mystery")


class TestBaseline:
    def test_write_then_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [_point(events_per_sec=2000.0)], derate=0.5)
        baseline = load_baseline(path)
        assert baseline["tpcb"]["events_per_sec"] == 1000.0
        assert baseline["tpcb"]["measured_events_per_sec"] == 2000.0

    def test_check_passes_above_floor(self):
        baseline = {"tpcb": {"events_per_sec": 1000.0}}
        assert check_regression(
            [_point(events_per_sec=900.0)], baseline, tolerance=0.20) == []

    def test_check_fails_below_floor(self):
        baseline = {"tpcb": {"events_per_sec": 1000.0}}
        failures = check_regression(
            [_point(events_per_sec=700.0)], baseline, tolerance=0.20)
        assert len(failures) == 1
        assert "tpcb" in failures[0]

    def test_rigs_absent_from_baseline_pass(self):
        assert check_regression([_point(rig="tpcc")], {"tpcb": {}}) == []


class TestCli:
    def test_quick_run_emits_bench_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
        code = main(["--rig", "tpcb", "--duration-us", "50000",
                     "--seed", "5"])
        assert code == 0
        with open(tmp_path / "BENCH_tpcb.json", encoding="utf-8") as handle:
            point = json.load(handle)
        assert point["rig"] == "tpcb"
        assert point["events"] > 0
        assert len(point["metrics_digest"]) == 64
        with open(tmp_path / "BENCH_perf.json", encoding="utf-8") as handle:
            combined = json.load(handle)
        assert [p["rig"] for p in combined["rigs"]] == ["tpcb"]

    def test_check_against_missing_baseline_returns_2(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
        code = main(["--rig", "tpcb", "--duration-us", "50000",
                     "--seed", "5", "--check",
                     "--baseline", str(tmp_path / "missing.json")])
        assert code == 2

    def test_write_baseline_then_check_passes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
        baseline = str(tmp_path / "baseline.json")
        assert main(["--rig", "tpcb", "--duration-us", "50000", "--seed",
                     "5", "--write-baseline", "--baseline", baseline]) == 0
        assert main(["--rig", "tpcb", "--duration-us", "50000", "--seed",
                     "5", "--check", "--baseline", baseline]) == 0
