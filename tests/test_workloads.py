"""Tests for the workload kits: loading, mixes, invariants, trace record."""

import random

import pytest

from repro.db import Database, RAMStorageAdapter
from repro.sim import Simulator
from repro.workloads import (
    IOTrace,
    SyntheticSpec,
    TPCB,
    TPCC,
    TPCE,
    TPCH,
    TraceRecordingAdapter,
    run_synthetic,
    run_workload,
)


def make_db(logical_pages=40_000, buffer_capacity=300, trace=False):
    sim = Simulator()
    storage = RAMStorageAdapter(sim, logical_pages=logical_pages,
                                latency_us=40.0)
    if trace:
        storage = TraceRecordingAdapter(storage)
    db = Database(sim, storage, page_bytes=2048,
                  buffer_capacity=buffer_capacity, cpu_us_per_op=2.0)
    return sim, db, storage


class TestTPCB:
    def test_load_populates_tables(self):
        sim, db, __ = make_db()
        workload = TPCB(sf=1, accounts_per_branch=100)
        sim.run_process(workload.load(db))
        assert db.heaps["tpcb_accounts"].record_count == 100
        assert db.heaps["tpcb_tellers"].record_count == 10
        assert db.heaps["tpcb_branches"].record_count == 1

    def test_run_commits_and_stays_consistent(self):
        sim, db, __ = make_db()
        db.start_writers(2, policy="global")
        workload = TPCB(sf=2, accounts_per_branch=200)
        stats = run_workload(sim, db, workload, duration_us=500_000,
                             num_terminals=6, rng=random.Random(3))
        assert stats.commits > 50
        assert stats.tps > 0
        assert sim.run_process(workload.verify_consistency(db))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TPCB(sf=0)


class TestTPCC:
    def test_load_schema(self):
        sim, db, __ = make_db()
        workload = TPCC(warehouses=1, customers_per_district=10, items=30,
                        initial_orders_per_district=3)
        sim.run_process(workload.load(db))
        assert db.heaps["tpcc_customer"].record_count == 100
        assert db.heaps["tpcc_stock"].record_count == 30
        assert db.heaps["tpcc_order"].record_count == 30
        assert db.heaps["tpcc_new_order"].record_count == 30

    def test_mix_runs_all_types(self):
        sim, db, __ = make_db()
        db.start_writers(2, policy="global")
        workload = TPCC(warehouses=1, customers_per_district=20, items=50)
        stats = run_workload(sim, db, workload, duration_us=1_500_000,
                             num_terminals=8, rng=random.Random(7))
        assert stats.commits > 100
        assert set(stats.per_type) == {
            "new-order", "payment", "order-status", "delivery", "stock-level"
        }

    def test_new_order_advances_district_counter(self):
        sim, db, __ = make_db()
        workload = TPCC(warehouses=1, customers_per_district=10, items=30)
        stats = run_workload(sim, db, workload, duration_us=400_000,
                             num_terminals=4, rng=random.Random(1))
        new_orders = stats.per_type.get("new-order", 0)
        assert db.heaps["tpcc_order"].record_count >= new_orders


class TestTPCE:
    def test_load_and_run(self):
        sim, db, __ = make_db()
        db.start_writers(2, policy="global")
        workload = TPCE(customers=100, securities=20)
        stats = run_workload(sim, db, workload, duration_us=500_000,
                             num_terminals=6, rng=random.Random(5))
        assert stats.commits > 50
        assert "trade-order" in stats.per_type
        # TPC-E is read-heavy: lookups dominate the mix
        reads = stats.per_type.get("trade-lookup", 0) \
            + stats.per_type.get("customer-position", 0)
        assert reads > stats.per_type.get("trade-order", 0)


class TestTPCH:
    def test_queries_return_results(self):
        sim, db, __ = make_db()
        workload = TPCH(customers=20, orders=60)
        stats = run_workload(sim, db, workload, duration_us=1_000_000,
                             num_terminals=2, rng=random.Random(2))
        assert stats.commits > 0
        assert set(stats.per_type) <= {"q1-aggregate", "q6-revenue", "q3-join"}


class TestTraceRecording:
    def test_trace_captures_flush_stream(self):
        sim, db, storage = make_db(trace=True)
        db.start_writers(2, policy="global")
        workload = TPCB(sf=1, accounts_per_branch=200)
        run_workload(sim, db, workload, duration_us=400_000,
                     num_terminals=4, rng=random.Random(9))
        sim.run_process(db.checkpoint())
        counts = storage.trace.counts()
        assert counts["writes"] > 0
        assert storage.trace.max_page() < storage.logical_pages

    def test_trace_op_kinds(self):
        trace = IOTrace()
        trace.append("w", 5)
        trace.append("r", 5)
        trace.append("t", 5)
        assert trace.counts() == {"reads": 1, "writes": 1, "trims": 1}
        assert len(trace) == 3


class TestSynthetic:
    def test_random_write_job_on_ram(self):
        sim = Simulator()

        class _RamVolume:
            logical_pages = 128

            def read(self, lpn):
                yield sim.timeout(10)
                return None

            def write(self, lpn, data=None):
                yield sim.timeout(25)

        result = run_synthetic(sim, _RamVolume(),
                               SyntheticSpec(pattern="random", ops=50,
                                             queue_depth=4))
        assert result.write_latency.count == 50
        assert result.iops > 0

    def test_read_fraction_splits_ops(self):
        sim = Simulator()

        class _RamVolume:
            logical_pages = 64

            def read(self, lpn):
                yield sim.timeout(10)
                return None

            def write(self, lpn, data=None):
                yield sim.timeout(25)

        result = run_synthetic(
            sim, _RamVolume(),
            SyntheticSpec(pattern="random", ops=200, queue_depth=2,
                          read_fraction=0.5, seed=3),
        )
        assert result.read_latency.count + result.write_latency.count == 200
        assert result.read_latency.count > 40

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(pattern="zigzag")
        with pytest.raises(ValueError):
            SyntheticSpec(read_fraction=2.0)
