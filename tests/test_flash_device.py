"""Tests for the device front-ends and executors (sync + DES)."""

import pytest

from repro.flash import (
    Copyback,
    EraseBlock,
    FlashArray,
    Geometry,
    Identify,
    ProgramPage,
    ReadPage,
    ReadUnwrittenError,
    SimExecutor,
    SimFlashDevice,
    SLC_TIMING,
    SyncExecutor,
    SyncFlashDevice,
)
from repro.sim import Simulator

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=4,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=4,
    page_bytes=1024,
)


class TestSyncDevice:
    def test_execute_and_busy_accounting(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        device.execute(ProgramPage(ppn=0, data=b"a"))
        device.execute(ReadPage(ppn=0))
        assert device.serial_us > 0
        assert device.die_busy_us[0] == pytest.approx(device.serial_us)
        assert device.elapsed_us == device.die_busy_us[0]

    def test_elapsed_is_max_over_dies(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        device.execute(ProgramPage(ppn=0, data=b"a"))
        ppn_die1 = GEO.ppn_of(GEO.blocks_of_die(1)[0], 0)
        device.execute(ProgramPage(ppn=ppn_die1, data=b"b"))
        device.execute(ProgramPage(ppn=1, data=b"c"))
        assert device.elapsed_us == pytest.approx(device.die_busy_us[0])
        assert device.serial_us == pytest.approx(sum(device.die_busy_us))


class TestSyncExecutor:
    def test_runs_operation_and_returns_value(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        executor = SyncExecutor(device)

        def op():
            yield ProgramPage(ppn=0, data=b"v1")
            result = yield ReadPage(ppn=0)
            return result.data

        assert executor.run(op()) == b"v1"

    def test_flash_error_thrown_into_operation(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        executor = SyncExecutor(device)

        def op():
            try:
                yield ReadPage(ppn=0)
            except ReadUnwrittenError:
                yield ProgramPage(ppn=0, data=b"recovered")
                result = yield ReadPage(ppn=0)
                return result.data
            return None

        assert executor.run(op()) == b"recovered"

    def test_unhandled_flash_error_propagates(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        executor = SyncExecutor(device)

        def op():
            yield ReadPage(ppn=0)

        with pytest.raises(ReadUnwrittenError):
            executor.run(op())

    def test_non_command_yield_rejected(self):
        device = SyncFlashDevice(FlashArray(GEO, SLC_TIMING))
        executor = SyncExecutor(device)

        def op():
            yield "not-a-command"

        with pytest.raises(TypeError):
            executor.run(op())


class TestSimDevice:
    def test_single_command_takes_model_latency(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))

        def proc():
            result = yield from device.execute(ProgramPage(ppn=0, data=b"x"))
            return result

        sim.run_process(proc())
        expected = SLC_TIMING.program_latency_us(GEO.page_bytes)
        assert sim.now == pytest.approx(expected)

    def test_same_die_commands_serialize(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))
        finish = []

        def writer(ppn):
            yield from device.execute(ProgramPage(ppn=ppn, data=b"x"))
            finish.append(sim.now)

        sim.process(writer(0))
        sim.process(writer(1))  # same block -> same die
        sim.run()
        one_op = SLC_TIMING.program_latency_us(GEO.page_bytes)
        assert finish[0] == pytest.approx(one_op)
        assert finish[1] == pytest.approx(2 * one_op)

    def test_different_dies_overlap(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))
        finish = []

        def writer(die):
            ppn = GEO.ppn_of(GEO.blocks_of_die(die)[0], 0)
            yield from device.execute(ProgramPage(ppn=ppn, data=b"x"))
            finish.append(sim.now)

        for die in range(4):
            sim.process(writer(die))
        sim.run()
        one_op = SLC_TIMING.program_latency_us(GEO.page_bytes)
        # Programs to 4 dies share a single channel; only the bus transfer
        # serializes, the tPROG phases overlap.
        transfer = SLC_TIMING.cmd_overhead_us + SLC_TIMING.transfer_us(GEO.page_bytes)
        expected_last = 4 * transfer + SLC_TIMING.program_us
        assert finish[-1] == pytest.approx(expected_last)
        assert finish[-1] < 4 * one_op  # clearly better than serial

    def test_erases_on_different_dies_fully_overlap(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))

        def eraser(die):
            yield from device.execute(EraseBlock(pbn=GEO.blocks_of_die(die)[0]))

        for die in range(4):
            sim.process(eraser(die))
        sim.run()
        assert sim.now == pytest.approx(SLC_TIMING.erase_latency_us())

    def test_die_utilization_reporting(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))

        def writer():
            yield from device.execute(ProgramPage(ppn=0, data=b"x"))

        sim.process(writer())
        sim.run()
        utilization = device.die_utilization()
        assert utilization[0] == pytest.approx(1.0)
        assert utilization[1] == 0.0

    def test_identify_in_des(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))

        def proc():
            result = yield from device.execute(Identify())
            return result.data["total_dies"]

        assert sim.run_process(proc()) == 4


class TestSimExecutor:
    def test_operation_runs_in_des(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))
        executor = SimExecutor(device)

        def op():
            yield ProgramPage(ppn=0, data=b"z")
            result = yield ReadPage(ppn=0)
            return result.data

        def proc():
            value = yield from executor.run(op())
            return value

        assert sim.run_process(proc()) == b"z"
        assert sim.now > 0

    def test_error_handling_inside_des_operation(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))
        executor = SimExecutor(device)

        def op():
            try:
                yield ReadPage(ppn=0)
            except ReadUnwrittenError:
                return "handled"
            return "unexpected"

        def proc():
            value = yield from executor.run(op())
            return value

        assert sim.run_process(proc()) == "handled"

    def test_copyback_occupies_die_once(self):
        sim = Simulator()
        array = FlashArray(GEO, SLC_TIMING)
        device = SimFlashDevice(sim, array)
        executor = SimExecutor(device)
        blocks = GEO.blocks_of_plane(0, 0)

        def op():
            yield ProgramPage(ppn=GEO.ppn_of(blocks[0], 0), data=b"m")
            yield Copyback(src_ppn=GEO.ppn_of(blocks[0], 0),
                           dst_ppn=GEO.ppn_of(blocks[1], 0))

        def proc():
            yield from executor.run(op())

        sim.run_process(proc())
        assert array.counters.copybacks == 1
        expected = (SLC_TIMING.program_latency_us(GEO.page_bytes)
                    + SLC_TIMING.copyback_latency_us())
        assert sim.now == pytest.approx(expected)
