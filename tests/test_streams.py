"""Object/stream-aware write placement: the stream taxonomy, data-class
chain resolution, class-segregated allocation and GC, the wear-shadow
identity, mount-time frontier re-derivation, the temp producer, and the
WA ledger's class learning/forgetting around all of it."""

import random

import pytest

from repro.bench.health import run_db_rig, stream_stats_of
from repro.bench.rigs import attach_database, build_noftl_rig
from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager
from repro.db import TempArea
from repro.flash import (
    FlashArray,
    Geometry,
    ReadOob,
    SLC_TIMING,
    SimExecutor,
    SimFlashDevice,
    SyncExecutor,
    SyncFlashDevice,
)
from repro.ftl.base import FTLStats, MappingState, UNMAPPED
from repro.ftl.pagespace import PageMappedSpace
from repro.ftl.streams import (
    CLASS_CODES,
    CODE_CLASSES,
    FOREGROUND_STREAMS,
    GC_SUFFIX,
    class_code_of_stream,
    gc_stream_of_code,
    stream_for,
)
from repro.sim import Simulator
from repro.telemetry import (
    HealthMonitor,
    OpContext,
    WriteAmplificationLedger,
    data_class_of,
)


class TestStreamTaxonomy:
    def test_stream_for_routes_classes(self):
        assert stream_for("wal", "hot") == "wal"
        assert stream_for("btree", "cold") == "btree"
        assert stream_for("heap", "hot") == "heap-hot"
        assert stream_for("heap", "cold") == "heap-cold"
        # Unclassified traffic degrades to the legacy temperature split.
        assert stream_for(None, "hot") == "hot"
        assert stream_for(None, "cold") == "cold"
        assert stream_for("unknown", "cold") == "cold"

    def test_class_codes_round_trip_through_streams(self):
        for cls, code in CLASS_CODES.items():
            assert class_code_of_stream(stream_for(cls, "hot")) == code
            assert class_code_of_stream(stream_for(cls, "cold")) == code
            assert class_code_of_stream(cls + GC_SUFFIX) == code
        # Legacy temperature streams hold untracked blocks.
        assert class_code_of_stream("hot") == 0
        assert class_code_of_stream("cold") == 0

    def test_gc_streams_keep_class_and_never_hit_foreground(self):
        foreground = set(FOREGROUND_STREAMS.values()) | {"heap-cold"}
        for code in CODE_CLASSES:
            stream = gc_stream_of_code(code)
            assert stream.endswith(GC_SUFFIX)
            assert stream not in foreground
            assert class_code_of_stream(stream) == code
        # Untracked pages relocate into the legacy cold point.
        assert gc_stream_of_code(0) == "cold"


class TestDataClassChains:
    def test_maintenance_leaf_under_stamped_host_chain_is_none(self):
        # child() inherits the stamp, but a maintenance leaf must still
        # resolve to None: the adopting request's class says nothing
        # about the page being moved.
        host = OpContext("txn", txn_id=9, data_class="heap")
        merge = host.child("gc").child("merge")
        assert merge.data_class == "heap"
        assert data_class_of(merge) is None

    def test_adopted_maintenance_chain_stays_unclassified(self):
        orphan = OpContext("gc")
        orphan.adopt(OpContext("db-writer", data_class="btree"))
        assert data_class_of(orphan) is None

    def test_stamp_found_above_unstamped_leaf(self):
        root = OpContext("db-writer", data_class="btree")
        leaf = OpContext("txn", parent=root)
        assert data_class_of(leaf) == "btree"

    def test_leaf_origin_fallback_beats_root_fallback(self):
        # The walk collects the first (leaf-most) origin fallback.
        chain = OpContext("txn-commit", parent=OpContext("recovery"))
        assert data_class_of(chain) == "wal"

    def test_explicit_stamp_beats_origin_fallback(self):
        assert data_class_of(OpContext("txn-commit", data_class="map")) \
            == "map"


GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=32,
    pages_per_block=8,
    page_bytes=512,
)


def make_space(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    logical = int(GEO.total_pages * 0.7)
    mapping = MappingState(GEO, logical)
    planes = [(die, plane) for die in range(GEO.total_dies)
              for plane in range(GEO.planes_per_die)]
    space = PageMappedSpace(GEO, mapping, planes, FTLStats(), **kwargs)
    return space, mapping, executor, array, logical


def block_classes(space, mapping):
    """pbn -> set of class codes over the block's live pages."""
    classes = {}
    for lpn in range(mapping.logical_pages):
        ppn = mapping.lookup(lpn)
        if ppn == UNMAPPED:
            continue
        pbn = GEO.block_of_ppn(ppn)
        classes.setdefault(pbn, set()).add(mapping.lpn_class[lpn])
    return classes


class TestClassSegregatedPlacement:
    def test_requires_separate_streams(self):
        with pytest.raises(ValueError):
            make_space(class_streams=True, separate_streams=False)

    def test_oob_carries_class_only_in_streams_mode(self):
        space, mapping, executor, array, _ = make_space(class_streams=True)
        executor.run(space.write(3, data="x", stream="btree"))
        oob = array.apply(ReadOob(ppn=mapping.lookup(3))).oob
        assert oob["cls"] == CLASS_CODES["btree"]
        assert mapping.lpn_class[3] == CLASS_CODES["btree"]

        # Digest safety: the legacy path must emit byte-identical OOB.
        legacy, lmap, lexec, larray, _ = make_space(class_streams=False)
        lexec.run(legacy.write(3, data="x", stream="hot"))
        assert "cls" not in larray.apply(ReadOob(ppn=lmap.lookup(3))).oob

    def test_blocks_stay_single_class_through_gc(self):
        space, mapping, executor, _, logical = make_space(class_streams=True)
        rng = random.Random(7)
        span = int(logical * 0.8)
        lanes = ("wal", "heap-hot", "btree", "temp")
        # Interleaved multi-class traffic with enough overwrite pressure
        # to cycle GC several times.
        for step in range(span * 6):
            lpn = rng.randrange(span)
            executor.run(space.write(lpn, data=step,
                                     stream=lanes[lpn % len(lanes)]))
        assert space.stream_stats["victims"] > 0
        assert space.stream_stats["mixed_class_victims"] == 0
        for pbn, codes in block_classes(space, mapping).items():
            assert len(codes) == 1, f"block {pbn} mixes classes {codes}"

    def test_trim_clears_class_and_rewrite_relearns(self):
        space, mapping, executor, _, _ = make_space(class_streams=True)
        executor.run(space.write(5, data="a", stream="btree"))
        space.trim(5)
        assert mapping.lpn_class[5] == 0
        executor.run(space.write(5, data="b", stream="wal"))
        assert mapping.lpn_class[5] == CLASS_CODES["wal"]


class TestWearShadowIdentity:
    def test_shadow_matches_array_truth_blockwise(self):
        space, mapping, executor, array, logical = make_space(
            class_streams=True)
        rng = random.Random(3)
        span = int(logical * 0.8)
        for step in range(span * 6):
            executor.run(space.write(rng.randrange(span), data=step,
                                     stream="heap-hot" if step % 3 else
                                     "btree"))
        # The space is this array's only eraser, so its flat shadow must
        # be the identity of the device truth — per block, not just in
        # aggregate.
        assert sum(space.erase_counts) > 0
        for pbn in range(GEO.total_blocks):
            assert space.erase_counts[pbn] == array.erase_counts[pbn]

        shadow = space.wear_shadow()
        nonzero = [count for count in space.erase_counts if count]
        assert shadow["blocks_seen"] == len(nonzero)
        assert shadow["min"] == min(nonzero)
        assert shadow["max"] == max(nonzero)


MGEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=32,
    pages_per_block=8,
    page_bytes=512,
)

#: Per-class context factories and disjoint lpn lanes for mount tests.
SEED_CLASSES = (
    ("wal", 0, lambda: OpContext("txn-commit")),
    ("btree", 40, lambda: OpContext("db-writer", data_class="btree")),
    ("heap", 80, lambda: OpContext("db-writer", data_class="heap")),
)
SEED_WIDTH = 13


def make_mounted(array, streams=True):
    sim = Simulator()
    executor = SimExecutor(SimFlashDevice(sim, array))
    manager = NoFTLStorageManager(
        MGEO,
        NoFTLConfig(op_ratio=0.25, num_regions=1, write_streams=streams),
        factory_bad_blocks=array.factory_bad_blocks(),
    )
    storage = NoFTLStorage(sim, manager, executor)
    report = sim.run_process(storage.mount())
    return sim, manager, storage, report


def seed_classified(sim, storage, rounds=2):
    for step in range(rounds):
        for cls, base, ctx_of in SEED_CLASSES:
            for k in range(SEED_WIDTH):
                sim.run_process(storage.write(
                    base + k, (cls, step, k), "hot", ctx=ctx_of()))


def active_frontiers(manager):
    """pbn -> (stream, next_offset) over every open write point."""
    out = {}
    for region in manager.regions.regions:
        for plane in region.space._planes.values():
            for stream, entry in plane.active.items():
                if entry is not None:
                    out[entry[0]] = (stream, entry[1])
    return out


class TestMountFrontierRoundTrip:
    def test_mount_rederives_per_stream_frontiers(self):
        array = FlashArray(MGEO, SLC_TIMING, store_data=True)
        sim, _, storage, _ = make_mounted(array)
        seed_classified(sim, storage)

        # Cold start on the written array: nothing but OOB evidence.
        _, manager, _, report = make_mounted(array)
        assert report.stream_frontiers
        adopted = active_frontiers(manager)
        streams_seen = set()
        for pbn, stream, offset in report.stream_frontiers:
            assert 0 < offset < MGEO.pages_per_block
            assert class_code_of_stream(stream) > 0
            # The reported frontier is a live write point again.
            assert adopted[pbn] == (stream, offset)
            streams_seen.add(class_code_of_stream(stream))
        assert stream_stats_of(manager)["frontiers_adopted"] == \
            len(report.stream_frontiers)
        # All three seeded classes left adoptable evidence.
        assert streams_seen == {
            CLASS_CODES["wal"], CLASS_CODES["btree"], CLASS_CODES["heap"],
        }
        # The snapshot surfaces the same triples (streams mode only).
        assert report.snapshot()["stream_frontiers"] == [
            list(entry) for entry in report.stream_frontiers
        ]

    def test_mount_rebuilds_lpn_class_table(self):
        array = FlashArray(MGEO, SLC_TIMING, store_data=True)
        sim, _, storage, _ = make_mounted(array)
        seed_classified(sim, storage)

        _, manager, _, _ = make_mounted(array)
        for cls, base, _ in SEED_CLASSES:
            for k in range(SEED_WIDTH):
                assert manager.mapping.lpn_class[base + k] == \
                    CLASS_CODES[cls]

    def test_write_continues_in_adopted_frontier(self):
        array = FlashArray(MGEO, SLC_TIMING, store_data=True)
        sim, _, storage, _ = make_mounted(array)
        seed_classified(sim, storage)

        sim2, manager, storage2, report = make_mounted(array)
        frontier = {stream: (pbn, offset)
                    for pbn, stream, offset in report.stream_frontiers}
        assert "btree" in frontier
        pbn, offset = frontier["btree"]
        space = manager.regions.regions[0].space
        plane_id = next(pid for pid, plane in space._planes.items()
                        if (plane.active.get("btree") or [None])[0] == pbn)
        lane = next(base for cls, base, _ in SEED_CLASSES if cls == "btree")
        lpn = next(l for l in range(lane, lane + SEED_WIDTH)
                   if space.plane_of_lpn(l) == plane_id)
        sim2.run_process(storage2.write(
            lpn, "fresh", "hot",
            ctx=OpContext("db-writer", data_class="btree")))
        ppn = manager.mapping.lookup(lpn)
        assert MGEO.block_of_ppn(ppn) == pbn
        assert ppn == MGEO.ppn_of(pbn, offset)

    def test_mount_write_keeps_ledger_fully_classified(self):
        # The regression this PR fixes: rebuild_allocation used to come
        # back with only the legacy hot/cold write points, so the first
        # post-mount GC cycle mixed classes and the ledger leaked
        # physical writes into 'unknown'.
        array = FlashArray(MGEO, SLC_TIMING, store_data=True)
        sim, _, storage, _ = make_mounted(array)
        seed_classified(sim, storage)

        sim2, manager, storage2, _ = make_mounted(array)
        monitor = HealthMonitor(clock=lambda: sim2.now)
        monitor.attach_array(array)
        monitor.attach_manager(manager)
        rng = random.Random(23)
        lanes = [(base, ctx_of) for _, base, ctx_of in SEED_CLASSES]
        for step in range(600):
            base, ctx_of = lanes[step % len(lanes)]
            sim2.run_process(storage2.write(
                base + rng.randrange(SEED_WIDTH), step, "hot",
                ctx=ctx_of()))
        report = monitor.ledger.report()
        assert monitor.ledger.total_erases > 0
        assert report["per_class"].get("unknown", {}) \
            .get("physical", 0) == 0
        assert stream_stats_of(manager)["mixed_class_victims"] == 0
        for cls in ("wal", "btree", "heap"):
            assert cls not in report["producerless_classes"]

    def test_streams_off_mount_reports_no_frontiers(self):
        array = FlashArray(MGEO, SLC_TIMING, store_data=True)
        sim, _, storage, _ = make_mounted(array, streams=False)
        for lpn in range(24):
            sim.run_process(storage.write(lpn, lpn, "hot"))
        _, _, _, report = make_mounted(array, streams=False)
        assert report.stream_frontiers == ()
        # Digest safety: the legacy snapshot shape is untouched.
        assert "stream_frontiers" not in report.snapshot()


TGEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=2048,
)


def make_temp_rig():
    rig = build_noftl_rig(
        geometry=TGEO,
        config=NoFTLConfig(num_regions=2, write_streams=True),
    )
    monitor = HealthMonitor(clock=lambda: rig.sim.now)
    monitor.attach_array(rig.array)
    monitor.attach_manager(rig.manager)
    db = attach_database(rig, buffer_capacity=64, foreground_flush=False)
    return rig, monitor, db


class TestTempProducer:
    def test_spill_classifies_and_drain_forgets(self):
        rig, monitor, db = make_temp_rig()
        temp = TempArea(db)
        rig.sim.run_process(temp.spill(6))
        assert temp.live_runs == 1
        assert monitor.ledger.logical_by_class["temp"] == 6
        spilled = set(monitor.ledger.class_of)
        assert len(spilled) == 6

        rig.sim.run_process(temp.drain())
        assert temp.live_runs == 0
        assert temp.pages_reclaimed == 6
        # Trim-forget: released page ids drop their learned class, so a
        # recycled id re-learns from whoever writes it next.
        for lpn in spilled:
            assert lpn not in monitor.ledger.class_of
        assert temp.snapshot()["pages_spilled"] == 6

    def test_process_is_bounded_and_drains_at_horizon(self):
        rig, _, db = make_temp_rig()
        temp = TempArea(db)
        rig.sim.process(temp.process(1_000.0, 2, keep=1,
                                     until_us=rig.sim.now + 10_000.0))
        rig.sim.run()
        assert temp.spills >= 5
        assert temp.live_runs == 0
        assert temp.pages_reclaimed == temp.pages_spilled

    def test_ledger_flags_producerless_classes(self):
        ledger = WriteAmplificationLedger()
        ctx = OpContext("db-writer", data_class="heap")
        ledger.record("program", 0, ctx, {"lpn": 1})
        # Everything declared but silent is flagged — except map (pure
        # overhead, no logical writes by design) and unknown.
        assert ledger.report()["producerless_classes"] == \
            ["btree", "recovery", "temp", "wal"]
        ledger.record("program", 0, OpContext("txn", data_class="temp"),
                      {"lpn": 2})
        assert "temp" not in ledger.report()["producerless_classes"]


class TestStreamsOnDatabaseRun:
    def test_tpcb_run_classifies_everything(self):
        out = run_db_rig("tpcb", duration_us=30_000.0, dies=2,
                         write_streams=True)
        assert out["commits"] > 0
        assert out["streams"]["mixed_class_victims"] == 0
        per_class = out["health"]["wa"]["per_class"]
        # Fully stamped stack: nothing falls through to 'unknown'.
        assert per_class.get("unknown", {}).get("physical", 0) == 0
        # This rig keeps its WAL off-flash (bench.streams puts it on),
        # so the page classes are the ones that must show up.
        for cls in ("heap", "btree"):
            assert per_class[cls]["logical"] > 0
        assert "wal" in out["health"]["wa"]["producerless_classes"]
