"""Tests for the WAL (group commit) and the lock manager / RW latch."""

import pytest

from repro.db import LockManager, LockMode, RWLock, TxnAborted, WALog
from repro.sim import Simulator


class TestWAL:
    def test_append_assigns_increasing_lsns(self):
        wal = WALog(Simulator())
        assert wal.append("update", 1) == 1
        assert wal.append("update", 1) == 2
        assert wal.appended_lsn == 2

    def test_flush_advances_flushed_lsn(self):
        sim = Simulator()
        wal = WALog(sim, flush_latency_us=100)
        lsn = wal.append("commit", 1)

        def proc():
            yield from wal.flush_to(lsn)

        sim.run_process(proc())
        assert wal.flushed_lsn >= lsn
        assert sim.now == 100

    def test_flush_to_already_durable_is_free(self):
        sim = Simulator()
        wal = WALog(sim, flush_latency_us=100)
        lsn = wal.append("commit", 1)
        sim.run_process(_flush(sim, wal, lsn))
        before = sim.now

        sim.run_process(_flush(sim, wal, lsn))
        assert sim.now == before
        assert wal.total_flushes == 1

    def test_group_commit_shares_one_flush(self):
        sim = Simulator()
        wal = WALog(sim, flush_latency_us=100)
        done = []

        def committer(name):
            lsn = wal.append("commit", 1)
            yield from wal.flush_to(lsn)
            done.append((name, sim.now))

        sim.process(committer("a"))
        sim.process(committer("b"))
        sim.process(committer("c"))
        sim.run()
        assert len(done) == 3
        # a's flush covers only its own record; b and c piggyback on the
        # second flush instead of issuing one each: 2 flushes, not 3.
        assert wal.total_flushes == 2
        assert wal.total_group_commits >= 2
        assert done[0] == ("a", 100)
        assert done[1:] == [("b", 200), ("c", 200)]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            WALog(Simulator(), flush_latency_us=-1)


def _flush(sim, wal, lsn):
    yield from wal.flush_to(lsn)


class TestLockManager:
    def test_shared_locks_coexist(self):
        sim = Simulator()
        locks = LockManager(sim)
        granted = []

        def reader(txn_id):
            yield from locks.acquire(txn_id, "k", LockMode.SHARED)
            granted.append(txn_id)

        sim.process(reader(1))
        sim.process(reader(2))
        sim.run()
        assert sorted(granted) == [1, 2]

    def test_exclusive_blocks_until_release(self):
        sim = Simulator()
        locks = LockManager(sim)
        order = []

        def first():
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)
            order.append(("granted", 1, sim.now))
            yield sim.timeout(50)
            locks.release_all(1)

        def second():
            yield sim.timeout(1)
            yield from locks.acquire(2, "k", LockMode.EXCLUSIVE)
            order.append(("granted", 2, sim.now))
            locks.release_all(2)

        sim.process(first())
        sim.process(second())
        sim.run()
        assert order == [("granted", 1, 0), ("granted", 2, 50)]

    def test_reacquire_held_lock_is_instant(self):
        sim = Simulator()
        locks = LockManager(sim)

        def proc():
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)
            yield from locks.acquire(1, "k", LockMode.SHARED)

        sim.run_process(proc())
        assert locks.total_waits == 0

    def test_upgrade_sole_reader(self):
        sim = Simulator()
        locks = LockManager(sim)

        def proc():
            yield from locks.acquire(1, "k", LockMode.SHARED)
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)

        sim.run_process(proc())
        assert locks.total_waits == 0

    def test_timeout_aborts_waiter(self):
        sim = Simulator()
        locks = LockManager(sim, timeout_us=10)
        outcome = []

        def holder():
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)
            yield sim.timeout(1000)  # hold way past the waiter's budget
            locks.release_all(1)

        def waiter():
            yield sim.timeout(1)
            try:
                yield from locks.acquire(2, "k", LockMode.EXCLUSIVE)
                outcome.append("granted")
            except TxnAborted:
                outcome.append("aborted")

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert outcome == ["aborted"]
        assert locks.total_timeouts == 1

    def test_fifo_no_barging(self):
        sim = Simulator()
        locks = LockManager(sim)
        order = []

        def writer():
            yield from locks.acquire(1, "k", LockMode.EXCLUSIVE)
            yield sim.timeout(10)
            locks.release_all(1)

        def waiting_writer():
            yield sim.timeout(1)
            yield from locks.acquire(2, "k", LockMode.EXCLUSIVE)
            order.append(2)
            yield sim.timeout(10)
            locks.release_all(2)

        def late_reader():
            yield sim.timeout(2)
            yield from locks.acquire(3, "k", LockMode.SHARED)
            order.append(3)
            locks.release_all(3)

        sim.process(writer())
        sim.process(waiting_writer())
        sim.process(late_reader())
        sim.run()
        assert order == [2, 3]

    def test_release_all_cleans_state(self):
        sim = Simulator()
        locks = LockManager(sim)

        def proc():
            yield from locks.acquire(1, "a", LockMode.EXCLUSIVE)
            yield from locks.acquire(1, "b", LockMode.SHARED)
            locks.release_all(1)

        sim.run_process(proc())
        assert locks.snapshot()["active_keys"] == 0
        assert locks.held_by(1) == set()


class TestRWLock:
    def test_readers_share(self):
        sim = Simulator()
        latch = RWLock(sim)
        active = []

        def reader(name):
            yield from latch.acquire_read()
            active.append(name)
            yield sim.timeout(10)
            latch.release_read()

        sim.process(reader("a"))
        sim.process(reader("b"))
        sim.run()
        assert sim.now == 10  # fully overlapped

    def test_writer_excludes_readers(self):
        sim = Simulator()
        latch = RWLock(sim)
        log = []

        def writer():
            yield from latch.acquire_write()
            log.append(("w", sim.now))
            yield sim.timeout(10)
            latch.release_write()

        def reader():
            yield sim.timeout(1)
            yield from latch.acquire_read()
            log.append(("r", sim.now))
            latch.release_read()

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert log == [("w", 0), ("r", 10)]

    def test_fair_queue_writer_not_starved(self):
        sim = Simulator()
        latch = RWLock(sim)
        log = []

        def long_reader():
            yield from latch.acquire_read()
            yield sim.timeout(10)
            latch.release_read()

        def writer():
            yield sim.timeout(1)
            yield from latch.acquire_write()
            log.append(("w", sim.now))
            yield sim.timeout(5)
            latch.release_write()

        def late_reader():
            yield sim.timeout(2)
            yield from latch.acquire_read()
            log.append(("r", sim.now))
            latch.release_read()

        sim.process(long_reader())
        sim.process(writer())
        sim.process(late_reader())
        sim.run()
        assert log == [("w", 10), ("r", 15)]

    def test_release_without_acquire_raises(self):
        latch = RWLock(Simulator())
        with pytest.raises(RuntimeError):
            latch.release_read()
        with pytest.raises(RuntimeError):
            latch.release_write()
