"""Causal tracing and tail-latency attribution: OpContext propagation,
JSONL trace round-trips, span parenting and the attribution engine."""

import io
import random

import pytest

from repro.bench.observe import analyze_trace, run_checks
from repro.bench.rigs import (
    attach_database,
    build_noftl_rig,
    measure_workload_footprint,
    sized_geometry,
)
from repro.core import NoFTLConfig
from repro.flash.commands import ProgramPage, stamp_context, tag_commands
from repro.sim import LatencyRecorder
from repro.telemetry import (
    EventTrace,
    MetricsRegistry,
    OpContext,
    blame_breakdown,
    load_jsonl,
    origin_mix,
    span_rollup,
    verify_origins,
    windowed_series,
)
from repro.workloads import TPCB, run_workload


class TestOpContext:
    def test_child_inherits_identity(self):
        root = OpContext("db-writer", writer_id=3, txn_id=7)
        child = root.child("gc")
        assert child.origin == "gc"
        assert child.writer_id == 3
        assert child.txn_id == 7
        assert child.parent is root
        assert child.root() is root

    def test_path_joins_origins_root_first(self):
        root = OpContext("txn")
        leaf = root.child("gc").child("merge")
        assert leaf.path() == "txn/gc/merge"

    def test_adopt_attaches_orphan_chain_once(self):
        host = OpContext("db-writer")
        gc = OpContext("gc")
        merge = gc.child("merge")
        merge.adopt(host)
        assert gc.parent is host
        assert merge.path() == "db-writer/gc/merge"
        other = OpContext("txn")
        merge.adopt(other)  # already rooted: no re-parenting
        assert gc.parent is host

    def test_charge_accumulates_and_skips_zero(self):
        ctx = OpContext("txn")
        ctx.charge("media_us", 10.0)
        ctx.charge("media_us", 5.0)
        ctx.charge("gc_us", 0.0)
        assert ctx.costs == {"media_us": 15.0}

    def test_rejects_unknown_origin(self):
        with pytest.raises(ValueError):
            OpContext("cosmic-rays")

    def test_fields_carry_identity(self):
        ctx = OpContext("db-writer", writer_id=2).child("gc")
        fields = ctx.fields()
        assert fields["origin"] == "gc"
        assert fields["writer"] == 2
        assert fields["path"] == "db-writer/gc"


class TestCommandTagging:
    def test_tag_commands_stamps_untagged_only(self):
        inner_ctx = OpContext("scrub")

        def op():
            yield stamp_context(ProgramPage(ppn=1), inner_ctx)
            yield ProgramPage(ppn=2)
            return "done"

        outer_ctx = OpContext("gc")
        gen = tag_commands(op(), outer_ctx)
        first = gen.send(None)
        assert first.ctx is inner_ctx  # more specific wrapper wins
        second = gen.send(None)
        assert second.ctx is outer_ctx
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        assert stop.value.value == "done"


class TestReservoir:
    def test_unbounded_keeps_every_sample(self):
        rec = LatencyRecorder("x")
        for i in range(100):
            rec.record(float(i))
        assert len(rec.samples) == 100

    def test_bounded_reservoir_caps_memory_exact_scalars(self):
        rec = LatencyRecorder("bounded", max_samples=32)
        for i in range(10_000):
            rec.record(float(i))
        assert len(rec.samples) == 32
        summary = rec.summary()
        assert summary["count"] == 10_000
        assert summary["max"] == 9999.0  # exact even under sampling
        assert summary["retained"] == 32

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            rec = LatencyRecorder(name, max_samples=16)
            for i in range(1000):
                rec.record(float(i))
            return list(rec.samples)

        assert fill("same") == fill("same")


class TestRegistryMerge:
    def test_merge_from_carries_all_instrument_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", layer="x").inc(2)
        b.counter("ops", layer="x").inc(3)
        b.gauge("level", layer="x").set(7)
        b.histogram("lat", layer="x").observe(5.0)
        a.merge_from(b)
        assert a.value("ops", layer="x") == 5
        snapshot = a.snapshot()
        assert snapshot["gauges"]
        assert snapshot["histograms"]


class TestTraceRoundTrip:
    def test_jsonl_sink_round_trips_events(self):
        sink = io.StringIO()
        trace = EventTrace(sink=sink)
        trace.emit("flash.cmd", op="program", die=3, origin="gc",
                   latency_us=200.0)
        trace.emit("host.op", op="write", elapsed_us=450.0, origin="txn")
        events = load_jsonl(io.StringIO(sink.getvalue()))
        assert len(events) == 2
        assert events[0]["kind"] == "flash.cmd"
        assert events[0]["die"] == 3
        assert events[1]["op"] == "write"

    def test_nested_spans_rebuild_parent_paths(self):
        sink = io.StringIO()
        trace = EventTrace(sink=sink)
        with trace.span("log.reclaim") as outer:
            with trace.span("merge.full", parent=outer):
                pass
        events = load_jsonl(io.StringIO(sink.getvalue()))
        rollup = span_rollup(events)
        paths = {entry["path"] for entry in rollup}
        assert "log.reclaim" in paths
        assert "log.reclaim;merge.full" in paths


class TestAttribution:
    def _events(self):
        return [
            {"ts": 10.0, "kind": "host.op", "op": "write",
             "elapsed_us": 100.0, "media_us": 60.0, "queue_gc_us": 30.0},
            {"ts": 20.0, "kind": "host.op", "op": "write",
             "elapsed_us": 1000.0, "media_us": 100.0, "gc_us": 800.0},
            {"ts": 30.0, "kind": "flash.cmd", "op": "program", "die": 0,
             "origin": "gc", "latency_us": 200.0},
            {"ts": 40.0, "kind": "flash.cmd", "op": "read", "die": 1,
             "origin": "txn", "latency_us": 50.0},
        ]

    def test_blame_breakdown_tail_and_residual(self):
        blame = blame_breakdown(self._events(), op="write", tail_pct=99.0)
        assert blame["count"] == 2
        # the tail is the slow write: 800 gc + 100 media + 100 residual
        assert blame["tail_buckets"]["gc_us"] == 800.0
        assert blame["tail_buckets"]["other_us"] == 100.0
        assert blame["gc_blamed_us"] == 800.0

    def test_origin_checks(self):
        events = self._events()
        assert verify_origins(events) == {"flash_cmds": 2,
                                          "missing_origin": 0}
        events.append({"ts": 50.0, "kind": "flash.cmd", "op": "program",
                       "die": 0, "latency_us": 1.0})
        assert verify_origins(events)["missing_origin"] == 1
        mix = origin_mix(events)
        assert mix["gc"] == 1 and mix["txn"] == 1

    def test_windowed_series_buckets_by_time(self):
        series = windowed_series(self._events(), window_us=25.0)
        assert len(series["windows"]) == 2
        assert sum(series["ops"]) == 2
        # Die-busy credit is split across window edges: the program starts
        # at ts=30 with 200us of latency, so window [10, 35) holds 5us and
        # the remainder lands in the last window (35, the series tail).
        assert series["die_busy"][0][0] == pytest.approx(5.0 / 25.0)
        assert series["die_busy"][0][1] == pytest.approx(195.0 / 25.0)
        # die 1: read at ts=40 for 50us, entirely inside the final window.
        assert series["die_busy"][1][1] == pytest.approx(50.0 / 25.0)
        # Total busy time is conserved by the split.
        assert sum(series["die_busy"][0]) * 25.0 == pytest.approx(200.0)
        assert series["maintenance_cmds"][0] == 1


class TestEndToEndTrace:
    def test_tpcb_run_traces_origins_and_replays(self, tmp_path):
        workload = TPCB(sf=1, accounts_per_branch=50)
        footprint = measure_workload_footprint(workload)
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as sink:
            trace = EventTrace(sink=sink)
            rig = build_noftl_rig(
                geometry=sized_geometry(footprint, dies=2, utilization=0.8,
                                        headroom_pages=footprint // 2,
                                        pages_per_block=16),
                config=NoFTLConfig(num_regions=2, op_ratio=0.12),
                seed=5,
                trace=trace,
            )
            db = attach_database(rig, buffer_capacity=footprint,
                                 cpu_us_per_op=1.0,
                                 wal_flush_latency_us=60.0,
                                 foreground_flush=False,
                                 dirty_throttle_fraction=0.10)
            db.start_writers(2, policy="region")
            run_workload(rig.sim, db, TPCB(sf=1, accounts_per_branch=50),
                         duration_us=250_000, num_terminals=4,
                         rng=random.Random(5))
            trace.enabled = False
            trace.sink = None
        report = analyze_trace(str(path))
        origins = report["origins"]
        assert origins["flash_cmds"] > 0
        assert origins["missing_origin"] == 0
        # background cleaning dominates the write path; its origin label
        # must survive all the way down to the flash commands
        assert report["origin_mix"].get("db-writer", 0) > 0
        assert report["write_blame"]["count"] > 0
        assert report["commit_blame"]["count"] > 0
        # commits are WAL-bound: the wal bucket carries their latency
        assert report["commit_blame"]["tail_buckets"]["wal_us"] > 0
        # both dies show up in the utilization series
        assert set(report["series"]["die_busy"]) == {0, 1}
        failures = run_checks({"noftl": report}, dies=2)
        assert failures == []
