"""Property tests for the O(1) GC victim structure (VictimBuckets).

The bucket lists replace the linear victim scans every FTL used to run;
greedy selection is only correct if, after *any* interleaving of member
admissions, valid-count changes, evictions and picks, ``min_victim``
still returns a member with the globally minimal valid-page count (==
maximal invalid count).  These tests drive randomized op sequences
through the structure and cross-check every pick against a naive
O(blocks) scan over a shadow model — the exact scan the buckets
replaced.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.base import VictimBuckets

PAGES_PER_BLOCK = 8
NUM_BLOCKS = 24


def naive_min_victim(shadow, skip=()):
    """The O(blocks) scan the buckets replace: minimal valid count among
    members that are not fully valid and not skipped."""
    best = None
    for pbn, valid in shadow.items():
        if valid >= PAGES_PER_BLOCK or pbn in skip:
            continue
        if best is None or valid < best:
            best = valid
    return best


# One op: (kind, pbn, value).  Valid counts are arbitrary in [0, ppb] —
# stricter than production (where member counts only decrease), so the
# lazy minimum pointer is exercised against adversarial increases too.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "change", "discard", "pick", "pick_skip"]),
        st.integers(0, NUM_BLOCKS - 1),
        st.integers(0, PAGES_PER_BLOCK),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, seed=st.integers(0, 2**32 - 1))
def test_min_victim_matches_naive_scan(ops, seed):
    """Property: every pick returns a member whose valid count equals the
    global minimum a full scan would find (or None when the scan finds
    nothing collectible)."""
    rng = random.Random(seed)
    buckets = VictimBuckets(PAGES_PER_BLOCK)
    shadow = {}
    for kind, pbn, value in ops:
        if kind == "add":
            buckets.add(pbn, value)
            shadow[pbn] = value
        elif kind == "change":
            # Production only routes changes for members (the block_watch
            # slot is cleared on release); mirror that contract.
            if pbn in shadow:
                buckets.on_valid_changed(pbn, value)
                shadow[pbn] = value
        elif kind == "discard":
            buckets.discard(pbn)
            shadow.pop(pbn, None)
        else:
            skip = ()
            if kind == "pick_skip" and shadow:
                skip = frozenset(
                    rng.sample(sorted(shadow), k=rng.randrange(len(shadow) + 1))
                )
            picked = buckets.min_victim(skip=skip)
            expected = naive_min_victim(shadow, skip=skip)
            if expected is None:
                assert picked is None
            else:
                assert picked is not None
                assert picked in shadow and picked not in skip
                assert shadow[picked] == expected

        # Structural invariants hold after every op.
        assert len(buckets) == len(shadow)
        assert set(buckets) == set(shadow)
        for member, valid in shadow.items():
            assert buckets.valid_of(member) == valid


@settings(max_examples=100, deadline=None)
@given(
    counts=st.lists(
        st.integers(0, PAGES_PER_BLOCK), min_size=1, max_size=NUM_BLOCKS
    )
)
def test_drain_picks_in_globally_greedy_order(counts):
    """Repeatedly picking and evicting must drain members in nondecreasing
    valid-count order — the definition of a greedy victim policy."""
    buckets = VictimBuckets(PAGES_PER_BLOCK)
    shadow = {}
    for pbn, valid in enumerate(counts):
        buckets.add(pbn, valid)
        shadow[pbn] = valid
    picked_counts = []
    while True:
        victim = buckets.min_victim()
        if victim is None:
            break
        assert shadow[victim] == naive_min_victim(shadow)
        picked_counts.append(shadow[victim])
        buckets.discard(victim)
        del shadow[victim]
    assert picked_counts == sorted(picked_counts)
    # Only fully valid members (never collectible under greedy) remain.
    assert all(v >= PAGES_PER_BLOCK for v in shadow.values())


def test_fifo_tie_break_rotates_equal_victims():
    """Members tied on valid count come back in admission order — the
    property that makes the bucket policy double as wear leveling for
    uniform workloads."""
    buckets = VictimBuckets(PAGES_PER_BLOCK)
    for pbn in (5, 3, 9):
        buckets.add(pbn, 2)
    order = []
    while (victim := buckets.min_victim()) is not None:
        order.append(victim)
        buckets.discard(victim)
    assert order == [5, 3, 9]
