"""Tests for the buffer pool: pinning, eviction, WAL rule, dirty listener."""

import pytest

from repro.db import BufferPool, RAMStorageAdapter, SlottedPage, WALog
from repro.sim import Simulator

PAGE_BYTES = 256


def make_pool(capacity=4, latency_us=10.0):
    sim = Simulator()
    storage = RAMStorageAdapter(sim, logical_pages=256, latency_us=latency_us)
    wal = WALog(sim, flush_latency_us=50)
    pool = BufferPool(sim, storage, wal, capacity)
    return sim, storage, wal, pool


def seed_pages(sim, pool, count):
    """Create `count` pages and flush them so storage has them."""

    def proc():
        for page_id in range(count):
            page = SlottedPage(page_id, PAGE_BYTES)
            page.insert(f"page-{page_id}".encode())
            yield from pool.new_page(page_id, page)
            pool.unpin(page_id)
        yield from pool.flush_all()

    sim.run_process(proc())


class TestFetch:
    def test_hit_after_miss(self):
        sim, __, __, pool = make_pool()
        seed_pages(sim, pool, 2)

        def proc():
            frame = yield from pool.fetch(0)
            pool.unpin(0)
            frame = yield from pool.fetch(0)
            pool.unpin(0)
            return frame.page.get(0)

        assert sim.run_process(proc()) == b"page-0"
        assert pool.hits >= 1

    def test_fetch_missing_page_raises(self):
        sim, __, __, pool = make_pool()

        def proc():
            yield from pool.fetch(99)

        with pytest.raises(KeyError):
            sim.run_process(proc())

    def test_concurrent_fetchers_share_one_load(self):
        sim, storage, __, pool = make_pool(latency_us=100)
        seed_pages(sim, pool, 8)
        # evict everything by filling with other pages
        def wipe():
            for page_id in range(4, 8):
                frame = yield from pool.fetch(page_id)
                pool.unpin(page_id)
        sim.run_process(wipe())
        misses_before = pool.misses

        def fetcher():
            frame = yield from pool.fetch(0)
            pool.unpin(0)

        sim.process(fetcher())
        sim.process(fetcher())
        sim.run()
        assert pool.misses == misses_before + 1  # second fetch waited, then hit

    def test_eviction_is_lru(self):
        sim, __, __, pool = make_pool(capacity=4)
        seed_pages(sim, pool, 8)

        def proc():
            for page_id in (0, 1, 2, 3):
                yield from pool.fetch(page_id)
                pool.unpin(page_id)
            # touch 0 so 1 becomes LRU
            yield from pool.fetch(0)
            pool.unpin(0)
            yield from pool.fetch(4)  # forces one eviction
            pool.unpin(4)

        sim.run_process(proc())
        assert 1 not in pool.frames
        assert 0 in pool.frames

    def test_pinned_pages_never_evicted(self):
        sim, __, __, pool = make_pool(capacity=4)
        seed_pages(sim, pool, 8)
        log = []

        def pinner():
            for page_id in (0, 1, 2):
                yield from pool.fetch(page_id)
            # hold pins; try to bring in 2 more pages than capacity allows
            yield sim.timeout(1000)
            for page_id in (0, 1, 2):
                pool.unpin(page_id)
            log.append("released")

        def prober():
            yield sim.timeout(10)
            yield from pool.fetch(4)  # takes the only unpinned frame slot
            yield from pool.fetch(5)  # needs a second frame: must wait
            pool.unpin(4)
            pool.unpin(5)
            log.append(("prober-done", sim.now))

        sim.process(pinner())
        sim.process(prober())
        sim.run()
        # The prober could not proceed until the pinner released its pins.
        assert log[0] == "released"
        assert log[1][0] == "prober-done"


class TestDirtyAndFlush:
    def test_mark_dirty_requires_residency(self):
        __, __, __, pool = make_pool()
        with pytest.raises(KeyError):
            pool.mark_dirty(0)

    def test_dirty_listener_fires_once_per_dirtying(self):
        sim, __, __, pool = make_pool()
        seed_pages(sim, pool, 2)
        events = []
        pool.set_dirty_listener(lambda page_id, frame: events.append(page_id))

        def proc():
            frame = yield from pool.fetch(0)
            pool.mark_dirty(0)
            pool.mark_dirty(0)  # second mark on already-dirty: no event
            pool.unpin(0)
            yield from pool.flush_page(0)
            frame = yield from pool.fetch(0)
            pool.mark_dirty(0)  # re-dirty after clean: new event
            pool.unpin(0)

        sim.run_process(proc())
        assert events == [0, 0]

    def test_flush_respects_wal_rule(self):
        sim, __, wal, pool = make_pool()
        seed_pages(sim, pool, 1)

        def proc():
            frame = yield from pool.fetch(0)
            lsn = wal.append("update", 1)
            frame.page.lsn = lsn
            pool.mark_dirty(0)
            pool.unpin(0)
            yield from pool.flush_page(0)
            return lsn

        lsn = sim.run_process(proc())
        assert wal.flushed_lsn >= lsn

    def test_flush_clean_page_is_noop(self):
        sim, __, __, pool = make_pool()
        seed_pages(sim, pool, 1)

        def proc():
            flushed = yield from pool.flush_page(0)
            return flushed

        assert sim.run_process(proc()) is False

    def test_redirty_during_flush_stays_dirty(self):
        sim, __, __, pool = make_pool(latency_us=100)
        seed_pages(sim, pool, 1)

        def flusher():
            frame = yield from pool.fetch(0)
            pool.mark_dirty(0)
            pool.unpin(0)
            yield from pool.flush_page(0)

        def mutator():
            yield sim.timeout(10)  # lands mid-flush
            frame = yield from pool.fetch(0)
            frame.page.insert(b"late-change")
            pool.mark_dirty(0)
            pool.unpin(0)

        sim.process(flusher())
        sim.process(mutator())
        sim.run()
        assert pool.frames[0].dirty  # the late change is not lost

    def test_dirty_eviction_counts_stall(self):
        sim, __, __, pool = make_pool(capacity=4)
        seed_pages(sim, pool, 8)

        def proc():
            for page_id in range(4):
                yield from pool.fetch(page_id)
                pool.mark_dirty(page_id)
                pool.unpin(page_id)
            yield from pool.fetch(5)  # every victim dirty -> stall
            pool.unpin(5)

        sim.run_process(proc())
        assert pool.dirty_eviction_stalls >= 1

    def test_flush_all_checkpoints_everything(self):
        sim, storage, __, pool = make_pool(capacity=8)
        seed_pages(sim, pool, 4)

        def proc():
            for page_id in range(4):
                frame = yield from pool.fetch(page_id)
                frame.page.insert(b"mutation")
                pool.mark_dirty(page_id)
                pool.unpin(page_id)
            yield from pool.flush_all()

        sim.run_process(proc())
        assert pool.dirty_count == 0

    def test_snapshot_fields(self):
        sim, __, __, pool = make_pool()
        seed_pages(sim, pool, 1)
        snap = pool.snapshot()
        assert snap["capacity"] == 4
        assert "hit_ratio" in snap
