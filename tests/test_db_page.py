"""Tests for slotted pages and B+-tree node pages (incl. serialisation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import BTreeNodePage, PageFormatError, SlottedPage, decode_page


class TestSlottedPage:
    def make(self, page_bytes=512, page_id=7):
        return SlottedPage(page_id, page_bytes)

    def test_insert_get_roundtrip(self):
        page = self.make()
        slot = page.insert(b"hello")
        assert page.get(slot) == b"hello"

    def test_insert_returns_consecutive_slots(self):
        page = self.make()
        assert page.insert(b"a") == 0
        assert page.insert(b"b") == 1

    def test_insert_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            self.make().insert("not-bytes")

    def test_page_fills_up(self):
        page = self.make(page_bytes=128)
        records = 0
        while page.insert(b"x" * 16) is not None:
            records += 1
        assert records > 0
        assert page.insert(b"x" * 16) is None
        assert not page.fits(b"x" * 16)

    def test_update_in_place(self):
        page = self.make()
        slot = page.insert(b"aaaa")
        assert page.update(slot, b"bbbb")
        assert page.get(slot) == b"bbbb"

    def test_update_growth_bounded_by_free_space(self):
        page = self.make(page_bytes=96)
        slot = page.insert(b"a" * 8)
        while page.insert(b"b" * 8) is not None:
            pass
        assert page.update(slot, b"c" * 64) is False
        assert page.get(slot) == b"a" * 8

    def test_delete_and_tombstone_reuse(self):
        page = self.make()
        slot = page.insert(b"gone")
        page.delete(slot)
        assert page.get(slot) is None
        reused = page.insert(b"new")
        assert reused == slot  # tombstone reuse

    def test_double_delete_raises(self):
        page = self.make()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(KeyError):
            page.delete(slot)

    def test_restore_after_delete(self):
        page = self.make()
        slot = page.insert(b"original")
        page.delete(slot)
        page.restore(slot, b"original")
        assert page.get(slot) == b"original"

    def test_restore_occupied_slot_raises(self):
        page = self.make()
        slot = page.insert(b"x")
        with pytest.raises(KeyError):
            page.restore(slot, b"y")

    def test_live_records_and_free_space_accounting(self):
        page = self.make()
        free0 = page.free_space()
        page.insert(b"12345678")
        assert page.live_records == 1
        assert page.free_space() < free0

    def test_serialise_roundtrip_with_tombstones(self):
        page = self.make()
        keep = page.insert(b"keep")
        dead = page.insert(b"dead")
        last = page.insert(b"last")
        page.delete(dead)
        page.lsn = 42
        clone = SlottedPage.from_bytes(page.to_bytes())
        assert clone.page_id == page.page_id
        assert clone.lsn == 42
        assert clone.get(keep) == b"keep"
        assert clone.get(dead) is None
        assert clone.get(last) == b"last"

    def test_serialised_size_is_exactly_page_bytes(self):
        page = self.make(page_bytes=1024)
        page.insert(b"x" * 100)
        assert len(page.to_bytes()) == 1024

    def test_decode_dispatches_slotted(self):
        page = self.make()
        page.insert(b"data")
        decoded = decode_page(page.to_bytes())
        assert isinstance(decoded, SlottedPage)

    def test_decode_bad_magic(self):
        with pytest.raises(PageFormatError):
            decode_page(b"\x00" * 64)


class TestBTreeNodePage:
    def test_leaf_roundtrip(self):
        node = BTreeNodePage(3, 512, is_leaf=True)
        node.keys = [1, 5, 9]
        node.values = [10, 50, 90]
        node.next_leaf = 77
        clone = BTreeNodePage.from_bytes(node.to_bytes())
        assert clone.is_leaf
        assert clone.keys == [1, 5, 9]
        assert clone.values == [10, 50, 90]
        assert clone.next_leaf == 77

    def test_inner_roundtrip(self):
        node = BTreeNodePage(4, 512, is_leaf=False)
        node.keys = [100, 200]
        node.children = [1, 2, 3]
        clone = BTreeNodePage.from_bytes(node.to_bytes())
        assert not clone.is_leaf
        assert clone.keys == [100, 200]
        assert clone.children == [1, 2, 3]

    def test_capacity_positive_and_bounded(self):
        node = BTreeNodePage(0, 512, is_leaf=True)
        assert 3 <= node.capacity < 512 // 16

    def test_decode_dispatches_btree(self):
        node = BTreeNodePage(1, 256, is_leaf=True)
        decoded = decode_page(node.to_bytes())
        assert isinstance(decoded, BTreeNodePage)


@settings(max_examples=50)
@given(st.lists(st.binary(min_size=0, max_size=40), max_size=20))
def test_slotted_page_roundtrip_property(records):
    page = SlottedPage(1, 2048)
    slots = []
    for record in records:
        slot = page.insert(record)
        if slot is not None:
            slots.append((slot, record))
    clone = SlottedPage.from_bytes(page.to_bytes())
    for slot, record in slots:
        assert clone.get(slot) == record


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 2**40), st.integers(0, 2**40)),
                max_size=25, unique_by=lambda kv: kv[0]))
def test_btree_node_roundtrip_property(pairs):
    node = BTreeNodePage(9, 2048, is_leaf=True)
    pairs = sorted(pairs)[: node.capacity]
    node.keys = [k for k, __ in pairs]
    node.values = [v for __, v in pairs]
    clone = BTreeNodePage.from_bytes(node.to_bytes())
    assert clone.keys == node.keys
    assert clone.values == node.values
