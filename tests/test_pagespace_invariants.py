"""Property tests for the page-mapped space's structural invariants —
the engine both PageMapFTL and NoFTL stand on."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl.base import FTLStats, MappingState, UNMAPPED
from repro.ftl.pagespace import PageMappedSpace

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=8,
    page_bytes=512,
)


def make_space(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    logical = int(GEO.total_pages * 0.7)
    mapping = MappingState(GEO, logical)
    stats = FTLStats()
    planes = [(die, plane) for die in range(GEO.total_dies)
              for plane in range(GEO.planes_per_die)]
    space = PageMappedSpace(GEO, mapping, planes, stats, **kwargs)
    return space, mapping, executor, array, logical


def check_invariants(space, mapping, array, oracle):
    """The structural truths that must hold after ANY operation mix."""
    # 1. l2p/p2l are mutual inverses over live pages.
    live = 0
    for lpn in range(mapping.logical_pages):
        ppn = mapping.lookup(lpn)
        if ppn != UNMAPPED:
            assert mapping.p2l[ppn] == lpn
            live += 1
    assert live == sum(1 for v in oracle.values() if v is not None)
    # 2. valid_in_block sums to the number of live pages.
    assert mapping.total_valid() == live
    # 3. every mapped page is actually programmed on the array.
    for lpn in range(mapping.logical_pages):
        ppn = mapping.lookup(lpn)
        if ppn != UNMAPPED:
            assert array.is_programmed(ppn)
    # 4. block accounting: pool, occupied and active blocks are disjoint
    # and cover each plane.
    for plane_id, plane in space._planes.items():
        die, plane_index = plane_id
        blocks = set(GEO.blocks_of_plane(die, plane_index))
        pool = set(plane.pool.peek_free())
        active = {entry[0] for entry in plane.active.values()
                  if entry is not None}
        assert pool.isdisjoint(plane.occupied)
        assert pool.isdisjoint(active)
        assert active.isdisjoint(plane.occupied)
        assert pool | plane.occupied | active <= blocks
        # 5. pool blocks hold no valid data.
        for pbn in pool:
            assert mapping.valid_in_block[pbn] == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000),
       policy=st.sampled_from(["greedy", "cost_benefit"]),
       streams=st.booleans(),
       copyback=st.booleans())
def test_space_invariants_hold_under_arbitrary_mixes(seed, policy, streams,
                                                     copyback):
    space, mapping, executor, array, logical = make_space(
        gc_policy=policy, separate_streams=streams, use_copyback=copyback)
    rng = random.Random(seed)
    span = int(logical * 0.8)
    oracle = {}
    for step in range(span * 4):
        lpn = rng.randrange(span)
        action = rng.random()
        if action < 0.8 or oracle.get(lpn) is None:
            executor.run(space.write(lpn, data=(lpn, step)))
            oracle[lpn] = (lpn, step)
        else:
            space.trim(lpn)
            oracle[lpn] = None
    check_invariants(space, mapping, array, oracle)
    for lpn, expected in oracle.items():
        got = executor.run(space.read(lpn))
        assert got == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_wear_leveling_preserves_data_and_invariants(seed):
    space, mapping, executor, array, logical = make_space(
        wear_level_delta=4, wear_level_check_every=8)
    rng = random.Random(seed)
    hot = max(4, logical // 10)
    oracle = {}
    for step in range(logical * 6):
        lpn = rng.randrange(hot)
        executor.run(space.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    check_invariants(space, mapping, array, oracle)
    for lpn, expected in oracle.items():
        assert executor.run(space.read(lpn)) == expected


def test_rebuild_allocation_restores_consistency():
    """After a simulated power loss, rebuild_allocation must leave the
    pools consistent with the array's programmed state."""
    space, mapping, executor, array, logical = make_space()
    rng = random.Random(5)
    for step in range(logical * 3):
        executor.run(space.write(rng.randrange(logical // 2), data=step))
    programmed = {
        pbn for pbn in range(GEO.total_blocks)
        if any(array.is_programmed(GEO.ppn_of(pbn, off))
               for off in range(GEO.pages_per_block))
    }
    space.rebuild_allocation(programmed)
    for plane_id, plane in space._planes.items():
        for pbn in plane.pool.peek_free():
            assert pbn not in programmed
        for pbn in plane.occupied:
            assert pbn in programmed
    # and the space still works
    for step in range(logical):
        executor.run(space.write(rng.randrange(logical // 2),
                                 data=("post", step)))
