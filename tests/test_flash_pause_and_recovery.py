"""Tests for the Pause pseudo-command and the NoFTL recovery path."""

import random


from repro.core import NoFTLConfig, NoFTLStorage, NoFTLStorageManager, SyncNoFTLStorage
from repro.flash import (
    FlashArray,
    Geometry,
    Pause,
    SLC_TIMING,
    SimExecutor,
    SimFlashDevice,
    SyncExecutor,
    SyncFlashDevice,
)
from repro.sim import Simulator

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=8,
    page_bytes=512,
)


class TestPause:
    def test_sync_pause_costs_time_only(self):
        array = FlashArray(GEO, SLC_TIMING)
        device = SyncFlashDevice(array)
        before = array.counters.snapshot()
        result = device.execute(Pause(duration_us=123.0))
        assert result.latency_us == 123.0
        after = array.counters.snapshot()
        assert after["programs"] == before["programs"]
        assert after["reads"] == before["reads"]

    def test_des_pause_advances_clock_without_touching_dies(self):
        sim = Simulator()
        device = SimFlashDevice(sim, FlashArray(GEO, SLC_TIMING))

        def proc():
            yield from device.execute(Pause(duration_us=50.0))
            return sim.now

        assert sim.run_process(proc()) == 50.0
        assert all(busy == 0 for busy in device._die_busy_us)

    def test_pause_in_operation_generator(self):
        array = FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))

        def op():
            yield Pause(duration_us=10.0)
            return "done"

        assert executor.run(op()) == "done"


class TestRecoveryScenarios:
    def _build(self, array=None):
        array = array or FlashArray(GEO, SLC_TIMING)
        executor = SyncExecutor(SyncFlashDevice(array))
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        return SyncNoFTLStorage(manager, executor), array

    def test_recovery_after_heavy_gc_and_trims(self):
        storage, array = self._build()
        rng = random.Random(3)
        span = storage.logical_pages // 2
        oracle = {}
        for step in range(span * 6):
            lpn = rng.randrange(span)
            if rng.random() < 0.1 and lpn in oracle:
                storage.trim(lpn)
                del oracle[lpn]
            else:
                storage.write(lpn, data=(lpn, step))
                oracle[lpn] = (lpn, step)
        assert storage.manager.stats.gc_erases > 0

        reborn, __ = self._build(array)
        recovered = reborn.recover()
        # Trimmed pages may resurface after a crash (their mapping was
        # host-only state) — that's expected; data pages must be exact.
        assert recovered >= len(oracle)
        for lpn, expected in oracle.items():
            assert reborn.read(lpn) == expected

    def test_recovery_of_empty_flash(self):
        storage, __ = self._build()
        assert storage.recover() == 0

    def test_recovery_counts_oob_scans(self):
        storage, array = self._build()
        for lpn in range(10):
            storage.write(lpn, data=lpn)
        reborn, __ = self._build(array)
        before = array.counters.oob_reads
        reborn.recover()
        assert array.counters.oob_reads > before


class TestNoFTLDESRecoveryParity:
    def test_des_and_sync_paths_agree_on_state(self):
        """The same write sequence through the DES front-end and the sync
        front-end leaves identical mappings (mode-independence of the
        storage manager)."""
        seq = [(lpn, ("v", lpn, k)) for k in range(3)
               for lpn in range(0, 30, 3)]

        sync_storage, __ = TestRecoveryScenarios()._build()
        for lpn, value in seq:
            sync_storage.write(lpn, data=value)

        sim = Simulator()
        array = FlashArray(GEO, SLC_TIMING)
        manager = NoFTLStorageManager(GEO, NoFTLConfig(op_ratio=0.25))
        des_storage = NoFTLStorage(sim, manager,
                                   SimExecutor(SimFlashDevice(sim, array)))

        def proc():
            for lpn, value in seq:
                yield from des_storage.write(lpn, data=value)

        sim.run_process(proc())
        for lpn in range(0, 30, 3):
            sync_value = sync_storage.read(lpn)

            def read_des(lpn=lpn):
                value = yield from des_storage.read(lpn)
                return value

            assert sim.run_process(read_des()) == sync_value
