"""Unit + property tests for flash geometry and address arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import Geometry


SMALL = Geometry(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=4,
    page_bytes=512,
)


class TestDerivedSizes:
    def test_total_dies(self):
        assert SMALL.total_dies == 8

    def test_total_blocks(self):
        assert SMALL.total_blocks == 8 * 2 * 8

    def test_total_pages(self):
        assert SMALL.total_pages == SMALL.total_blocks * 4

    def test_capacity_bytes(self):
        assert SMALL.capacity_bytes == SMALL.total_pages * 512

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Geometry(channels=0)
        with pytest.raises(ValueError):
            Geometry(pages_per_block=0)


class TestAddressing:
    def test_ppn_roundtrip_block_page(self):
        ppn = SMALL.ppn_of(pbn=10, page=3)
        assert SMALL.block_of_ppn(ppn) == 10
        assert SMALL.page_offset_of_ppn(ppn) == 3

    def test_page_offset_bounds(self):
        with pytest.raises(ValueError):
            SMALL.ppn_of(0, SMALL.pages_per_block)

    def test_die_of_block_contiguous(self):
        assert SMALL.die_of_block(0) == 0
        assert SMALL.die_of_block(SMALL.blocks_per_die - 1) == 0
        assert SMALL.die_of_block(SMALL.blocks_per_die) == 1

    def test_plane_of_block(self):
        assert SMALL.plane_of_block(0) == 0
        assert SMALL.plane_of_block(SMALL.blocks_per_plane) == 1
        # second die starts again at plane 0
        assert SMALL.plane_of_block(SMALL.blocks_per_die) == 0

    def test_blocks_of_die_partition_whole_device(self):
        seen = []
        for die in range(SMALL.total_dies):
            seen.extend(SMALL.blocks_of_die(die))
        assert seen == list(range(SMALL.total_blocks))

    def test_blocks_of_plane_subdivide_die(self):
        die_blocks = list(SMALL.blocks_of_die(3))
        plane0 = list(SMALL.blocks_of_plane(3, 0))
        plane1 = list(SMALL.blocks_of_plane(3, 1))
        assert plane0 + plane1 == die_blocks

    def test_same_plane_true_within_plane(self):
        blocks = SMALL.blocks_of_plane(2, 1)
        a = SMALL.ppn_of(blocks[0], 0)
        b = SMALL.ppn_of(blocks[-1], 3)
        assert SMALL.same_plane(a, b)

    def test_same_plane_false_across_planes(self):
        a = SMALL.ppn_of(SMALL.blocks_of_plane(2, 0)[0], 0)
        b = SMALL.ppn_of(SMALL.blocks_of_plane(2, 1)[0], 0)
        assert not SMALL.same_plane(a, b)

    def test_same_plane_false_across_dies(self):
        a = SMALL.ppn_of(SMALL.blocks_of_plane(0, 0)[0], 0)
        b = SMALL.ppn_of(SMALL.blocks_of_plane(1, 0)[0], 0)
        assert not SMALL.same_plane(a, b)

    def test_channel_of_die(self):
        dies_per_channel = SMALL.chips_per_channel * SMALL.dies_per_chip
        assert SMALL.channel_of_die(0) == 0
        assert SMALL.channel_of_die(dies_per_channel - 1) == 0
        assert SMALL.channel_of_die(dies_per_channel) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SMALL.die_of_block(SMALL.total_blocks)
        with pytest.raises(ValueError):
            SMALL.decompose(SMALL.total_pages)
        with pytest.raises(ValueError):
            SMALL.blocks_of_die(SMALL.total_dies)

    def test_describe_contains_identify_fields(self):
        info = SMALL.describe()
        assert info["total_dies"] == 8
        assert info["page_bytes"] == 512
        assert info["capacity_bytes"] == SMALL.capacity_bytes


geometries = st.builds(
    Geometry,
    channels=st.integers(1, 4),
    chips_per_channel=st.integers(1, 3),
    dies_per_chip=st.integers(1, 3),
    planes_per_die=st.integers(1, 4),
    blocks_per_plane=st.integers(1, 32),
    pages_per_block=st.integers(1, 16),
    page_bytes=st.sampled_from([512, 2048, 4096]),
)


@settings(max_examples=60)
@given(geometry=geometries, data=st.data())
def test_decompose_compose_roundtrip(geometry, data):
    ppn = data.draw(st.integers(0, geometry.total_pages - 1))
    address = geometry.decompose(ppn)
    assert geometry.compose(address) == ppn
    assert 0 <= address.channel < geometry.channels
    assert 0 <= address.chip < geometry.chips_per_channel
    assert 0 <= address.die < geometry.dies_per_chip
    assert 0 <= address.plane < geometry.planes_per_die
    assert 0 <= address.block < geometry.blocks_per_plane
    assert 0 <= address.page < geometry.pages_per_block


@settings(max_examples=60)
@given(geometry=geometries, data=st.data())
def test_die_and_plane_agree_with_decompose(geometry, data):
    ppn = data.draw(st.integers(0, geometry.total_pages - 1))
    address = geometry.decompose(ppn)
    die_index = geometry.die_of_ppn(ppn)
    assert geometry.channel_of_die(die_index) == address.channel
    assert geometry.plane_of_ppn(ppn) == address.plane


@settings(max_examples=40)
@given(geometry=geometries)
def test_die_block_ranges_partition(geometry):
    total = 0
    for die in range(geometry.total_dies):
        blocks = geometry.blocks_of_die(die)
        total += len(blocks)
        for plane in range(geometry.planes_per_die):
            assert set(geometry.blocks_of_plane(die, plane)) <= set(blocks)
    assert total == geometry.total_blocks
