"""Tests for LazyFTL (lazy batch-persisted page mapping)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, Geometry, SLC_TIMING, SyncExecutor, SyncFlashDevice
from repro.ftl import DFTL, LazyFTL

GEO = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=8,
    page_bytes=512,
)


def make_lazy(**kwargs):
    array = FlashArray(GEO, SLC_TIMING)
    executor = SyncExecutor(SyncFlashDevice(array))
    defaults = dict(op_ratio=0.25, umt_entries=16, read_cache_entries=16,
                    entries_per_translation_page=8)
    defaults.update(kwargs)
    return LazyFTL(GEO, **defaults), executor, array


class TestBasicIO:
    def test_roundtrip(self):
        ftl, executor, __ = make_lazy()
        executor.run(ftl.write(3, data=b"three"))
        assert executor.run(ftl.read(3)) == b"three"

    def test_unwritten_returns_none(self):
        ftl, executor, __ = make_lazy()
        assert executor.run(ftl.read(7)) is None

    def test_overwrite_newest_wins(self):
        ftl, executor, __ = make_lazy()
        executor.run(ftl.write(4, data="old"))
        executor.run(ftl.write(4, data="new"))
        assert executor.run(ftl.read(4)) == "new"

    def test_trim(self):
        ftl, executor, __ = make_lazy()
        executor.run(ftl.write(5, data=b"z"))
        executor.run(ftl.trim(5))
        assert executor.run(ftl.read(5)) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            make_lazy(umt_entries=0)


class TestLaziness:
    def test_writes_within_budget_cost_no_map_io(self):
        ftl, executor, __ = make_lazy(umt_entries=64)
        for lpn in range(20):
            executor.run(ftl.write(lpn, data=lpn))
        assert ftl.stats.map_programs == 0
        assert ftl.umt_fill == 20

    def test_overflow_flushes_in_tp_batches(self):
        ftl, executor, __ = make_lazy(umt_entries=16,
                                      entries_per_translation_page=8)
        # 17 updates covering 3 translation pages -> one flush of 3 TPs
        for lpn in range(17):
            executor.run(ftl.write(lpn, data=lpn))
        assert ftl.umt_flushes == 1
        assert ftl.stats.map_programs == 3  # one per TP, not per mapping
        assert ftl.umt_fill == 0

    def test_read_of_lazy_mapping_is_fast(self):
        ftl, executor, __ = make_lazy()
        executor.run(ftl.write(2, data=b"x"))
        before = ftl.stats.map_reads
        executor.run(ftl.read(2))
        assert ftl.stats.map_reads == before  # UMT hit
        assert ftl.is_fast_read(2)

    def test_cold_read_pays_one_tp_read(self):
        ftl, executor, __ = make_lazy(umt_entries=4, read_cache_entries=2)
        for lpn in range(12):
            executor.run(ftl.write(lpn, data=lpn))
        # lpn 0 long persisted and pushed out of every cache
        for lpn in range(4, 12):
            executor.run(ftl.read(lpn))
        before = ftl.stats.map_reads
        assert executor.run(ftl.read(0)) == 0
        assert ftl.stats.map_reads == before + 1

    def test_lazy_beats_dftl_on_map_writes(self):
        """The comparison the literature draws: identical update stream,
        LazyFTL amortizes translation programs that DFTL pays eagerly."""
        rng = random.Random(4)
        span = 200
        trace = [rng.randrange(span) for __ in range(2500)]

        def run(ftl):
            executor = SyncExecutor(SyncFlashDevice(FlashArray(GEO,
                                                               SLC_TIMING)))
            for lpn in range(span):
                executor.run(ftl.write(lpn, data=lpn))
            for lpn in trace:
                executor.run(ftl.write(lpn, data=b"u"))
            return ftl.stats.map_programs

        lazy_programs = run(LazyFTL(GEO, op_ratio=0.25, umt_entries=64,
                                    entries_per_translation_page=8))
        dftl_programs = run(DFTL(GEO, op_ratio=0.25, cmt_entries=64,
                                 entries_per_translation_page=8))
        assert lazy_programs < dftl_programs

    def test_gc_relocations_stay_lazy(self):
        ftl, executor, __ = make_lazy(umt_entries=512)
        rng = random.Random(9)
        span = int(ftl.logical_pages * 0.7)
        for __ in range(ftl.logical_pages * 5):
            executor.run(ftl.write(rng.randrange(span), data=b"x"))
        assert ftl.stats.gc_erases > 0
        # GC-induced map traffic exists only through batch flushes.
        assert ftl.stats.map_programs <= ftl.umt_flushes * ftl.num_tvpns


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lazyftl_never_loses_data(seed):
    ftl, executor, __ = make_lazy(umt_entries=8)
    rng = random.Random(seed)
    span = int(ftl.logical_pages * 0.6)
    oracle = {}
    for step in range(span * 5):
        lpn = rng.randrange(span)
        executor.run(ftl.write(lpn, data=(lpn, step)))
        oracle[lpn] = (lpn, step)
    for lpn, expected in oracle.items():
        assert executor.run(ftl.read(lpn)) == expected
